//! Rumor spreading in a peer-to-peer overlay: cobra walk vs push gossip
//! vs parallel random walks.
//!
//! The paper's other motivating application (§1): message-passing
//! protocols "require little state information and are robust to various
//! types of faults". This example compares three dissemination protocols
//! on a power-law overlay (Chung–Lu graph, the topology of unstructured
//! P2P systems):
//!
//! * **2-cobra walk** — the paper's protocol: each holder forwards 2
//!   copies, holders forget after forwarding (constant state per node);
//! * **push gossip** — every informed node forwards every round (state:
//!   informed bit, message load grows with informed set);
//! * **8 parallel random walks** — fixed number of tokens.
//!
//! Reported: rounds to full dissemination and total messages sent — the
//! trade-off the paper's introduction alludes to.
//!
//! ```sh
//! cargo run --release --example rumor_network
//! ```

use cobra_repro::graph::generators::powerlaw::chung_lu;
use cobra_repro::graph::metrics::largest_component;
use cobra_repro::graph::Graph;
use cobra_repro::walks::{CobraWalk, ParallelWalks, Process, PushGossip};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run a process to full coverage; return (rounds, total messages), where
/// per-round messages = tokens sent = occupied-set size for walk-style
/// processes and informed-count for push gossip.
fn run_protocol(
    g: &Graph,
    process: &dyn Process,
    push_semantics: bool,
    rng: &mut StdRng,
) -> (usize, u64) {
    let n = g.num_vertices();
    let mut state = process.spawn(g, 0);
    let mut covered = vec![false; n];
    covered[0] = true;
    let mut covered_count = 1usize;
    let mut rounds = 0usize;
    let mut messages = 0u64;
    while covered_count < n {
        // Message accounting BEFORE the step: every current holder sends.
        messages += if push_semantics {
            state.support_size() as u64
        } else {
            2 * state.occupied().len() as u64 // cobra: k = 2 copies per holder
        };
        state.step(g, rng);
        rounds += 1;
        for &v in state.occupied() {
            if !covered[v as usize] {
                covered[v as usize] = true;
                covered_count += 1;
            }
        }
        assert!(rounds < 100_000_000, "protocol failed to disseminate");
    }
    (rounds, messages)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    let (raw, trials) = (
        chung_lu(3000, 2.5, 8.0, &mut rng).expect("valid parameters"),
        5,
    );
    let (g, _) = largest_component(&raw);
    println!(
        "P2P overlay: Chung-Lu power-law graph, n = {}, m = {}, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    println!();
    println!("| protocol | rounds (avg of {trials}) | messages (avg) | msg/node |");
    println!("|----------|------------------|----------------|----------|");

    let n = g.num_vertices() as f64;
    let cobra = CobraWalk::standard();
    let gossip = PushGossip;
    let pwalks = ParallelWalks::new(8);

    let protocols: Vec<(&str, &dyn Process, bool)> = vec![
        ("cobra(k=2)", &cobra, false),
        ("push gossip", &gossip, true),
        ("8 parallel walks", &pwalks, false),
    ];
    for (name, process, push_sem) in protocols {
        let mut total_rounds = 0usize;
        let mut total_msgs = 0u64;
        for _ in 0..trials {
            let (r, m) = run_protocol(&g, process, push_sem, &mut rng);
            total_rounds += r;
            total_msgs += m;
        }
        let rounds = total_rounds as f64 / trials as f64;
        let msgs = total_msgs as f64 / trials as f64;
        println!("| {name} | {rounds:.0} | {msgs:.0} | {:.1} |", msgs / n);
    }
    println!();
    println!(
        "parallel walks are frugal in messages but very slow in rounds. Push\n\
         gossip floods: every informed node transmits every round, even long\n\
         after its whole neighborhood knows the rumor — on heavy-tailed\n\
         overlays the low-degree stragglers make it pay that flood for many\n\
         rounds. The cobra walk's coalescence caps the per-round load at the\n\
         active frontier, which is why it wins on both axes here."
    );
}
