//! Quickstart: build a graph, run a 2-cobra walk, and measure its cover
//! time against the simple random walk.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--tiny` for a seconds-scale run on miniature graphs (used by the
//! `examples_compile` smoke test so the example can never rot silently).

use cobra_repro::graph::generators::{classic, random_regular};
use cobra_repro::sim::runner::{run_cover_trials, TrialPlan};
use cobra_repro::walks::{CobraWalk, CoverDriver, SimpleWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (n_reg, n_lolly, trials) = if tiny { (64, 24, 5) } else { (512, 128, 50) };

    // 1. Build a graph: a random 3-regular expander.
    let mut rng = StdRng::seed_from_u64(42);
    let g = random_regular::random_regular(n_reg, 3, &mut rng).expect("generation succeeds");
    println!(
        "graph: random 3-regular, n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    // 2. Run a single 2-cobra walk and watch it cover the graph.
    let cobra = CobraWalk::standard(); // k = 2, the paper's process
    let result = CoverDriver::new(&g)
        .record_trajectory()
        .run(&cobra, 0, 1_000_000, &mut rng)
        .expect("non-empty graph");
    println!(
        "single run: covered all {} vertices in {} rounds",
        result.covered, result.steps
    );
    if let Some(tr) = &result.trajectory {
        let peak = tr.iter().max().copied().unwrap_or(0);
        println!(
            "active set grew to a peak of {} simultaneously active vertices",
            peak
        );
    }

    // 3. Monte-Carlo comparison against the simple random walk.
    let plan = TrialPlan::new(trials, 10_000_000, 7);
    let cobra_out = run_cover_trials(&g, &cobra, 0, &plan);
    let rw_out = run_cover_trials(&g, &SimpleWalk::new(), 0, &plan);
    println!(
        "over {trials} trials: cobra mean cover {:.0} rounds, simple walk {:.0} rounds ({:.0}x speedup)",
        cobra_out.summary.mean(),
        rw_out.summary.mean(),
        rw_out.summary.mean() / cobra_out.summary.mean()
    );

    // 4. The same comparison on a graph that is *hard* for random walks:
    //    the lollipop (Theorem 20 territory).
    let lolly = classic::lollipop(n_lolly).expect("valid parameters");
    let plan = TrialPlan::new(trials.min(20), 50_000_000, 11);
    let cobra_l = run_cover_trials(&lolly, &cobra, 1, &plan);
    let rw_l = run_cover_trials(&lolly, &SimpleWalk::new(), 1, &plan);
    println!(
        "lollipop({n_lolly}) from the clique: cobra {:.0} rounds vs simple walk {:.0} rounds ({:.0}x)",
        cobra_l.summary.mean(),
        rw_l.summary.mean(),
        rw_l.summary.mean() / cobra_l.summary.mean()
    );
}
