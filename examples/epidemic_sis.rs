//! Epidemic spread: the cobra walk as an idealized SIS process.
//!
//! The paper's introduction motivates cobra walks as "an idealized process
//! within the Susceptible-Infected-Susceptible model: in each time step,
//! an infected agent infects k random neighbors and recovers, but can be
//! infected again". This example runs that process on a synthetic human
//! contact network (a random geometric graph — people interact with
//! spatially nearby people) and reports epidemiological quantities:
//!
//! * time until every individual has been exposed at least once (the
//!   cover time!),
//! * the prevalence curve (currently-infected count per day),
//! * the effect of the contact rate `k` (1 contact/day vs 2 vs 3).
//!
//! ```sh
//! cargo run --release --example epidemic_sis
//! ```

use cobra_repro::graph::generators::geometric::{random_geometric, supercritical_radius};
use cobra_repro::graph::metrics::largest_component;
use cobra_repro::walks::{CobraWalk, Process};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Synthetic contact network: 2000 people placed in a unit square,
    // contact possible within the supercritical radius.
    let n = 2000;
    let (raw, _points) =
        random_geometric(n, supercritical_radius(n), &mut rng).expect("valid radius");
    let (g, _) = largest_component(&raw);
    println!(
        "contact network: {} people, {} contact pairs, average {:.1} contacts/person",
        g.num_vertices(),
        g.num_edges(),
        2.0 * g.num_edges() as f64 / g.num_vertices() as f64
    );
    println!();

    for contacts_per_day in [1u32, 2, 3] {
        let process = CobraWalk::new(contacts_per_day);
        let mut state = process.spawn(&g, 0);
        let mut exposed = vec![false; g.num_vertices()];
        exposed[0] = true;
        let mut exposed_count = 1usize;
        let mut day = 0usize;
        let mut prevalence_samples = Vec::new();
        let max_days = 20_000_000;
        while exposed_count < g.num_vertices() && day < max_days {
            state.step(&g, &mut rng);
            day += 1;
            for &v in state.occupied() {
                if !exposed[v as usize] {
                    exposed[v as usize] = true;
                    exposed_count += 1;
                }
            }
            if day.is_power_of_two() {
                prevalence_samples.push((day, state.occupied().len(), exposed_count));
            }
        }
        println!("k = {contacts_per_day} infectious contact(s) per day:");
        if exposed_count == g.num_vertices() {
            println!("  everyone exposed after {day} days");
        } else {
            println!("  NOT fully exposed after {day} days ({exposed_count} reached)");
        }
        println!("  day | currently infected | ever exposed");
        for (d, infected, ever) in prevalence_samples.iter().take(12) {
            println!("  {d:>5} | {infected:>18} | {ever:>12}");
        }
        println!();
    }

    println!(
        "note: k = 1 is a plain random walk — the infection dies down to a single\n\
         lineage and takes enormously long to reach everyone. A single extra\n\
         contact per day (k = 2) collapses the exposure time: this is the paper's\n\
         branching-coalescing effect."
    );
}
