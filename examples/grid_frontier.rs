//! Watch a 2-cobra walk sweep a 2-d grid (§3 of the paper, live).
//!
//! Renders the `[0,n]²` grid as ASCII frames while the walk spreads:
//! `#` = active this round, `.` = covered earlier, ` ` = never visited.
//! The linear-in-n cover time of Theorem 3 is visible as a roughly
//! constant-speed frontier.
//!
//! ```sh
//! cargo run --release --example grid_frontier
//! ```

use cobra_repro::graph::generators::grid::{grid, GridShape};
use cobra_repro::walks::{CobraWalk, Process};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let extent = 30usize; // [0,30]² = 31×31 grid
    let shape = GridShape::new(&[extent, extent]).expect("valid shape");
    let g = grid(&[extent, extent]);
    let n = g.num_vertices();

    let mut rng = StdRng::seed_from_u64(7);
    let process = CobraWalk::standard();
    let mut state = process.spawn(&g, 0); // start at corner (0,0)

    let mut covered = vec![false; n];
    covered[0] = true;
    let mut covered_count = 1usize;
    let mut round = 0usize;
    let frames = [5usize, 15, 30, 50, 80, 120];

    while covered_count < n && round < 100_000 {
        state.step(&g, &mut rng);
        round += 1;
        for &v in state.occupied() {
            if !covered[v as usize] {
                covered[v as usize] = true;
                covered_count += 1;
            }
        }
        if frames.contains(&round) {
            println!(
                "--- round {round}: {covered_count}/{n} covered, {} active ---",
                state.occupied().len()
            );
            render(&shape, extent, &covered, state.occupied());
        }
    }
    println!(
        "covered the whole [0,{extent}]² grid in {round} rounds \
         (diameter {}, Theorem 3 predicts O(n) = O({extent}))",
        2 * extent
    );
}

fn render(shape: &GridShape, extent: usize, covered: &[bool], active: &[u32]) {
    let mut canvas: Vec<Vec<char>> = (0..=extent)
        .map(|y| {
            (0..=extent)
                .map(|x| {
                    let idx = shape.index_of(&[x, y]) as usize;
                    if covered[idx] {
                        '.'
                    } else {
                        ' '
                    }
                })
                .collect()
        })
        .collect();
    for &v in active {
        let c = shape.coords_of(v);
        canvas[c[1]][c[0]] = '#';
    }
    for row in canvas {
        println!("{}", row.into_iter().collect::<String>());
    }
    println!();
}
