//! # cobra-repro
//!
//! Umbrella crate for the reproduction of *Better Bounds for
//! Coalescing-Branching Random Walks* (Mitzenmacher, Rajaraman, Roche,
//! SPAA 2016).
//!
//! This crate re-exports the workspace members under stable module names so
//! downstream users (and the `examples/`) can depend on a single crate:
//!
//! * [`graph`] — CSR graphs, generators, metrics ([`cobra_graph`]);
//! * [`spectral`] — Laplacians, power iteration, the directed tensor chain
//!   D(G×G) ([`cobra_spectral`]);
//! * [`walks`] — cobra walks and every comparison process
//!   ([`cobra_core`]);
//! * [`sim`] — Monte-Carlo engine and statistics ([`cobra_sim`]);
//! * [`analysis`] — growth-shape fitting ([`cobra_analysis`]);
//! * [`obs`] — the zero-cost probe seam and deterministic run telemetry
//!   ([`cobra_obs`]).
//!
//! ## Quickstart
//!
//! ```
//! use cobra_repro::graph::generators::hypercube;
//! use cobra_repro::walks::{CobraWalk, CoverDriver};
//! use rand::SeedableRng;
//!
//! let g = hypercube::hypercube(6); // 64 vertices
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let walk = CobraWalk::new(2);
//! let result = CoverDriver::new(&g).run(&walk, 0, 100_000, &mut rng).unwrap();
//! assert_eq!(result.covered, g.num_vertices());
//! ```

pub use cobra_analysis as analysis;
pub use cobra_core as walks;
pub use cobra_graph as graph;
pub use cobra_obs as obs;
pub use cobra_sim as sim;
pub use cobra_spectral as spectral;
