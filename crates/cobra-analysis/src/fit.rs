//! Least-squares fits: linear and log–log power law.

/// Result of a two-parameter least-squares fit `y ≈ a + b·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitResult {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R² ∈ [0, 1]` (1 = perfect fit).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

/// Ordinary least squares for `y ≈ intercept + slope·x`.
///
/// Panics on fewer than 2 points or zero x-variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> FitResult {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    assert!(n >= 2, "need at least two points");
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "x values are all identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // lint:allow(float-eq, syy is exactly zero iff every y equals mean_y; any nonzero spread however small makes the ratio well-defined)
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    FitResult {
        intercept,
        slope,
        r_squared,
        n,
    }
}

/// Log–log power-law fit `y ≈ c·x^α`: returns a [`FitResult`] where
/// `slope` is the exponent `α` and `intercept` is `ln c`.
///
/// All `x` and `y` must be strictly positive.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> FitResult {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "power-law fit needs positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    linear_fit(&lx, &ly)
}

/// Evaluate a power-law fit at `x`.
pub fn power_law_eval(fit: &FitResult, x: f64) -> f64 {
    (fit.intercept + fit.slope * x.ln()).exp()
}

/// Residuals `y_i − ŷ_i` of a linear fit.
pub fn residuals(fit: &FitResult, xs: &[f64], ys: &[f64]) -> Vec<f64> {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| y - (fit.intercept + fit.slope * x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&xs, &ys);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 4);
    }

    #[test]
    fn noisy_line_good_r2() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 + 0.5 * x + 0.1 * ((x * 7.3).sin()))
            .collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 0.5).abs() < 0.01);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn constant_y_has_r2_one_slope_zero() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let f = linear_fit(&xs, &ys);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn rejects_degenerate_x() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn rejects_single_point() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..=20).map(|i| (i * 50) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let f = power_law_fit(&xs, &ys);
        assert!((f.slope - 1.5).abs() < 1e-10, "exponent {}", f.slope);
        assert!((f.intercept.exp() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_eval_roundtrip() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x * x).collect();
        let f = power_law_fit(&xs, &ys);
        assert!((power_law_eval(&f, 3.0) - 18.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_law_rejects_nonpositive() {
        power_law_fit(&[1.0, 2.0], &[0.0, 1.0]);
    }

    #[test]
    fn residuals_sum_to_zero_for_ols() {
        let xs = [1.0, 2.0, 3.0, 5.0];
        let ys = [2.0, 2.5, 4.0, 5.5];
        let f = linear_fit(&xs, &ys);
        let r = residuals(&f, &xs, &ys);
        assert!(r.iter().sum::<f64>().abs() < 1e-10);
    }
}
