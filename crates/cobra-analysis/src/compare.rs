//! Ratio flatness and crossover detection.
//!
//! Two recurring experiment questions:
//!
//! 1. *Is T(n) = O(f(n))?* — check that `T(n)/f(n)` is flat-or-decreasing
//!    as `n` grows ([`ratio_flatness`]);
//! 2. *Where does process A start beating process B?* — find the
//!    crossover index of two measured curves ([`crossover_point`]).

use crate::fit::linear_fit;

/// Summary of the normalized ratio `y_i / f_i`.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioReport {
    /// The ratios themselves.
    pub ratios: Vec<f64>,
    /// Fitted log–log slope of the ratio against x (≈ 0 means the bound
    /// shape is exact; < 0 means the bound is loose; > 0 means violated).
    pub log_slope: f64,
    /// Max/min ratio spread (1.0 = perfectly flat).
    pub spread: f64,
}

/// Compare measurements `ys` at scales `xs` against a candidate bound
/// shape `f(xs)` (already evaluated: `fs`). All inputs must be positive.
pub fn ratio_flatness(xs: &[f64], ys: &[f64], fs: &[f64]) -> RatioReport {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), fs.len());
    assert!(xs.len() >= 2, "need at least two scales");
    assert!(
        xs.iter().chain(ys).chain(fs).all(|&v| v > 0.0),
        "ratio test needs positive data"
    );
    let ratios: Vec<f64> = ys.iter().zip(fs).map(|(&y, &f)| y / f).collect();
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let lr: Vec<f64> = ratios.iter().map(|&r| r.ln()).collect();
    let fit = linear_fit(&lx, &lr);
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    RatioReport {
        ratios,
        log_slope: fit.slope,
        spread: max / min,
    }
}

/// Whether the ratio report is consistent with `y = O(f)`: the fitted
/// log-slope of the ratio does not exceed `tolerance` (e.g. 0.15 allows
/// for logarithmic slack and noise).
pub fn is_bounded_by(report: &RatioReport, tolerance: f64) -> bool {
    report.log_slope <= tolerance
}

/// First index `i` where `ys_a[i] < ys_b[i]` and stays below for the rest
/// of the series ("A durably beats B from here on"). `None` if no such
/// point.
pub fn crossover_point(ys_a: &[f64], ys_b: &[f64]) -> Option<usize> {
    assert_eq!(ys_a.len(), ys_b.len());
    let n = ys_a.len();
    let mut candidate = None;
    for i in 0..n {
        if ys_a[i] < ys_b[i] {
            candidate.get_or_insert(i);
        } else {
            candidate = None;
        }
    }
    candidate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ratio_detected() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x).collect();
        let fs = xs.clone(); // candidate f(n) = n
        let rep = ratio_flatness(&xs, &ys, &fs);
        assert!(rep.log_slope.abs() < 1e-10);
        assert!((rep.spread - 1.0).abs() < 1e-10);
        assert!(is_bounded_by(&rep, 0.1));
    }

    #[test]
    fn loose_bound_has_negative_slope() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let ys: Vec<f64> = xs.to_vec(); // T(n) = n
        let fs: Vec<f64> = xs.iter().map(|&x| x * x).collect(); // f(n) = n²
        let rep = ratio_flatness(&xs, &ys, &fs);
        assert!(rep.log_slope < -0.9);
        assert!(is_bounded_by(&rep, 0.1));
    }

    #[test]
    fn violated_bound_has_positive_slope() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect(); // T(n) = n²
        let fs = xs.clone(); // claimed f(n) = n
        let rep = ratio_flatness(&xs, &ys, &fs);
        assert!(rep.log_slope > 0.9);
        assert!(!is_bounded_by(&rep, 0.15));
    }

    #[test]
    fn crossover_found() {
        // A starts slower, wins from index 2 onward.
        let a = [10.0, 9.0, 5.0, 4.0, 3.0];
        let b = [5.0, 6.0, 7.0, 8.0, 9.0];
        assert_eq!(crossover_point(&a, &b), Some(2));
    }

    #[test]
    fn crossover_requires_durability() {
        // A dips below B but loses again at the end.
        let a = [10.0, 4.0, 10.0];
        let b = [5.0, 5.0, 5.0];
        assert_eq!(crossover_point(&a, &b), None);
    }

    #[test]
    fn crossover_from_start() {
        let a = [1.0, 1.0];
        let b = [2.0, 2.0];
        assert_eq!(crossover_point(&a, &b), Some(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        ratio_flatness(&[1.0, 2.0], &[1.0, -1.0], &[1.0, 1.0]);
    }
}
