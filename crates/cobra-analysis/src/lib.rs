//! # cobra-analysis
//!
//! Statistical analysis for asymptotic-shape verification.
//!
//! The paper proves bounds like "cover time = O(n) on `[0,n]^d`" or
//! "O(Φ⁻² log² n)". A simulation cannot verify a proof, but it can verify
//! the *shape*: fitted growth exponents, boundedness of normalized ratios,
//! and who-beats-whom orderings. This crate provides:
//!
//! * [`fit`] — ordinary least squares and log–log power-law fits with R²;
//! * [`bootstrap`] — bootstrap confidence intervals for fitted exponents;
//! * [`compare`] — ratio flatness tests and crossover detection;
//! * [`growth`] — classification of a curve against candidate shapes
//!   (`log n`, `log² n`, `√n`, `n`, `n log n`, `n^α`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod compare;
pub mod fit;
pub mod growth;

pub use bootstrap::bootstrap_exponent_ci;
pub use compare::{crossover_point, ratio_flatness};
pub use fit::{linear_fit, power_law_fit, FitResult};
pub use growth::{classify_growth, GrowthShape};
