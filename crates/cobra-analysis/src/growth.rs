//! Growth-shape classification: which canonical asymptotic shape best
//! explains a measured curve?
//!
//! The paper's bounds span `log² n` (expanders), `n` (grids),
//! `n log n` (conjectured general bound / star lower bound), and
//! `n^{11/4} log n` (general graphs). Classification picks the candidate
//! with the flattest, best-correlated normalized ratio.

use crate::fit::linear_fit;

/// Canonical growth shapes used across the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GrowthShape {
    /// `log n`
    Log,
    /// `log² n`
    LogSquared,
    /// `√n`
    Sqrt,
    /// `n`
    Linear,
    /// `n log n`
    NLogN,
    /// `n²`
    Quadratic,
    /// `n³`
    Cubic,
}

impl GrowthShape {
    /// Every candidate, in increasing asymptotic order.
    pub const ALL: [GrowthShape; 7] = [
        GrowthShape::Log,
        GrowthShape::LogSquared,
        GrowthShape::Sqrt,
        GrowthShape::Linear,
        GrowthShape::NLogN,
        GrowthShape::Quadratic,
        GrowthShape::Cubic,
    ];

    /// Evaluate the shape at `x > 1`.
    pub fn eval(&self, x: f64) -> f64 {
        assert!(x > 1.0, "shapes are compared for x > 1");
        match self {
            GrowthShape::Log => x.ln(),
            GrowthShape::LogSquared => x.ln() * x.ln(),
            GrowthShape::Sqrt => x.sqrt(),
            GrowthShape::Linear => x,
            GrowthShape::NLogN => x * x.ln(),
            GrowthShape::Quadratic => x * x,
            GrowthShape::Cubic => x * x * x,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            GrowthShape::Log => "log n",
            GrowthShape::LogSquared => "log^2 n",
            GrowthShape::Sqrt => "sqrt n",
            GrowthShape::Linear => "n",
            GrowthShape::NLogN => "n log n",
            GrowthShape::Quadratic => "n^2",
            GrowthShape::Cubic => "n^3",
        }
    }
}

/// Classify `(xs, ys)` against the canonical shapes: returns the shape
/// whose normalized ratio `y/f(x)` has the smallest absolute fitted
/// log-slope (i.e. the flattest ratio), along with that slope.
pub fn classify_growth(xs: &[f64], ys: &[f64]) -> (GrowthShape, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 3, "need at least 3 scales to classify");
    assert!(xs.iter().all(|&x| x > 1.0), "scales must exceed 1");
    assert!(ys.iter().all(|&y| y > 0.0), "measurements must be positive");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let mut best = (GrowthShape::Log, f64::INFINITY);
    for shape in GrowthShape::ALL {
        let lr: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| (y / shape.eval(x)).ln())
            .collect();
        let slope = linear_fit(&lx, &lr).slope;
        if slope.abs() < best.1.abs() || best.1.is_infinite() {
            best = (shape, slope);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scales() -> Vec<f64> {
        (1..=12).map(|i| (i * 200) as f64).collect()
    }

    #[test]
    fn classifies_linear() {
        let xs = scales();
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * x).collect();
        let (shape, slope) = classify_growth(&xs, &ys);
        assert_eq!(shape, GrowthShape::Linear);
        assert!(slope.abs() < 1e-10);
    }

    #[test]
    fn classifies_nlogn() {
        let xs = scales();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x * x.ln()).collect();
        let (shape, _) = classify_growth(&xs, &ys);
        assert_eq!(shape, GrowthShape::NLogN);
    }

    #[test]
    fn classifies_log_squared() {
        let xs = scales();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.ln() * x.ln()).collect();
        let (shape, _) = classify_growth(&xs, &ys);
        assert_eq!(shape, GrowthShape::LogSquared);
    }

    #[test]
    fn classifies_quadratic_and_cubic() {
        let xs = scales();
        let ys2: Vec<f64> = xs.iter().map(|&x| 0.01 * x * x).collect();
        assert_eq!(classify_growth(&xs, &ys2).0, GrowthShape::Quadratic);
        let ys3: Vec<f64> = xs.iter().map(|&x| 1e-5 * x * x * x).collect();
        assert_eq!(classify_growth(&xs, &ys3).0, GrowthShape::Cubic);
    }

    #[test]
    fn classification_tolerates_noise() {
        let xs = scales();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x * (1.0 + 0.08 * ((i as f64 * 3.7).sin())))
            .collect();
        let (shape, _) = classify_growth(&xs, &ys);
        assert_eq!(shape, GrowthShape::Linear);
    }

    #[test]
    fn eval_and_names() {
        assert_eq!(GrowthShape::Linear.eval(10.0), 10.0);
        assert!((GrowthShape::Log.eval(std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert_eq!(GrowthShape::Quadratic.name(), "n^2");
        assert_eq!(GrowthShape::ALL.len(), 7);
    }

    #[test]
    #[should_panic(expected = "3 scales")]
    fn rejects_too_few_points() {
        classify_growth(&[2.0, 3.0], &[1.0, 2.0]);
    }
}
