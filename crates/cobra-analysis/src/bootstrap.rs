//! Bootstrap confidence intervals for fitted exponents.
//!
//! Experiment conclusions like "the fitted exponent on the lollipop is
//! below 2.75" need error bars; the nonparametric bootstrap over data
//! points provides them without distributional assumptions.

use crate::fit::power_law_fit;
use cobra_sim::stats::quantile_sorted;
use rand::{Rng, RngExt};

/// Bootstrap percentile confidence interval for the power-law exponent of
/// `(xs, ys)`: resamples point pairs with replacement `resamples` times
/// and returns `(lo, hi)` at the given two-sided `confidence` (e.g. 0.95).
///
/// The interval ends are the `α/2` and `1 − α/2` sample quantiles of the
/// resampled exponents under the same linear-interpolation definition as
/// [`cobra_sim::stats::Summary::quantile`] — the earlier index-truncation
/// scheme (`floor` on the low tail, `ceil − 1` on the high tail) clipped
/// the two tails asymmetrically and biased every reported CI inward on
/// the high side.
///
/// Resamples that collapse to a single distinct x (unfittable) are
/// skipped; panics if every resample collapses (pathological input).
pub fn bootstrap_exponent_ci<R: Rng>(
    xs: &[f64],
    ys: &[f64],
    resamples: usize,
    confidence: f64,
    rng: &mut R,
) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 3, "need at least 3 points to bootstrap a fit");
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    let n = xs.len();
    let mut exps = Vec::with_capacity(resamples);
    let mut bx = vec![0.0; n];
    let mut by = vec![0.0; n];
    for _ in 0..resamples {
        for i in 0..n {
            let j = rng.random_range(0..n);
            bx[i] = xs[j];
            by[i] = ys[j];
        }
        // Skip degenerate resamples (all x identical).
        let first = bx[0];
        if bx.iter().all(|&x| x == first) {
            continue;
        }
        exps.push(power_law_fit(&bx, &by).slope);
    }
    assert!(!exps.is_empty(), "all bootstrap resamples were degenerate");
    exps.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    (
        quantile_sorted(&exps, alpha),
        quantile_sorted(&exps, 1.0 - alpha),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_power_law_gives_tight_ci() {
        let xs: Vec<f64> = (1..=15).map(|i| (i * 10) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x.powf(1.3)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let (lo, hi) = bootstrap_exponent_ci(&xs, &ys, 500, 0.95, &mut rng);
        assert!(lo <= 1.3 + 1e-9 && hi >= 1.3 - 1e-9, "CI [{lo}, {hi}]");
        assert!(hi - lo < 1e-6, "noiseless data should give a degenerate CI");
    }

    #[test]
    fn noisy_power_law_ci_contains_truth() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (1..=30).map(|i| (i * 20) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 2.0 * x.powf(2.0) * (1.0 + 0.1 * (rng.random::<f64>() - 0.5)))
            .collect();
        let (lo, hi) = bootstrap_exponent_ci(&xs, &ys, 800, 0.95, &mut rng);
        assert!(lo < 2.0 && hi > 2.0, "CI [{lo}, {hi}] must contain 2.0");
        assert!(hi - lo < 0.2, "CI [{lo}, {hi}] too wide for 10% noise");
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| x.powf(1.0) * (1.0 + 0.2 * (rng.random::<f64>() - 0.5)))
            .collect();
        let mut rng1 = StdRng::seed_from_u64(4);
        let (lo68, hi68) = bootstrap_exponent_ci(&xs, &ys, 600, 0.68, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(4);
        let (lo99, hi99) = bootstrap_exponent_ci(&xs, &ys, 600, 0.99, &mut rng2);
        assert!(hi99 - lo99 >= hi68 - lo68);
    }

    #[test]
    fn symmetric_resample_distribution_gives_symmetric_ci() {
        // Design invariant under (log x, log y) → (log x, 2·log x − log y):
        // the two middle points mirror each other, the end points are
        // fixed, so every resample has an equally likely mirror resample
        // with slope 2 − s. The bootstrap slope distribution is therefore
        // exactly symmetric about 1, and the percentile CI must be
        // symmetric about 1 up to resampling noise. (Interpolating both
        // tails with the shared `quantile_sorted` keeps the two ends at
        // mirrored quantile levels; mismatched index rules on the two
        // tails would skew this.)
        let xs: Vec<f64> = [0.0f64, 1.0, 1.0, 2.0].iter().map(|u| u.exp()).collect();
        let ys: Vec<f64> = [0.0f64, 1.5, 0.5, 2.0].iter().map(|v| v.exp()).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let (lo, hi) = bootstrap_exponent_ci(&xs, &ys, 4000, 0.90, &mut rng);
        assert!(lo < 1.0 && hi > 1.0, "CI [{lo}, {hi}] must contain 1.0");
        let skew = (1.0 - lo) - (hi - 1.0);
        assert!(
            skew.abs() < 0.05,
            "CI [{lo}, {hi}] asymmetric about 1.0 (skew {skew:.4})"
        );
    }

    #[test]
    #[should_panic(expected = "3 points")]
    fn rejects_tiny_samples() {
        let mut rng = StdRng::seed_from_u64(0);
        bootstrap_exponent_ci(&[1.0, 2.0], &[1.0, 2.0], 10, 0.9, &mut rng);
    }
}
