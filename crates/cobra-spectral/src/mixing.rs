//! Mixing-time estimates: spectral predictions and direct measurement.
//!
//! Theorem 8 uses `|p_t(v) − π(v)| ≤ e^{−t·Φ²/2}`, i.e. a mixing time of
//! `t = 2·log(2n)/Φ²` suffices to flatten the walk to within `1/2n`
//! pointwise. This module provides both that spectral prediction and a
//! direct (exact-evolution) measurement so experiments can compare.

use crate::matrix::CsrMatrix;
use crate::walk_matrix::{delta, evolve, stationary_distribution, transition_matrix, tv_distance};
use cobra_graph::Graph;

/// The paper's Theorem 8 epoch length: `t ≥ 2·log(2n)/Φ²` makes every
/// pointwise deviation at most `1/(2n)`.
pub fn epoch_length_from_conductance(phi: f64, n: usize) -> usize {
    assert!(phi > 0.0, "conductance must be positive");
    let t = 2.0 * ((2 * n) as f64).ln() / (phi * phi);
    t.ceil() as usize
}

/// Spectral mixing-time prediction from a normalized-Laplacian gap `ν₂`:
/// `t_mix(ε) ≈ ln(n/ε)/ν₂` (relaxation-time heuristic).
pub fn mixing_time_from_gap(nu2: f64, n: usize, eps: f64) -> usize {
    assert!(nu2 > 0.0 && eps > 0.0);
    ((n as f64 / eps).ln() / nu2).ceil() as usize
}

/// Measured ε-mixing time of a transition matrix from the worst of the
/// provided start vertices: the first `t ≤ max_steps` with
/// `TV(p_t, π) ≤ ε` for all starts. Returns `None` if not reached.
pub fn measured_mixing_time(
    p: &CsrMatrix,
    pi: &[f64],
    starts: &[usize],
    eps: f64,
    max_steps: usize,
) -> Option<usize> {
    let n = pi.len();
    let mut dists: Vec<Vec<f64>> = starts.iter().map(|&s| delta(n, s)).collect();
    // Step all starts in lockstep; early-exit when all are mixed.
    for t in 0..=max_steps {
        if dists.iter().all(|d| tv_distance(d, pi) <= eps) {
            return Some(t);
        }
        if t == max_steps {
            break;
        }
        for d in &mut dists {
            *d = evolve(p, d, 1);
        }
    }
    None
}

/// Convenience: measured mixing time of the **lazy** simple walk on `g`
/// from every vertex (exact evolution; small graphs only).
pub fn lazy_walk_mixing_time(g: &Graph, eps: f64, max_steps: usize) -> Option<usize> {
    let p = crate::walk_matrix::lazy_transition_matrix(g, 0.5);
    let pi = stationary_distribution(g);
    let starts: Vec<usize> = (0..g.num_vertices()).collect();
    measured_mixing_time(&p, &pi, &starts, eps, max_steps)
}

/// Pointwise (∞-norm) deviation from stationarity after `t` steps of the
/// simple walk from `start` — the exact quantity Theorem 8's epoch
/// argument bounds by `e^{−t·Φ²/2}`.
pub fn pointwise_deviation(g: &Graph, start: usize, t: usize) -> f64 {
    let p = transition_matrix(g);
    let pi = stationary_distribution(g);
    let dist = evolve(&p, &delta(g.num_vertices(), start), t);
    dist.iter()
        .zip(&pi)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, hypercube};

    #[test]
    fn epoch_length_scales_inverse_square() {
        let n = 1000;
        let a = epoch_length_from_conductance(0.5, n);
        let b = epoch_length_from_conductance(0.25, n);
        // Φ halved -> epoch ~4x.
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn epoch_rejects_zero_phi() {
        epoch_length_from_conductance(0.0, 10);
    }

    #[test]
    fn mixing_time_from_gap_monotone() {
        assert!(mixing_time_from_gap(0.1, 100, 0.01) > mixing_time_from_gap(0.5, 100, 0.01));
        assert!(mixing_time_from_gap(0.1, 100, 0.001) >= mixing_time_from_gap(0.1, 100, 0.01));
    }

    #[test]
    fn complete_graph_mixes_almost_instantly() {
        let g = classic::complete(12).unwrap();
        let t = lazy_walk_mixing_time(&g, 0.01, 100).unwrap();
        assert!(t <= 10, "K12 lazy mixing time {t}");
    }

    #[test]
    fn cycle_mixes_slowly() {
        let fast = lazy_walk_mixing_time(&classic::complete(16).unwrap(), 0.01, 10_000).unwrap();
        let slow = lazy_walk_mixing_time(&classic::cycle(16).unwrap(), 0.01, 10_000).unwrap();
        assert!(slow > 3 * fast, "cycle {slow} vs complete {fast}");
    }

    #[test]
    fn measured_mixing_time_none_when_budget_short() {
        let g = classic::cycle(32).unwrap();
        assert_eq!(lazy_walk_mixing_time(&g, 0.001, 2), None);
    }

    #[test]
    fn pointwise_deviation_decays_on_hypercube() {
        let g = hypercube::hypercube(4);
        let d1 = pointwise_deviation(&g, 0, 1);
        let d20 = pointwise_deviation(&g, 0, 20);
        assert!(d20 < d1);
        // Note: the plain (non-lazy) hypercube walk is periodic, so d20
        // does not go to 0; it goes to the parity-restricted profile. The
        // decay check above still holds because early steps are far more
        // concentrated. For the true Theorem 8 comparison the harness uses
        // the lazy walk.
    }

    #[test]
    fn theorem8_pointwise_bound_holds_on_expanderish_graph() {
        // For K_n (conductance ~ 1/2 + …) the paper's bound
        // e^{−tΦ²/2} should comfortably dominate the measured deviation
        // for moderately large t (lazy chain: use lazy matrix through the
        // measured deviation of the lazy walk).
        let g = classic::complete(10).unwrap();
        let phi = cobra_graph::metrics::conductance_exact(&g).unwrap();
        let p = crate::walk_matrix::lazy_transition_matrix(&g, 0.5);
        let pi = stationary_distribution(&g);
        let t = 40usize;
        let dist = evolve(&p, &delta(10, 0), t);
        let dev = dist
            .iter()
            .zip(&pi)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let bound = (-(t as f64) * phi * phi / 2.0).exp();
        assert!(dev <= bound, "measured {dev} vs bound {bound}");
    }
}
