//! Exact hitting times of the simple random walk via linear solves —
//! ground truth for validating the Monte-Carlo drivers on small graphs.
//!
//! The hitting times `h(x) = H(x, v)` of the simple walk solve the linear
//! system `h(v) = 0`, `h(x) = 1 + (1/d(x)) Σ_{y∈N(x)} h(y)` for `x ≠ v`.
//! We solve it by dense Gaussian elimination with partial pivoting —
//! `O(n³)`, intended for `n ≤ ~1000` test instances.

use cobra_graph::{Graph, Vertex};

/// Solve `A·x = b` in place by Gaussian elimination with partial pivoting.
/// `a` is row-major `n×n`. Returns `None` for (numerically) singular
/// systems.
pub fn solve_dense(a: &mut [f64], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape");
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Exact expected hitting times `H(x, target)` of the **simple random
/// walk** for every start `x`. Requires a connected graph.
pub fn exact_hitting_times(g: &Graph, target: Vertex) -> Vec<f64> {
    let n = g.num_vertices();
    assert!(n >= 1);
    assert!((target as usize) < n);
    assert!(
        cobra_graph::metrics::is_connected(g),
        "hitting times need a connected graph"
    );
    if n == 1 {
        return vec![0.0];
    }
    // Variables: h(x) for x != target, indexed by dense position.
    let mut var_of = vec![usize::MAX; n];
    let mut vars = Vec::with_capacity(n - 1);
    for v in g.vertices() {
        if v != target {
            var_of[v as usize] = vars.len();
            vars.push(v);
        }
    }
    let m = vars.len();
    let mut a = vec![0.0; m * m];
    let mut b = vec![1.0; m];
    for (i, &x) in vars.iter().enumerate() {
        a[i * m + i] = 1.0;
        let dx = g.degree(x) as f64;
        for &y in g.neighbors(x) {
            if y != target {
                a[i * m + var_of[y as usize]] -= 1.0 / dx;
            }
        }
    }
    let sol = solve_dense(&mut a, &mut b).expect("hitting system is nonsingular");
    let mut h = vec![0.0; n];
    for (i, &x) in vars.iter().enumerate() {
        h[x as usize] = sol[i];
    }
    h
}

/// Exact expected return time to `v` for the simple walk: `2m / d(v)`
/// (Kac's formula). Provided for cross-checking biased-walk return-time
/// experiments.
pub fn exact_return_time(g: &Graph, v: Vertex) -> f64 {
    g.total_degree() as f64 / g.degree(v) as f64
}

/// The maximum exact hitting time `max_{u,v} H(u,v)` of the simple walk —
/// exact `h_max` for small graphs (runs `n` linear solves: `O(n⁴)`).
pub fn exact_hmax(g: &Graph) -> f64 {
    let mut worst = 0.0f64;
    for v in g.vertices() {
        let h = exact_hitting_times(g, v);
        for &x in &h {
            worst = worst.max(x);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;

    #[test]
    fn solve_dense_simple_system() {
        // x + y = 3; x - y = 1 -> (2, 1)
        let mut a = vec![1.0, 1.0, 1.0, -1.0];
        let mut b = vec![3.0, 1.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_dense_detects_singular() {
        let mut a = vec![1.0, 1.0, 2.0, 2.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b).is_none());
    }

    #[test]
    fn solve_dense_needs_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![5.0, 7.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_hitting_times_match_formula() {
        // On C_n, H(x, 0) = k(n−k) where k is the hop distance.
        let n = 9;
        let g = classic::cycle(n).unwrap();
        let h = exact_hitting_times(&g, 0);
        for (x, &hx) in h.iter().enumerate() {
            let k = x.min(n - x) as f64;
            let expect = k * (n as f64 - k);
            assert!(
                (hx - expect).abs() < 1e-8,
                "H({x},0) = {hx}, expect {expect}"
            );
        }
    }

    #[test]
    fn complete_graph_hitting_times() {
        // On K_n, H(x, v) = n − 1 for x ≠ v.
        let g = classic::complete(7).unwrap();
        let h = exact_hitting_times(&g, 3);
        for (x, &hx) in h.iter().enumerate() {
            let expect = if x == 3 { 0.0 } else { 6.0 };
            assert!((hx - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn path_hitting_time_is_quadratic() {
        // On P_n (0..n−1), H(k, 0) = k². (Gambler's ruin with reflecting
        // top end: H(k,0) = k^2 for path? For path with reflecting end at
        // n−1: H(k, 0) = k(2n − k − 1) − k(k−1) … verify against the
        // standard formula H(k,0) = k² + k(2(n−1−k))·… — simpler: check
        // endpoints via direct recurrence values for small n.)
        let g = classic::path(4).unwrap();
        let h = exact_hitting_times(&g, 0);
        // Exact values for P_4 (states 0..3): h(1) = 5, h(2) = 8, h(3) = 9.
        assert!((h[1] - 5.0).abs() < 1e-9, "h1 = {}", h[1]);
        assert!((h[2] - 8.0).abs() < 1e-9, "h2 = {}", h[2]);
        assert!((h[3] - 9.0).abs() < 1e-9, "h3 = {}", h[3]);
    }

    #[test]
    fn star_hitting_times() {
        // Star with hub 0: H(leaf, 0) = 1. H(0, leaf) = 2(n−1) − 1.
        let n = 6;
        let g = classic::star(n).unwrap();
        let to_hub = exact_hitting_times(&g, 0);
        for h in to_hub.iter().skip(1) {
            assert!((h - 1.0).abs() < 1e-9);
        }
        let to_leaf = exact_hitting_times(&g, 1);
        assert!((to_leaf[0] - (2.0 * (n as f64 - 1.0) - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn kac_return_time() {
        let g = classic::star(5).unwrap();
        assert!((exact_return_time(&g, 0) - 2.0).abs() < 1e-12); // hub
        assert!((exact_return_time(&g, 1) - 8.0).abs() < 1e-12); // leaf
    }

    #[test]
    fn hmax_of_path_is_end_to_end() {
        let n = 8;
        let g = classic::path(n).unwrap();
        let hmax = exact_hmax(&g);
        // End-to-end hitting time of P_n is (n−1)².
        assert!((hmax - 49.0).abs() < 1e-8, "hmax = {hmax}");
    }

    #[test]
    fn single_vertex_graph() {
        let g = cobra_graph::builder::from_edges(1, &[]).unwrap();
        assert_eq!(exact_hitting_times(&g, 0), vec![0.0]);
    }
}
