//! Normalized-Laplacian spectral gap and the Cheeger inequality.
//!
//! Theorem 8's proof converts conductance to a spectral quantity via
//! `|p_t(v) − π(v)| ≤ e^{−t·ν₂} ≤ e^{−t·Φ²/2}`. This module measures the
//! spectral side: the gap `ν₂ = 1 − λ₂(D^{-1/2} A D^{-1/2})` of the
//! normalized Laplacian, plus the two-sided Cheeger inequality
//! `ν₂/2 ≤ Φ_G ≤ √(2·ν₂)` that the experiments use to sanity-check the
//! sweep-cut conductance estimates from `cobra-graph`.

use crate::matrix::CsrMatrix;
use crate::power::{power_iteration, second_eigenvalue};
use cobra_graph::Graph;

/// The symmetric normalized adjacency `N = D^{-1/2} A D^{-1/2}`.
///
/// Its top eigenvalue is 1 with eigenvector `√d(v)`; `1 − λ₂(N)` is the
/// normalized-Laplacian spectral gap. Isolated vertices are not allowed.
pub fn normalized_adjacency(g: &Graph) -> CsrMatrix {
    assert!(g.min_degree() > 0, "graph must have min degree >= 1");
    let inv_sqrt: Vec<f64> = g
        .vertices()
        .map(|v| 1.0 / (g.degree(v) as f64).sqrt())
        .collect();
    let rows: Vec<Vec<(u32, f64)>> = g
        .vertices()
        .map(|v| {
            let sv = inv_sqrt[v as usize];
            g.neighbors(v)
                .iter()
                .map(|&u| (u, sv * inv_sqrt[u as usize]))
                .collect()
        })
        .collect();
    CsrMatrix::from_rows(g.num_vertices(), rows)
}

/// The normalized-Laplacian spectral gap `ν₂ = 1 − λ₂(N)`.
///
/// Computed by power iteration on the positive-semidefinite shift
/// `M = (I + N)/2` (eigenvalues in `[0, 1]`, so the *algebraically*
/// second-largest eigenvalue of `N` is recovered even on bipartite graphs
/// where `λ_min(N) = −1` would otherwise dominate in absolute value).
pub fn spectral_gap(g: &Graph, max_iters: usize, tol: f64) -> f64 {
    let n = g.num_vertices();
    assert!(n >= 2, "gap needs at least two vertices");
    let nadj = normalized_adjacency(g);
    // M = (I + N) / 2 assembled directly.
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|i| {
            let (cols, vals) = nadj.row(i);
            let mut row: Vec<(u32, f64)> =
                cols.iter().zip(vals).map(|(&c, &v)| (c, v / 2.0)).collect();
            row.push((i as u32, 0.5));
            row
        })
        .collect();
    let m = CsrMatrix::from_rows(n, rows);

    // Exact dominant eigenvector of N (and M): sqrt(degree).
    let dominant: Vec<f64> = g.vertices().map(|v| (g.degree(v) as f64).sqrt()).collect();
    let top = power_iteration(&m, &dominant, max_iters, tol);
    debug_assert!((top.value - 1.0).abs() < 1e-6, "top eigenvalue should be 1");
    let second = second_eigenvalue(&m, &top.vector, max_iters, tol);
    let lambda2 = 2.0 * second.value - 1.0; // undo the shift
    (1.0 - lambda2).clamp(0.0, 2.0)
}

/// The Cheeger sandwich for the conductance given a spectral gap `nu2`:
/// returns `(lower, upper) = (ν₂/2, √(2·ν₂))`.
pub fn cheeger_bounds(nu2: f64) -> (f64, f64) {
    assert!(nu2 >= 0.0, "gap must be non-negative");
    (nu2 / 2.0, (2.0 * nu2).sqrt())
}

/// A spectral-ordering sweep cut: orders vertices by the second
/// eigenvector of the normalized adjacency (the Fiedler-like direction,
/// scaled back by `D^{-1/2}`) and returns the best prefix conductance.
/// This is the Cheeger-quality estimator of `Φ_G` used for graphs too
/// large for exact enumeration.
pub fn spectral_sweep_conductance(g: &Graph, max_iters: usize, tol: f64) -> Option<f64> {
    let n = g.num_vertices();
    if n < 2 || g.num_edges() == 0 {
        return None;
    }
    let nadj = normalized_adjacency(g);
    let dominant: Vec<f64> = g.vertices().map(|v| (g.degree(v) as f64).sqrt()).collect();
    // Shifted matrix for stability (same trick as spectral_gap).
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|i| {
            let (cols, vals) = nadj.row(i);
            let mut row: Vec<(u32, f64)> =
                cols.iter().zip(vals).map(|(&c, &v)| (c, v / 2.0)).collect();
            row.push((i as u32, 0.5));
            row
        })
        .collect();
    let m = CsrMatrix::from_rows(n, rows);
    let top = power_iteration(&m, &dominant, max_iters, tol);
    let second = second_eigenvalue(&m, &top.vector, max_iters, tol);
    // Convert the N-eigenvector to the walk eigenvector: x / sqrt(d).
    let mut order: Vec<u32> = (0..n as u32).collect();
    let score: Vec<f64> = second
        .vector
        .iter()
        .zip(g.vertices())
        .map(|(x, v)| x / (g.degree(v) as f64).sqrt())
        .collect();
    order.sort_by(|&a, &b| {
        score[a as usize]
            .partial_cmp(&score[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cobra_graph::metrics::sweep_conductance(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, hypercube};
    use cobra_graph::metrics::conductance_exact;

    #[test]
    fn complete_graph_gap() {
        // K_n: normalized adjacency eigenvalues are 1 and −1/(n−1);
        // gap = 1 + 1/(n−1) = n/(n−1).
        let g = classic::complete(8).unwrap();
        let gap = spectral_gap(&g, 5000, 1e-12);
        assert!((gap - 8.0 / 7.0).abs() < 1e-5, "gap {gap}");
    }

    #[test]
    fn cycle_gap_matches_formula() {
        // C_n: λ₂ = cos(2π/n), gap = 1 − cos(2π/n).
        let n = 16;
        let g = classic::cycle(n).unwrap();
        let gap = spectral_gap(&g, 20000, 1e-13);
        let expect = 1.0 - (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((gap - expect).abs() < 1e-5, "gap {gap} vs {expect}");
    }

    #[test]
    fn hypercube_gap() {
        // Q_d: normalized adjacency eigenvalues are 1 − 2k/d; gap = 2/d.
        let d = 4u32;
        let g = hypercube::hypercube(d);
        let gap = spectral_gap(&g, 20000, 1e-13);
        assert!((gap - 0.5).abs() < 1e-5, "gap {gap}");
    }

    #[test]
    fn bipartite_graph_gap_is_algebraic_not_absolute() {
        // Even cycle is bipartite: λ_min = −1. The gap must still use the
        // algebraically-second eigenvalue cos(2π/n), not |−1|.
        let g = classic::cycle(6).unwrap();
        let gap = spectral_gap(&g, 20000, 1e-13);
        let expect = 1.0 - (std::f64::consts::PI / 3.0).cos(); // 0.5
        assert!((gap - expect).abs() < 1e-5, "gap {gap} vs {expect}");
    }

    #[test]
    fn cheeger_sandwich_holds_on_small_graphs() {
        for g in [
            classic::complete(6).unwrap(),
            classic::cycle(10).unwrap(),
            classic::barbell(4, 0).unwrap(),
            hypercube::hypercube(3),
        ] {
            let gap = spectral_gap(&g, 50000, 1e-13);
            let phi = conductance_exact(&g).unwrap();
            let (lo, hi) = cheeger_bounds(gap);
            assert!(
                phi >= lo - 1e-6 && phi <= hi + 1e-6,
                "Cheeger violated: {lo} <= {phi} <= {hi}"
            );
        }
    }

    #[test]
    fn spectral_sweep_finds_barbell_bottleneck() {
        let g = classic::barbell(5, 0).unwrap();
        let phi_exact = conductance_exact(&g).unwrap();
        let phi_sweep = spectral_sweep_conductance(&g, 50000, 1e-13).unwrap();
        // Sweep is an upper bound and on a barbell should be exact.
        assert!(phi_sweep >= phi_exact - 1e-9);
        assert!(
            (phi_sweep - phi_exact).abs() < 1e-6,
            "sweep {phi_sweep} vs exact {phi_exact}"
        );
    }

    #[test]
    fn sweep_none_for_empty() {
        let g = cobra_graph::Graph::empty(3);
        assert!(spectral_sweep_conductance(&g, 100, 1e-6).is_none());
    }

    #[test]
    fn cheeger_bounds_shape() {
        let (lo, hi) = cheeger_bounds(0.5);
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 1.0).abs() < 1e-12);
    }
}
