//! Transition matrices of simple and lazy random walks, and exact
//! distribution evolution.
//!
//! The experiment harness cross-checks Monte-Carlo walk estimates against
//! these exact computations on small graphs, and the Theorem 8 experiment
//! uses the spectral-gap/mixing estimates derived from them.

use crate::matrix::CsrMatrix;
use cobra_graph::Graph;

/// The row-stochastic transition matrix `P` of the simple random walk:
/// `P[v][u] = 1/d(v)` for `u ∈ N(v)`.
pub fn transition_matrix(g: &Graph) -> CsrMatrix {
    let rows: Vec<Vec<(u32, f64)>> = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as f64;
            g.neighbors(v).iter().map(|&u| (u, 1.0 / d)).collect()
        })
        .collect();
    CsrMatrix::from_rows(g.num_vertices(), rows)
}

/// The lazy walk matrix `(1 − α)·P + α·I` (hold probability `α`).
pub fn lazy_transition_matrix(g: &Graph, alpha: f64) -> CsrMatrix {
    assert!((0.0..1.0).contains(&alpha), "laziness in [0,1)");
    let rows: Vec<Vec<(u32, f64)>> = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as f64;
            let mut row: Vec<(u32, f64)> = g
                .neighbors(v)
                .iter()
                .map(|&u| (u, (1.0 - alpha) / d))
                .collect();
            row.push((v, alpha));
            row
        })
        .collect();
    CsrMatrix::from_rows(g.num_vertices(), rows)
}

/// The stationary distribution of the simple walk on a connected graph:
/// `π(v) = d(v) / 2m`.
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    let total = g.total_degree() as f64;
    assert!(total > 0.0, "graph with no edges has no stationary walk");
    g.vertices().map(|v| g.degree(v) as f64 / total).collect()
}

/// Evolve a row-vector distribution `steps` times: `π ← π P`.
pub fn evolve(p: &CsrMatrix, dist: &[f64], steps: usize) -> Vec<f64> {
    assert_eq!(p.n_rows(), p.n_cols(), "square transition matrix");
    let mut cur = dist.to_vec();
    let mut next = vec![0.0; dist.len()];
    for _ in 0..steps {
        p.matvec_transpose(&cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Total-variation distance `½‖p − q‖₁`.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// The point-mass distribution at `v`.
pub fn delta(n: usize, v: usize) -> Vec<f64> {
    let mut d = vec![0.0; n];
    d[v] = 1.0;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;

    #[test]
    fn transition_matrix_is_stochastic() {
        let g = classic::star(6).unwrap();
        let p = transition_matrix(&g);
        assert!(p.is_row_stochastic(1e-12));
        assert_eq!(p.get(1, 0), 1.0); // leaf -> hub with certainty
        assert!((p.get(0, 3) - 0.2).abs() < 1e-12); // hub -> each leaf 1/5
    }

    #[test]
    fn lazy_matrix_is_stochastic_with_self_loops() {
        let g = classic::cycle(5).unwrap();
        let p = lazy_transition_matrix(&g, 0.5);
        assert!(p.is_row_stochastic(1e-12));
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((p.get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_degree_proportional() {
        let g = classic::star(5).unwrap();
        let pi = stationary_distribution(&g);
        assert!((pi[0] - 0.5).abs() < 1e-12); // hub holds half the mass
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = classic::complete(6).unwrap();
        let p = transition_matrix(&g);
        let pi = stationary_distribution(&g);
        let evolved = evolve(&p, &pi, 3);
        assert!(tv_distance(&pi, &evolved) < 1e-12);
    }

    #[test]
    fn evolution_converges_on_non_bipartite_graph() {
        let g = classic::complete(5).unwrap();
        let p = transition_matrix(&g);
        let start = delta(5, 0);
        let evolved = evolve(&p, &start, 50);
        let pi = stationary_distribution(&g);
        assert!(tv_distance(&evolved, &pi) < 1e-6);
    }

    #[test]
    fn bipartite_graph_oscillates_without_laziness() {
        // Even cycle is bipartite: the parity of the walker is
        // deterministic, so TV distance to stationary stays 1/2.
        let g = classic::cycle(4).unwrap();
        let p = transition_matrix(&g);
        let evolved = evolve(&p, &delta(4, 0), 101);
        let pi = stationary_distribution(&g);
        assert!(tv_distance(&evolved, &pi) > 0.4);
        // Laziness breaks periodicity.
        let lp = lazy_transition_matrix(&g, 0.5);
        let evolved = evolve(&lp, &delta(4, 0), 101);
        assert!(tv_distance(&evolved, &pi) < 1e-6);
    }

    #[test]
    fn tv_distance_properties() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((tv_distance(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(tv_distance(&p, &p), 0.0);
    }

    #[test]
    fn evolve_zero_steps_is_identity() {
        let g = classic::cycle(5).unwrap();
        let p = transition_matrix(&g);
        let d = delta(5, 2);
        assert_eq!(evolve(&p, &d, 0), d);
    }
}
