//! The directed tensor-product chain **D(G×G)** of Lemma 11.
//!
//! Lemma 11 analyzes the joint walk of two Walt pebbles `i < j` on a
//! `d`-regular graph `G` as a random walk on a *directed, multi-edge*
//! version of the tensor product `G×G`:
//!
//! * off-diagonal states `(u, v)`, `u ≠ v` (the paper's `S₂`): both
//!   pebbles step independently — probability `1/d²` per pair of
//!   neighbor choices;
//! * diagonal states `(u, u)` (the paper's `S₁`): the lower-order pebble
//!   leads with a uniform choice `x`, and the follower copies it with
//!   probability 1/2 (total probability of landing together:
//!   `1/2 + 1/(2d)`), giving `P[(u,u) → (x,x)] = (d+1)/(2d²)` and
//!   `P[(u,u) → (x,y)] = 1/(2d²)` for `x ≠ y` — exactly the paper's
//!   multi-edge weights;
//! * the chain is Eulerian, so its stationary distribution is
//!   `out-degree/|E|`: `2/(n²+n)` on the diagonal and `1/(n²+n)` off it,
//!   which is how the paper bounds `Pr[E_i ∩ E_j] ≤ 2/(n²+n) + 1/n⁴`
//!   after mixing.
//!
//! Experiment E6 builds this chain, verifies the stationary distribution
//! against power iteration, and checks the collision-probability bound.

use crate::matrix::CsrMatrix;
use crate::walk_matrix::{evolve, tv_distance};
use cobra_graph::{Graph, Vertex};

/// Cap on `n²·d²` stored entries (≈ 800 MB of f64+index at the cap).
const MAX_ENTRIES: usize = 50_000_000;

/// The materialized D(G×G) chain for a `d`-regular graph.
pub struct TensorChain {
    n: usize,
    degree: usize,
    lazy: bool,
    p: CsrMatrix,
}

impl TensorChain {
    /// Build the chain. Panics if `g` is not regular (Lemma 11's setting)
    /// or too large to materialize.
    pub fn new(g: &Graph, lazy: bool) -> Self {
        let n = g.num_vertices();
        let degree = g
            .regularity()
            .expect("Lemma 11's tensor chain requires a d-regular graph");
        assert!(degree >= 1, "graph must have edges");
        assert!(
            n * n * degree * degree <= MAX_ENTRIES,
            "tensor chain too large: n²·d² = {} entries",
            n * n * degree * degree
        );

        let d = degree as f64;
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n * n);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let mut row: Vec<(u32, f64)> = Vec::with_capacity(degree * degree + 1);
                if a != b {
                    // S2: independent moves.
                    let pr = 1.0 / (d * d);
                    for &x in g.neighbors(a) {
                        for &y in g.neighbors(b) {
                            row.push((Self::index_of_n(n, x, y), pr));
                        }
                    }
                } else {
                    // S1: leader + coin-flip follower.
                    let together = (d + 1.0) / (2.0 * d * d);
                    let apart = 1.0 / (2.0 * d * d);
                    for &x in g.neighbors(a) {
                        for &y in g.neighbors(a) {
                            let pr = if x == y { together } else { apart };
                            row.push((Self::index_of_n(n, x, y), pr));
                        }
                    }
                }
                if lazy {
                    for e in &mut row {
                        e.1 *= 0.5;
                    }
                    row.push((Self::index_of_n(n, a, b), 0.5));
                }
                rows.push(row);
            }
        }
        let p = CsrMatrix::from_rows(n * n, rows);
        debug_assert!(p.is_row_stochastic(1e-9));
        TensorChain { n, degree, lazy, p }
    }

    #[inline]
    fn index_of_n(n: usize, a: Vertex, b: Vertex) -> u32 {
        (a as usize * n + b as usize) as u32
    }

    /// Flattened state index of the pebble pair `(a, b)`.
    pub fn index_of(&self, a: Vertex, b: Vertex) -> usize {
        a as usize * self.n + b as usize
    }

    /// Inverse of [`TensorChain::index_of`].
    pub fn pair_of(&self, idx: usize) -> (Vertex, Vertex) {
        ((idx / self.n) as Vertex, (idx % self.n) as Vertex)
    }

    /// Number of states `n²`.
    pub fn num_states(&self) -> usize {
        self.n * self.n
    }

    /// Degree of the underlying regular graph.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Whether the chain includes the paper's global-laziness self-loops.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// Lemma 11's closed-form stationary distribution: `2/(n²+n)` on the
    /// diagonal (`S₁`), `1/(n²+n)` off it (`S₂`).
    pub fn theoretical_stationary(&self) -> Vec<f64> {
        let n = self.n;
        let diag = 2.0 / ((n * n + n) as f64);
        let off = 1.0 / ((n * n + n) as f64);
        (0..n * n)
            .map(|idx| if idx / n == idx % n { diag } else { off })
            .collect()
    }

    /// Distribution over pair-states after `steps` rounds from the pebble
    /// pair `(a, b)`.
    pub fn evolve_from(&self, a: Vertex, b: Vertex, steps: usize) -> Vec<f64> {
        let mut start = vec![0.0; self.num_states()];
        start[self.index_of(a, b)] = 1.0;
        evolve(&self.p, &start, steps)
    }

    /// Probability the two pebbles are co-located (`Σ` of diagonal mass)
    /// after `steps` rounds from `(a, b)` — the `Pr[E_i ∩ E_j]`-style
    /// quantity of Lemma 11 aggregated over all meeting vertices.
    pub fn collision_probability(&self, a: Vertex, b: Vertex, steps: usize) -> f64 {
        let dist = self.evolve_from(a, b, steps);
        (0..self.n).map(|u| dist[u * self.n + u]).sum()
    }

    /// Probability that both pebbles sit at the specific vertex `v` after
    /// `steps` rounds from `(a, b)` — literally Lemma 11's
    /// `Pr[E_i ∩ E_j]` for target `v`.
    pub fn joint_occupancy(&self, a: Vertex, b: Vertex, v: Vertex, steps: usize) -> f64 {
        let dist = self.evolve_from(a, b, steps);
        dist[self.index_of(v, v)]
    }

    /// Total-variation distance of the `steps`-step distribution from the
    /// Eulerian stationary distribution (mixing diagnostic).
    pub fn distance_to_stationary(&self, a: Vertex, b: Vertex, steps: usize) -> f64 {
        let dist = self.evolve_from(a, b, steps);
        tv_distance(&dist, &self.theoretical_stationary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, hypercube};

    #[test]
    fn chain_shape() {
        let g = classic::cycle(5).unwrap();
        let tc = TensorChain::new(&g, true);
        assert_eq!(tc.num_states(), 25);
        assert_eq!(tc.degree(), 2);
        assert!(tc.is_lazy());
        assert!(tc.matrix().is_row_stochastic(1e-9));
    }

    #[test]
    fn index_roundtrip() {
        let g = classic::cycle(5).unwrap();
        let tc = TensorChain::new(&g, false);
        for a in 0..5u32 {
            for b in 0..5u32 {
                let idx = tc.index_of(a, b);
                assert_eq!(tc.pair_of(idx), (a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "regular")]
    fn rejects_irregular_graph() {
        let g = classic::star(5).unwrap();
        TensorChain::new(&g, false);
    }

    #[test]
    fn diagonal_transitions_match_lemma11_weights() {
        let g = classic::cycle(6).unwrap(); // d = 2
        let tc = TensorChain::new(&g, false);
        let p = tc.matrix();
        // From (0,0): neighbors of 0 are {1, 5}. Together prob (d+1)/(2d²)
        // = 3/8 per meeting vertex; apart 1/(2d²) = 1/8 per ordered pair.
        let from = tc.index_of(0, 0);
        assert!((p.get(from, tc.index_of(1, 1)) - 0.375).abs() < 1e-12);
        assert!((p.get(from, tc.index_of(5, 5)) - 0.375).abs() < 1e-12);
        assert!((p.get(from, tc.index_of(1, 5)) - 0.125).abs() < 1e-12);
        assert!((p.get(from, tc.index_of(5, 1)) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn off_diagonal_transitions_are_independent() {
        let g = classic::cycle(6).unwrap();
        let tc = TensorChain::new(&g, false);
        let p = tc.matrix();
        let from = tc.index_of(0, 3);
        // Each of the 4 (x, y) pairs has probability 1/4.
        for x in [1u32, 5] {
            for y in [2u32, 4] {
                assert!((p.get(from, tc.index_of(x, y)) - 0.25).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eulerian_stationary_is_a_fixed_point() {
        // The Lemma 11 claim: the closed-form π is stationary for the chain.
        for lazy in [false, true] {
            let g = hypercube::hypercube(3); // 3-regular, 8 vertices
            let tc = TensorChain::new(&g, lazy);
            let pi = tc.theoretical_stationary();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let evolved = evolve(tc.matrix(), &pi, 1);
            assert!(
                tv_distance(&pi, &evolved) < 1e-10,
                "π not stationary (lazy = {lazy})"
            );
        }
    }

    #[test]
    fn lazy_chain_mixes_to_stationary_on_non_bipartite_graph() {
        // Lemma 11's irreducibility claim needs G non-bipartite: use C5.
        let g = classic::cycle(5).unwrap();
        let tc = TensorChain::new(&g, true);
        let d0 = tc.distance_to_stationary(0, 2, 0);
        let d2k = tc.distance_to_stationary(0, 2, 2000);
        assert!(d0 > 0.9);
        assert!(d2k < 1e-4, "TV after 2000 lazy steps: {d2k}");
    }

    #[test]
    fn collision_probability_converges_to_diagonal_mass() {
        let g = classic::complete(6).unwrap(); // 5-regular, non-bipartite
        let tc = TensorChain::new(&g, true);
        let n = 6.0f64;
        let stationary_diag = 6.0 * 2.0 / (n * n + n); // n · 2/(n²+n)
        let p = tc.collision_probability(0, 3, 300);
        assert!(
            (p - stationary_diag).abs() < 1e-6,
            "collision prob {p} vs {stationary_diag}"
        );
    }

    #[test]
    fn lemma11_bound_holds_after_mixing() {
        // Pr[both at v] ≤ 2/(n²+n) + 1/n⁴ after s mixing steps, for a
        // non-bipartite regular graph (K6).
        let g = classic::complete(6).unwrap();
        let n = 6.0f64;
        let tc = TensorChain::new(&g, true);
        let bound = 2.0 / (n * n + n) + 1.0 / n.powi(4);
        for v in 0..6u32 {
            let p = tc.joint_occupancy(0, 3, v, 300);
            assert!(
                p <= bound,
                "joint occupancy {p} exceeds Lemma 11 bound {bound}"
            );
        }
    }

    #[test]
    fn bipartite_graph_traps_odd_parity_pairs() {
        // Reproduction note: on a bipartite regular graph (the hypercube!)
        // every round moves both pebbles one bit-flip each, so the parity
        // of d(a) + d(b) is invariant (the global laziness coin holds both
        // pebbles together). A pair starting at odd Hamming distance can
        // therefore NEVER collide, and D(G×G) is reducible — Lemma 11's
        // stationary analysis applies per closed class. The collision
        // bound still holds trivially (probability 0).
        let g = hypercube::hypercube(3);
        let tc = TensorChain::new(&g, true);
        // 0 -> 7 has Hamming distance 3 (odd).
        let p = tc.collision_probability(0, 7, 500);
        assert_eq!(p, 0.0, "odd-parity pair must never collide, got {p}");
        // Even-parity pairs do collide.
        let p_even = tc.collision_probability(0, 3, 500);
        assert!(p_even > 0.0);
    }

    #[test]
    fn joint_occupancy_sums_to_collision_probability() {
        let g = classic::cycle(5).unwrap();
        let tc = TensorChain::new(&g, true);
        let total: f64 = (0..5u32).map(|v| tc.joint_occupancy(1, 3, v, 40)).sum();
        let coll = tc.collision_probability(1, 3, 40);
        assert!((total - coll).abs() < 1e-9);
    }
}
