//! Power iteration and deflation for extremal eigenpairs of symmetric
//! matrices (and spectral radii of general non-negative matrices).

use crate::matrix::CsrMatrix;

/// Result of an iterative eigenpair computation.
#[derive(Clone, Debug)]
pub struct EigenResult {
    /// The eigenvalue estimate (Rayleigh quotient at the final iterate).
    pub value: f64,
    /// The (normalized) eigenvector estimate.
    pub vector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Power iteration for the dominant eigenpair of a symmetric matrix `a`,
/// starting from `x0` (pass a deterministic non-degenerate start; e.g. an
/// indicator plus a ramp). Converges to the eigenvalue largest in
/// **absolute value**.
pub fn power_iteration(a: &CsrMatrix, x0: &[f64], max_iters: usize, tol: f64) -> EigenResult {
    assert_eq!(a.n_rows(), a.n_cols(), "square matrix");
    assert_eq!(x0.len(), a.n_rows());
    let mut x = x0.to_vec();
    normalize(&mut x);
    let mut y = vec![0.0; x.len()];
    let mut lambda = 0.0;
    for it in 1..=max_iters {
        a.matvec(&x, &mut y);
        let new_lambda = dot(&x, &y); // Rayleigh quotient (‖x‖ = 1)
        let ny = norm(&y);
        if ny == 0.0 {
            return EigenResult {
                value: 0.0,
                vector: x,
                iterations: it,
                converged: true,
            };
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return EigenResult {
                value: new_lambda,
                vector: x,
                iterations: it,
                converged: true,
            };
        }
        lambda = new_lambda;
    }
    EigenResult {
        value: lambda,
        vector: x,
        iterations: max_iters,
        converged: false,
    }
}

/// Second-largest eigenvalue (in absolute value) of a symmetric matrix,
/// given its dominant eigenvector: power iteration with repeated
/// orthogonalization against `dominant`.
pub fn second_eigenvalue(
    a: &CsrMatrix,
    dominant: &[f64],
    max_iters: usize,
    tol: f64,
) -> EigenResult {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let mut d = dominant.to_vec();
    normalize(&mut d);
    // Deterministic start orthogonal to nothing in particular; a ramp
    // breaks symmetry on vertex-transitive graphs.
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).sin()).collect();
    let proj = dot(&x, &d);
    for (xi, di) in x.iter_mut().zip(&d) {
        *xi -= proj * di;
    }
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for it in 1..=max_iters {
        a.matvec(&x, &mut y);
        // Re-orthogonalize every iteration to suppress drift back toward
        // the dominant eigenspace.
        let proj = dot(&y, &d);
        for (yi, di) in y.iter_mut().zip(&d) {
            *yi -= proj * di;
        }
        let new_lambda = dot(&x, &y);
        let ny = norm(&y);
        if ny == 0.0 {
            return EigenResult {
                value: 0.0,
                vector: x,
                iterations: it,
                converged: true,
            };
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return EigenResult {
                value: new_lambda,
                vector: x,
                iterations: it,
                converged: true,
            };
        }
        lambda = new_lambda;
    }
    EigenResult {
        value: lambda,
        vector: x,
        iterations: max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(entries: &[&[f64]]) -> CsrMatrix {
        let n = entries.len();
        let rows = entries
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(j, &v)| (j as u32, v))
                    .collect()
            })
            .collect();
        CsrMatrix::from_rows(n, rows)
    }

    #[test]
    fn diagonal_matrix_dominant() {
        let a = dense(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let r = power_iteration(&a, &[1.0, 1.0], 500, 1e-12);
        assert!(r.converged);
        assert!((r.value - 3.0).abs() < 1e-9);
        assert!(r.vector[0].abs() > 0.999);
    }

    #[test]
    fn symmetric_2x2_pair() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = dense(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let top = power_iteration(&a, &[1.0, 0.5], 1000, 1e-13);
        assert!((top.value - 3.0).abs() < 1e-8, "top {}", top.value);
        let second = second_eigenvalue(&a, &top.vector, 1000, 1e-13);
        assert!((second.value - 1.0).abs() < 1e-6, "second {}", second.value);
    }

    #[test]
    fn second_eigenvalue_of_complete_graph_adjacency() {
        // K_4 adjacency: eigenvalues 3, -1, -1, -1.
        let a = dense(&[
            &[0.0, 1.0, 1.0, 1.0],
            &[1.0, 0.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0, 0.0],
        ]);
        let top = power_iteration(&a, &[1.0, 1.1, 0.9, 1.0], 2000, 1e-13);
        assert!((top.value - 3.0).abs() < 1e-7);
        let second = second_eigenvalue(&a, &top.vector, 2000, 1e-13);
        assert!(
            (second.value.abs() - 1.0).abs() < 1e-5,
            "second {}",
            second.value
        );
    }

    #[test]
    fn zero_matrix_converges_to_zero() {
        let a = CsrMatrix::zeros(3, 3);
        let r = power_iteration(&a, &[1.0, 2.0, 3.0], 10, 1e-12);
        assert!(r.converged);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn reports_non_convergence() {
        // Nearly-degenerate spectrum (1 vs 0.999) with zero tolerance:
        // the Rayleigh quotient keeps creeping for far more than 5 steps.
        let a = dense(&[&[1.0, 0.0], &[0.0, 0.999]]);
        let r = power_iteration(&a, &[1.0, 1.0], 5, 0.0);
        assert!(!r.converged);
        assert_eq!(r.iterations, 5);
    }
}
