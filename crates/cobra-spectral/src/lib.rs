//! # cobra-spectral
//!
//! Sparse spectral toolkit for the cobra-walk reproduction. Provides the
//! machinery the paper's proofs lean on, so the experiment harness can
//! parameterize and cross-check the bounds:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices with (optionally
//!   rayon-parallel) matvec;
//! * [`walk_matrix`] — transition matrices of simple/lazy walks and exact
//!   distribution evolution (used to validate Monte-Carlo estimates);
//! * [`power`] — power iteration and deflation for dominant/second
//!   eigenvalues;
//! * [`laplacian`] — normalized-Laplacian spectral gap and the two-sided
//!   Cheeger inequality, connecting the measured gap to the conductance
//!   `Φ_G` of Theorem 8;
//! * [`tensor`] — the directed tensor-product chain **D(G×G)** of
//!   Lemma 11, with its exact Eulerian stationary distribution
//!   (`2/(n²+n)` on the diagonal, `1/(n²+n)` off it) and collision
//!   probabilities;
//! * [`exact`] — exact hitting times of the simple walk via linear solves
//!   (ground truth for the simulation tests);
//! * [`mixing`] — mixing-time estimates from the spectral gap and by
//!   direct evolution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commute;
pub mod exact;
pub mod laplacian;
pub mod matrix;
pub mod mixing;
pub mod power;
pub mod tensor;
pub mod walk_matrix;

pub use laplacian::{cheeger_bounds, spectral_gap};
pub use matrix::CsrMatrix;
pub use tensor::TensorChain;
pub use walk_matrix::{evolve, stationary_distribution, transition_matrix, tv_distance};
