//! Commute times and effective resistances of the simple random walk.
//!
//! Classical identities used to cross-check the walk simulations and to
//! contextualize the paper's hitting-time results:
//!
//! * commute time `C(u, v) = H(u, v) + H(v, u) = 2m · R_eff(u, v)`
//!   (Chandra–Raghavan–Ruzzo–Smolensky–Tiwari);
//! * on trees, `R_eff` is just the path length, so `C(u, v) = 2m·dist`.
//!
//! Computed exactly from the hitting-time linear systems in
//! [`crate::exact`]; `O(n³)` per target, intended for test-scale graphs.

use crate::exact::exact_hitting_times;
use cobra_graph::{Graph, Vertex};

/// Exact commute time `C(u, v) = H(u, v) + H(v, u)` of the simple walk.
pub fn commute_time(g: &Graph, u: Vertex, v: Vertex) -> f64 {
    if u == v {
        return 0.0;
    }
    let to_v = exact_hitting_times(g, v);
    let to_u = exact_hitting_times(g, u);
    to_v[u as usize] + to_u[v as usize]
}

/// Effective resistance via the commute-time identity:
/// `R_eff(u, v) = C(u, v) / (2m)`.
pub fn effective_resistance(g: &Graph, u: Vertex, v: Vertex) -> f64 {
    commute_time(g, u, v) / g.total_degree() as f64
}

/// The resistance diameter `max_{u,v} R_eff(u, v)` — `O(n⁴)`; tiny
/// graphs only.
pub fn resistance_diameter(g: &Graph) -> f64 {
    let n = g.num_vertices();
    let mut best = 0.0f64;
    for u in 0..n as u32 {
        let to_u = exact_hitting_times(g, u);
        for v in (u + 1)..n as u32 {
            let to_v = exact_hitting_times(g, v);
            let c = to_v[u as usize] + to_u[v as usize];
            best = best.max(c / g.total_degree() as f64);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;

    #[test]
    fn commute_is_symmetric_and_zero_on_diagonal() {
        let g = classic::lollipop(9).unwrap();
        assert_eq!(commute_time(&g, 3, 3), 0.0);
        let a = commute_time(&g, 0, 7);
        let b = commute_time(&g, 7, 0);
        assert!((a - b).abs() < 1e-8);
        assert!(a > 0.0);
    }

    #[test]
    fn path_resistance_is_hop_distance() {
        // On a tree, R_eff(u, v) = dist(u, v) (unit resistors in series).
        let g = classic::path(6).unwrap();
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u == v {
                    continue;
                }
                let r = effective_resistance(&g, u, v);
                let d = u.abs_diff(v) as f64;
                assert!((r - d).abs() < 1e-8, "R({u},{v}) = {r}, dist {d}");
            }
        }
    }

    #[test]
    fn cycle_resistance_is_parallel_arcs() {
        // On C_n, the two arcs between u and v are resistors in parallel:
        // R = k(n−k)/n for hop distance k.
        let n = 8u32;
        let g = classic::cycle(n as usize).unwrap();
        for k in 1..n {
            let r = effective_resistance(&g, 0, k);
            let expect = (k * (n - k)) as f64 / n as f64;
            assert!((r - expect).abs() < 1e-8, "k = {k}: {r} vs {expect}");
        }
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n: R_eff = 2/n between any pair.
        let n = 7usize;
        let g = classic::complete(n).unwrap();
        let r = effective_resistance(&g, 0, 3);
        assert!((r - 2.0 / n as f64).abs() < 1e-8, "r = {r}");
    }

    #[test]
    fn commute_identity_against_direct_hitting() {
        let g = classic::star(6).unwrap();
        // H(leaf, hub) = 1, H(hub, leaf) = 2(n−1) − 1 = 9; C = 10 = 2m·R.
        let c = commute_time(&g, 1, 0);
        assert!((c - 10.0).abs() < 1e-8);
        let r = effective_resistance(&g, 1, 0);
        assert!((r - 1.0).abs() < 1e-8, "leaf-hub is a single unit edge");
    }

    #[test]
    fn resistance_diameter_of_path() {
        let g = classic::path(5).unwrap();
        assert!((resistance_diameter(&g) - 4.0).abs() < 1e-8);
    }
}
