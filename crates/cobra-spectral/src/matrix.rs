//! Compressed-sparse-row matrices with parallel matvec.

use rayon::prelude::*;

/// Threshold (in stored entries) above which matvec parallelizes with
/// rayon. Below it, thread fan-out costs more than it saves.
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// An immutable sparse matrix in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from per-row `(col, value)` lists. Entries within a row need
    /// not be sorted; duplicates are summed.
    pub fn from_rows(n_cols: usize, rows: Vec<Vec<(u32, f64)>>) -> Self {
        let n_rows = rows.len();
        let mut offsets = Vec::with_capacity(n_rows + 1);
        offsets.push(0usize);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend(row);
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                assert!((c as usize) < n_cols, "column {c} out of range");
                let mut v = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                cols.push(c);
                vals.push(v);
            }
            offsets.push(cols.len());
        }
        CsrMatrix {
            n_rows,
            n_cols,
            offsets,
            cols,
            vals,
        }
    }

    /// The zero matrix of the given shape.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        CsrMatrix {
            n_rows,
            n_cols,
            offsets: vec![0; n_rows + 1],
            cols: vec![],
            vals: vec![],
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The entries of row `i` as `(cols, vals)` slices.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[i];
        let hi = self.offsets[i + 1];
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Entry `(i, j)`, zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y = A·x`. Parallelizes over rows for large matrices.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "x length");
        assert_eq!(y.len(), self.n_rows, "y length");
        let row_dot = |i: usize| -> f64 {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(|(&c, &v)| v * x[c as usize])
                .sum()
        };
        if self.nnz() >= PARALLEL_THRESHOLD {
            y.par_iter_mut()
                .enumerate()
                .for_each(|(i, yi)| *yi = row_dot(i));
        } else {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = row_dot(i);
            }
        }
    }

    /// `y = Aᵀ·x` (left-multiplication `xᵀA`, used for evolving row-vector
    /// distributions `π_{t+1} = π_t P`). Sequential scatter.
    pub fn matvec_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_rows, "x length");
        assert_eq!(y.len(), self.n_cols, "y length");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += v * xi;
            }
        }
    }

    /// Sum of each row (for stochasticity checks).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// Whether every row sums to 1 within `tol` (row-stochastic matrix).
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        self.row_sums().iter().all(|&s| (s - 1.0).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [1 2 0]
        // [0 0 3]
        CsrMatrix::from_rows(3, vec![vec![(0, 1.0), (1, 2.0)], vec![(2, 3.0)]])
    }

    #[test]
    fn shape_and_access() {
        let m = example();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let m = CsrMatrix::from_rows(2, vec![vec![(1, 1.0), (1, 2.5)]]);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn unsorted_rows_are_sorted() {
        let m = CsrMatrix::from_rows(3, vec![vec![(2, 1.0), (0, 2.0)]]);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_column() {
        CsrMatrix::from_rows(2, vec![vec![(5, 1.0)]]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = example();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 2];
        m.matvec(&x, &mut y);
        assert_eq!(y, [5.0, 9.0]);
    }

    #[test]
    fn matvec_transpose_matches_dense() {
        let m = example();
        let x = [1.0, 2.0];
        let mut y = [0.0; 3];
        m.matvec_transpose(&x, &mut y);
        // Aᵀ x = [1, 2, 6]
        assert_eq!(y, [1.0, 2.0, 6.0]);
    }

    #[test]
    fn zeros_matrix() {
        let m = CsrMatrix::zeros(3, 4);
        assert_eq!(m.nnz(), 0);
        let mut y = [9.0; 3];
        m.matvec(&[1.0; 4], &mut y);
        assert_eq!(y, [0.0; 3]);
    }

    #[test]
    fn row_sums_and_stochasticity() {
        let m = CsrMatrix::from_rows(2, vec![vec![(0, 0.5), (1, 0.5)], vec![(0, 1.0)]]);
        assert_eq!(m.row_sums(), vec![1.0, 1.0]);
        assert!(m.is_row_stochastic(1e-12));
        let bad = CsrMatrix::from_rows(2, vec![vec![(0, 0.7)], vec![(1, 1.0)]]);
        assert!(!bad.is_row_stochastic(1e-12));
    }

    #[test]
    fn large_matvec_parallel_path() {
        // Identity of size 40_000 exercises the rayon path
        // (nnz >= PARALLEL_THRESHOLD).
        let n = 40_000usize;
        let rows: Vec<Vec<(u32, f64)>> = (0..n).map(|i| vec![(i as u32, 2.0)]).collect();
        let m = CsrMatrix::from_rows(n, rows);
        let x = vec![1.5; n];
        let mut y = vec![0.0; n];
        m.matvec(&x, &mut y);
        assert!(y.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }
}
