//! Biased random walks (paper §5.1) — the analysis engine behind the
//! paper's general-graph bounds.
//!
//! Three pieces, mirroring the paper:
//!
//! * [`BiasedWalk`] — the ε-biased walk of Azar, Broder, Karlin, Linial,
//!   Phillips: each step, with probability `ε(v)` a [`Controller`] picks
//!   the next vertex, otherwise the step is uniform. The paper's
//!   **inverse-degree-biased walk** is the schedule `ε(v) = 1/d(v)` with
//!   no bias at the target ([`BiasedWalk::inverse_degree`]).
//! * [`TowardTarget`] — the natural controller that always moves along a
//!   shortest path toward a target vertex (used to realize the drift
//!   the cobra walk's second pebble provides: Lemma 14's coupling says
//!   `H_cobra(u, v) ≤ H*(u, v)` for the best inverse-degree-biased walk).
//! * [`MetropolisWalk`] — the optimal-stationary-bias construction of
//!   Lemma 16: a Metropolis chain with stationary measure
//!   `π(x) ∝ σ̂(x, S)·d(x)`, where `σ̂(x, v)` is the best achievable
//!   product `∏_{y∈P, y≠v}(1 − 1/d(y))` over paths `P` from `x` to `v`
//!   ([`sigma_hat`]). Its return time to `v` realizes Corollary 17's
//!   `(d(v) + Σ_{x≠v} σ̂(x,v)·d(x)) / d(v)` bound.

use crate::process::{bernoulli, random_neighbor, sample_index, Process, ProcessState};
use cobra_graph::{metrics, Graph, Vertex};
use rand::Rng;
use std::sync::Arc;

/// A memoryless, time-independent controller for a biased walk (paper
/// §5.1: "the controller can be probabilistic, but it is time
/// independent").
pub trait Controller: Send + Sync {
    /// Short name for reporting.
    fn name(&self) -> String;

    /// Choose the next vertex from `v`'s neighborhood.
    fn choose(&self, g: &Graph, v: Vertex, rng: &mut dyn Rng) -> Vertex;
}

/// Controller that walks along a BFS shortest path toward `target`,
/// breaking ties uniformly at random among distance-decreasing neighbors.
pub struct TowardTarget {
    target: Vertex,
    dist: Vec<u32>,
}

impl TowardTarget {
    /// Precompute BFS distances to `target`.
    pub fn new(g: &Graph, target: Vertex) -> Self {
        TowardTarget {
            target,
            dist: metrics::bfs_distances(g, target),
        }
    }

    /// The target vertex.
    pub fn target(&self) -> Vertex {
        self.target
    }
}

impl Controller for TowardTarget {
    fn name(&self) -> String {
        format!("toward({})", self.target)
    }

    fn choose(&self, g: &Graph, v: Vertex, rng: &mut dyn Rng) -> Vertex {
        let dv = self.dist[v as usize];
        let ns = g.neighbors(v);
        // Count distance-decreasing neighbors, then pick one uniformly.
        let closer = ns.iter().filter(|&&u| self.dist[u as usize] < dv).count();
        if closer == 0 {
            // Disconnected from target or already there: fall back to uniform.
            return ns[sample_index(ns.len(), rng)];
        }
        let pick = sample_index(closer, rng);
        let mut seen = 0;
        for &u in ns {
            if self.dist[u as usize] < dv {
                if seen == pick {
                    return u;
                }
                seen += 1;
            }
        }
        unreachable!("pick < closer")
    }
}

/// How much control the controller has at each vertex.
#[derive(Clone, Copy, Debug, PartialEq)]
enum BiasSchedule {
    /// Fixed ε at every vertex (Azar et al.).
    Constant(f64),
    /// `ε(v) = 1/d(v)`, and no bias at `target` (the paper's
    /// inverse-degree-biased walk, §5.1).
    InverseDegree { target: Vertex },
}

/// The ε-biased walk process.
#[derive(Clone)]
pub struct BiasedWalk {
    schedule: BiasSchedule,
    controller: Arc<dyn Controller>,
}

impl BiasedWalk {
    /// Constant-ε biased walk (Azar et al.).
    pub fn constant(epsilon: f64, controller: Arc<dyn Controller>) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "bias ε must be in [0, 1], got {epsilon}"
        );
        BiasedWalk {
            schedule: BiasSchedule::Constant(epsilon),
            controller,
        }
    }

    /// The paper's inverse-degree-biased walk with the given target: bias
    /// `1/d(v)` at `v ≠ target`, uniform at `target`.
    pub fn inverse_degree(target: Vertex, controller: Arc<dyn Controller>) -> Self {
        BiasedWalk {
            schedule: BiasSchedule::InverseDegree { target },
            controller,
        }
    }

    /// Convenience: inverse-degree-biased walk steered along shortest
    /// paths toward `target`.
    pub fn inverse_degree_toward(g: &Graph, target: Vertex) -> Self {
        Self::inverse_degree(target, Arc::new(TowardTarget::new(g, target)))
    }
}

impl Process for BiasedWalk {
    fn name(&self) -> String {
        match self.schedule {
            BiasSchedule::Constant(e) => format!("biased(ε={e},{})", self.controller.name()),
            BiasSchedule::InverseDegree { target } => {
                format!(
                    "inv-degree-biased(target={target},{})",
                    self.controller.name()
                )
            }
        }
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        Box::new(BiasedState {
            schedule: self.schedule,
            controller: Arc::clone(&self.controller),
            pos: [start],
        })
    }
}

struct BiasedState {
    schedule: BiasSchedule,
    controller: Arc<dyn Controller>,
    pos: [Vertex; 1],
}

impl ProcessState for BiasedState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        let v = self.pos[0];
        let bias = match self.schedule {
            BiasSchedule::Constant(e) => e,
            BiasSchedule::InverseDegree { target } => {
                if v == target {
                    0.0
                } else {
                    1.0 / g.degree(v) as f64
                }
            }
        };
        self.pos[0] = if bias > 0.0 && bernoulli(bias, rng) {
            let u = self.controller.choose(g, v, rng);
            debug_assert!(g.has_edge(v, u), "controller must pick a neighbor");
            u
        } else {
            random_neighbor(g, v, rng)
        };
    }

    fn occupied(&self) -> &[Vertex] {
        &self.pos
    }
}

/// `σ̂(x, v)` for every `x`: the maximum over paths `P` from `x` to `v` of
/// `∏_y (1 − 1/d(y))` taken over the *interior* vertices of `P` (every
/// vertex strictly between `x` and `v`), so `σ̂(v, v) = 1` and
/// `σ̂(y, v) = 1` for neighbors `y` of `v`.
///
/// This convention satisfies the inequality Lemma 16's proof rests on —
/// `σ̂(y, S) ≥ (1 − 1/d(x))·σ̂(x, S)` for every neighbor `y` of `x`
/// (prepend `y → x` to `x`'s optimal path; the new interior gains exactly
/// the factor `1 − 1/d(x)`) — and avoids the degeneracy of source- or
/// target-inclusive products at degree-1 endpoints.
///
/// Computed by Dijkstra on vertex weights `w(y) = −ln(1 − 1/d(y))`:
/// maximizing the product is minimizing the weight sum.
pub fn sigma_hat(g: &Graph, target: Vertex) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let weight = |y: Vertex| -> f64 {
        let d = g.degree(y) as f64;
        // Degree-1 vertices give weight −ln(0) = ∞: they can never be the
        // interior of a simple path, so this is consistent.
        -(1.0 - 1.0 / d).ln()
    };
    dist[target as usize] = 0.0;
    // Binary-heap Dijkstra; (cost, vertex) with reversed ordering.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Key(f64);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Key {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&o.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Key(0.0), target)));
    while let Some(Reverse((Key(c), v))) = heap.pop() {
        if c > dist[v as usize] {
            continue;
        }
        // Extending a path backward from `v` to its neighbor `u` makes `v`
        // an interior vertex of `u`'s path — unless `v` is the target.
        let step_cost = if v == target { 0.0 } else { weight(v) };
        for u in g.neighbor_iter(v) {
            let cand = c + step_cost;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                heap.push(Reverse((Key(cand), u)));
            }
        }
    }
    dist.into_iter().map(|c| (-c).exp()).collect()
}

/// Corollary 17's upper bound on the best achievable return time to `v`
/// for an inverse-degree-biased walk:
/// `(d(v) + Σ_{x≠v} σ̂(x, v)·d(x)) / d(v)`.
pub fn return_time_bound(g: &Graph, target: Vertex) -> f64 {
    let sigma = sigma_hat(g, target);
    let dv = g.degree(target) as f64;
    let mut sum = 0.0;
    for x in g.vertices() {
        if x != target {
            sum += sigma[x as usize] * g.degree(x) as f64;
        }
    }
    (dv + sum) / dv
}

/// The Metropolis walk of Lemma 16: a time-homogeneous chain whose
/// stationary distribution is `π(x) ∝ σ̂(x, {v})·d(x)`, realized so every
/// transition satisfies `P_{x,y} ≥ (1 − 1/d(x))/d(x)` — i.e. it *is* an
/// inverse-degree-biased walk, with the bias spent making the target's
/// stationary mass as large as Lemma 16 guarantees.
pub struct MetropolisWalk {
    target: Vertex,
    /// Per-vertex cumulative transition probabilities aligned with the CSR
    /// neighbor order; self-loops removed per Lemma 16's `P`.
    cdf: Vec<Vec<f64>>,
    /// Lemma 16's stationary distribution (normalized), for assertions and
    /// experiments.
    pi: Vec<f64>,
}

impl MetropolisWalk {
    /// Build the Lemma 16 chain for `target`.
    pub fn new(g: &Graph, target: Vertex) -> Self {
        let n = g.num_vertices();
        assert!((target as usize) < n, "target in range");
        let sigma = sigma_hat(g, target);
        // Unnormalized π.
        let pi_raw: Vec<f64> = g
            .vertices()
            .map(|x| sigma[x as usize] * g.degree(x) as f64)
            .collect();
        let z: f64 = pi_raw.iter().sum();
        let pi: Vec<f64> = pi_raw.iter().map(|p| p / z).collect();

        let mut cdf = Vec::with_capacity(n);
        for x in g.vertices() {
            let dx = g.degree(x) as f64;
            let ns = g.neighbors(x);
            // Metropolis with uniform proposal: M[x][y] =
            // (1/dx)·min(1, π(y)·dx / (π(x)·dy)); self-loop gets the rest.
            let mut m: Vec<f64> = ns
                .iter()
                .map(|&y| {
                    let ratio =
                        (pi_raw[y as usize] * dx) / (pi_raw[x as usize] * g.degree(y) as f64);
                    ratio.min(1.0) / dx
                })
                .collect();
            let total: f64 = m.iter().sum();
            let self_loop = (1.0 - total).max(0.0);
            // P removes the self-loop: P[x][y] = M[x][y] / (1 - M[x][x]).
            let denom = 1.0 - self_loop;
            debug_assert!(denom > 0.0, "vertex {x} would be absorbing");
            let mut acc = 0.0;
            for p in &mut m {
                acc += *p / denom;
                *p = acc;
            }
            // Guard against floating-point shortfall at the end.
            if let Some(last) = m.last_mut() {
                *last = 1.0;
            }
            cdf.push(m);
        }
        MetropolisWalk { target, cdf, pi }
    }

    /// Lemma 16's stationary distribution `π` (normalized).
    pub fn stationary(&self) -> &[f64] {
        &self.pi
    }

    /// The target vertex.
    pub fn target(&self) -> Vertex {
        self.target
    }

    /// Transition probability from `x` to its `i`-th CSR neighbor.
    pub fn transition_prob(&self, x: Vertex, i: usize) -> f64 {
        let c = &self.cdf[x as usize];
        if i == 0 {
            c[0]
        } else {
            c[i] - c[i - 1]
        }
    }
}

impl Process for MetropolisWalk {
    fn name(&self) -> String {
        format!("metropolis(target={})", self.target)
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        assert_eq!(
            g.num_vertices(),
            self.cdf.len(),
            "MetropolisWalk was built for a different graph"
        );
        Box::new(MetropolisState {
            cdf: self.cdf.clone(),
            pos: [start],
        })
    }
}

struct MetropolisState {
    cdf: Vec<Vec<f64>>,
    pos: [Vertex; 1],
}

impl ProcessState for MetropolisState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        let v = self.pos[0];
        let c = &self.cdf[v as usize];
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let idx = c.partition_point(|&acc| acc < u).min(c.len() - 1);
        self.pos[0] = g.neighbors(v)[idx];
    }

    fn occupied(&self) -> &[Vertex] {
        &self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, grid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn toward_target_descends_distance() {
        let g = grid::grid(&[4, 4]);
        let ctl = TowardTarget::new(&g, 0);
        assert_eq!(ctl.target(), 0);
        let mut rng = StdRng::seed_from_u64(1);
        let dist = metrics::bfs_distances(&g, 0);
        for v in g.vertices().skip(1) {
            for _ in 0..5 {
                let u = ctl.choose(&g, v, &mut rng);
                assert!(g.has_edge(v, u));
                assert!(dist[u as usize] < dist[v as usize]);
            }
        }
    }

    #[test]
    fn full_bias_walk_reaches_target_in_distance_steps() {
        let g = classic::path(10).unwrap();
        let ctl = Arc::new(TowardTarget::new(&g, 0));
        let spec = BiasedWalk::constant(1.0, ctl);
        let mut st = spec.spawn(&g, 9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..9 {
            st.step(&g, &mut rng);
        }
        assert_eq!(st.occupied(), &[0]);
    }

    #[test]
    fn zero_bias_is_a_simple_walk() {
        let g = classic::cycle(7).unwrap();
        let ctl = Arc::new(TowardTarget::new(&g, 0));
        let spec = BiasedWalk::constant(0.0, ctl);
        let mut st = spec.spawn(&g, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = 3;
        for _ in 0..50 {
            st.step(&g, &mut rng);
            let cur = st.occupied()[0];
            assert!(g.has_edge(prev, cur));
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "bias ε")]
    fn rejects_invalid_epsilon() {
        let g = classic::path(3).unwrap();
        BiasedWalk::constant(1.5, Arc::new(TowardTarget::new(&g, 0)));
    }

    #[test]
    fn sigma_hat_on_regular_graph_is_beta_power() {
        // On a δ-regular graph σ̂(x, v) = (1 − 1/δ)^{∆(x,v)−1} — a shortest
        // path has ∆−1 interior vertices, all with identical weight.
        let g = classic::cycle(8).unwrap(); // 2-regular
        let sigma = sigma_hat(&g, 0);
        let dist = metrics::bfs_distances(&g, 0);
        for v in g.vertices() {
            let hops = dist[v as usize] as i32;
            let expect = 0.5f64.powi((hops - 1).max(0));
            assert!(
                (sigma[v as usize] - expect).abs() < 1e-12,
                "vertex {v}: {} vs {expect}",
                sigma[v as usize]
            );
        }
    }

    #[test]
    fn sigma_hat_at_target_is_one() {
        let g = grid::grid(&[3, 3]);
        let sigma = sigma_hat(&g, 4);
        assert!((sigma[4] - 1.0).abs() < 1e-12);
        for v in g.vertices() {
            assert!(sigma[v as usize] <= 1.0 + 1e-12);
            assert!(sigma[v as usize] >= 0.0);
        }
    }

    #[test]
    fn sigma_hat_star_interior_is_hub_factor() {
        // Star with target = leaf 1. The hub is adjacent to the target so
        // σ̂(hub) = 1 (no interior). Any other leaf routes through the hub
        // (degree n−1 = 5), so σ̂(leaf) = 1 − 1/5 = 0.8.
        let g = classic::star(6).unwrap();
        let sigma = sigma_hat(&g, 1);
        assert!((sigma[1] - 1.0).abs() < 1e-12);
        assert!((sigma[0] - 1.0).abs() < 1e-12);
        for leaf in [2u32, 3, 4, 5] {
            assert!((sigma[leaf as usize] - 0.8).abs() < 1e-12, "leaf {leaf}");
        }
    }

    #[test]
    fn return_time_bound_on_complete_graph_is_constant() {
        // K_n: σ̂(x, v) = 1 − 1/(n−1) for the direct edge; the bound is
        // ≈ 1 + (n−1)·(1−1/(n−1)) ≈ n − 1 — matching the simple walk's
        // return time n−1... wait, on K_n stationarity gives return time
        // n. The bound must be ≤ n and ≥ 1.
        let g = classic::complete(10).unwrap();
        let b = return_time_bound(&g, 0);
        assert!(b > 1.0 && b <= 10.0, "bound {b}");
    }

    #[test]
    fn metropolis_rows_are_distributions() {
        let g = grid::grid(&[3, 3]);
        let mw = MetropolisWalk::new(&g, 4);
        assert_eq!(mw.target(), 4);
        for x in g.vertices() {
            let deg = g.degree(x);
            let mut total = 0.0;
            for i in 0..deg {
                let p = mw.transition_prob(x, i);
                assert!(p >= -1e-12, "negative transition prob at ({x},{i})");
                total += p;
            }
            assert!((total - 1.0).abs() < 1e-9, "row {x} sums to {total}");
        }
    }

    #[test]
    fn metropolis_respects_inverse_degree_floor() {
        // Lemma 16: P_{x,y} ≥ (1 − 1/d(x))/d(x) for every neighbor y.
        let g = grid::grid(&[3, 3]);
        let mw = MetropolisWalk::new(&g, 0);
        for x in g.vertices() {
            let dx = g.degree(x) as f64;
            let floor = (1.0 - 1.0 / dx) / dx;
            for i in 0..g.degree(x) {
                let p = mw.transition_prob(x, i);
                assert!(p >= floor - 1e-9, "P[{x}][{i}] = {p} below floor {floor}");
            }
        }
    }

    #[test]
    fn metropolis_stationary_favors_target() {
        let g = classic::cycle(12).unwrap();
        let mw = MetropolisWalk::new(&g, 0);
        let pi = mw.stationary();
        let max = pi.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (pi[0] - max).abs() < 1e-12,
            "target has max stationary mass"
        );
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metropolis_walk_moves_on_edges() {
        let g = grid::grid(&[3, 3]);
        let mw = MetropolisWalk::new(&g, 0);
        let mut st = mw.spawn(&g, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut prev = 8;
        for _ in 0..200 {
            st.step(&g, &mut rng);
            let cur = st.occupied()[0];
            assert!(g.has_edge(prev, cur));
            prev = cur;
        }
    }

    #[test]
    fn metropolis_reaches_target_quickly_on_path() {
        let g = classic::path(20).unwrap();
        let mw = MetropolisWalk::new(&g, 0);
        let mut st = mw.spawn(&g, 19);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hit = None;
        for t in 1..100_000 {
            st.step(&g, &mut rng);
            if st.occupied()[0] == 0 {
                hit = Some(t);
                break;
            }
        }
        assert!(hit.is_some(), "never hit the target");
    }

    #[test]
    fn names() {
        let g = classic::path(4).unwrap();
        let ctl: Arc<dyn Controller> = Arc::new(TowardTarget::new(&g, 0));
        assert!(BiasedWalk::constant(0.3, Arc::clone(&ctl))
            .name()
            .contains("ε=0.3"));
        assert!(BiasedWalk::inverse_degree(0, ctl)
            .name()
            .contains("inv-degree"));
        assert!(MetropolisWalk::new(&g, 2).name().contains("target=2"));
    }
}
