//! The two-stage process of the prior work's analysis, §4 of the paper:
//!
//! > "In \[13\], the analysis was broken up into two stages. In the first
//! > stage, a cobra walk process was analyzed directly and it was shown
//! > that after O(log n) rounds, the size of the cobra walk went from 1
//! > vertex in the active set to δn vertices […]. Once the cobra walk
//! > reaches δn active vertices, we replace the cobra walk with a Walt
//! > in which we position one Walt pebble at each vertex that was active
//! > in the cobra walk at the time at which we perform the swap."
//!
//! [`TwoStageProcess`] implements exactly that hybrid: a cobra walk runs
//! until its active set first reaches `⌈δ·n⌉` vertices, then a Walt
//! process takes over with one pebble per active vertex. The paper's
//! contribution is precisely that this swap (and its high-expansion
//! requirement for stage 1) can be *avoided* — Lemma 10 lets the whole
//! analysis run on Walt alone — so this type exists to reproduce the
//! *prior* analysis pipeline and compare it against the paper's.

use crate::cobra::CobraWalk;
use crate::process::{Process, ProcessState};
use crate::walt::WaltProcess;
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Hybrid process: cobra walk until `⌈δ·n⌉` active vertices, then Walt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoStageProcess {
    branching_factor: u32,
    delta: f64,
    lazy_walt: bool,
}

impl TwoStageProcess {
    /// Stage 1: `k`-cobra walk; swap at `⌈δ·n⌉` active vertices;
    /// stage 2: Walt (lazy as in the paper).
    pub fn new(branching_factor: u32, delta: f64) -> Self {
        assert!(branching_factor >= 1, "branching factor must be >= 1");
        assert!(delta > 0.0 && delta <= 0.5, "paper requires 0 < δ ≤ 1/2");
        TwoStageProcess {
            branching_factor,
            delta,
            lazy_walt: true,
        }
    }

    /// Toggle stage-2 laziness (paper default: lazy).
    pub fn lazy_walt(mut self, lazy: bool) -> Self {
        self.lazy_walt = lazy;
        self
    }

    /// The swap threshold for a graph on `n` vertices.
    pub fn swap_threshold(&self, n: usize) -> usize {
        ((self.delta * n as f64).ceil() as usize).clamp(1, n)
    }
}

impl Process for TwoStageProcess {
    fn name(&self) -> String {
        format!(
            "two-stage(cobra k={} → walt δ={}{})",
            self.branching_factor,
            self.delta,
            if self.lazy_walt { ",lazy" } else { "" }
        )
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let cobra = CobraWalk::new(self.branching_factor).spawn(g, start);
        Box::new(TwoStageState {
            threshold: self.swap_threshold(g.num_vertices()),
            lazy_walt: self.lazy_walt,
            stage: Stage::Growing(cobra),
            swapped_at: None,
            rounds: 0,
        })
    }
}

enum Stage {
    Growing(Box<dyn ProcessState>),
    Walting(Box<dyn ProcessState>),
}

/// Running state; exposes which round the swap happened for diagnostics.
struct TwoStageState {
    threshold: usize,
    lazy_walt: bool,
    stage: Stage,
    swapped_at: Option<usize>,
    rounds: usize,
}

impl ProcessState for TwoStageState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        self.rounds += 1;
        match &mut self.stage {
            Stage::Growing(cobra) => {
                cobra.step(g, rng);
                if cobra.occupied().len() >= self.threshold {
                    // The swap: one Walt pebble per active vertex.
                    let positions = cobra.occupied().to_vec();
                    let walt = WaltProcess::with_count(positions.len())
                        .lazy(self.lazy_walt)
                        .spawn_at_positions(g, positions);
                    self.swapped_at = Some(self.rounds);
                    self.stage = Stage::Walting(walt);
                }
            }
            Stage::Walting(walt) => walt.step(g, rng),
        }
    }

    fn occupied(&self) -> &[Vertex] {
        match &self.stage {
            Stage::Growing(s) => s.occupied(),
            Stage::Walting(s) => s.occupied(),
        }
    }

    fn support_size(&self) -> usize {
        match &self.stage {
            Stage::Growing(s) => s.support_size(),
            Stage::Walting(s) => s.support_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::CoverDriver;
    use cobra_graph::generators::{classic, hypercube};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swap_threshold_calculation() {
        let p = TwoStageProcess::new(2, 0.5);
        assert_eq!(p.swap_threshold(100), 50);
        assert_eq!(p.swap_threshold(3), 2);
        assert_eq!(p.swap_threshold(1), 1);
        let p = TwoStageProcess::new(2, 0.25);
        assert_eq!(p.swap_threshold(100), 25);
    }

    #[test]
    #[should_panic(expected = "δ")]
    fn rejects_large_delta() {
        TwoStageProcess::new(2, 0.8);
    }

    #[test]
    fn name_describes_both_stages() {
        let p = TwoStageProcess::new(2, 0.5);
        assert!(p.name().contains("cobra k=2"));
        assert!(p.name().contains("walt"));
    }

    #[test]
    fn stage_two_conserves_pebble_count() {
        // After the swap, the support/occupied count is frozen at the
        // swap-time active-set size.
        let g = classic::complete(64).unwrap();
        let spec = TwoStageProcess::new(2, 0.25);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(1);
        // Run long enough to guarantee the swap on K64 (growth is fast).
        for _ in 0..50 {
            st.step(&g, &mut rng);
        }
        let frozen = st.occupied().len();
        assert!(frozen >= 16, "swap at δn = 16 pebbles, got {frozen}");
        for _ in 0..50 {
            st.step(&g, &mut rng);
            assert_eq!(
                st.occupied().len(),
                frozen,
                "Walt stage must conserve pebbles"
            );
        }
    }

    #[test]
    fn covers_the_graph() {
        let g = hypercube::hypercube(6);
        let spec = TwoStageProcess::new(2, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let res = CoverDriver::new(&g)
            .run(&spec, 0, 1_000_000, &mut rng)
            .unwrap();
        assert!(res.completed, "two-stage process must cover the hypercube");
    }

    #[test]
    fn two_stage_is_slower_than_pure_cobra() {
        // Dominance sanity: replacing the branching tail with Walt can
        // only hurt (Lemma 10 applied from the swap point).
        let g = hypercube::hypercube(6);
        let trials = 60;
        let mut rng = StdRng::seed_from_u64(3);
        let mut cobra_total = 0usize;
        let mut two_total = 0usize;
        for _ in 0..trials {
            cobra_total += CoverDriver::new(&g)
                .run(&CobraWalk::standard(), 0, 1_000_000, &mut rng)
                .unwrap()
                .steps;
            two_total += CoverDriver::new(&g)
                .run(&TwoStageProcess::new(2, 0.5), 0, 1_000_000, &mut rng)
                .unwrap()
                .steps;
        }
        assert!(
            two_total as f64 >= 0.95 * cobra_total as f64,
            "two-stage {two_total} unexpectedly faster than cobra {cobra_total}"
        );
    }

    #[test]
    fn eager_walt_stage_works_too() {
        let g = classic::complete(32).unwrap();
        let spec = TwoStageProcess::new(2, 0.5).lazy_walt(false);
        let mut rng = StdRng::seed_from_u64(4);
        let res = CoverDriver::new(&g)
            .run(&spec, 0, 100_000, &mut rng)
            .unwrap();
        assert!(res.completed);
    }
}
