//! Trajectory instrumentation: per-round records of a running process,
//! used by the growth-phase experiment (E15) and the examples.
//!
//! The §4 analysis of the prior cobra paper split expander coverage into
//! an *exponential growth phase* (active set grows from 1 to δn) and a
//! *coverage phase*. [`record_trajectory`] captures both: active-set
//! sizes, coverage curve, and the first round the active set reached a
//! target fraction.

use crate::process::Process;
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Per-round record of a process run.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// `active[t]` = number of occupied entries reported after round `t+1`.
    pub active: Vec<usize>,
    /// `covered[t]` = cumulative distinct vertices covered after round `t+1`.
    pub covered: Vec<usize>,
    /// Round at which coverage completed (`None` if the budget ran out).
    pub completed_at: Option<usize>,
}

impl Trajectory {
    /// First round (1-based) at which the active set reached
    /// `fraction · n`, if ever. This is the "growth phase length" of the
    /// §4 two-phase analysis.
    pub fn rounds_to_active_fraction(&self, n: usize, fraction: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&fraction));
        let target = (fraction * n as f64).ceil() as usize;
        self.active.iter().position(|&a| a >= target).map(|i| i + 1)
    }

    /// First round (1-based) at which cumulative coverage reached
    /// `fraction · n`, if ever.
    pub fn rounds_to_coverage_fraction(&self, n: usize, fraction: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&fraction));
        let target = (fraction * n as f64).ceil() as usize;
        self.covered
            .iter()
            .position(|&c| c >= target)
            .map(|i| i + 1)
    }

    /// Per-round multiplicative growth rates of the active set during the
    /// strict-growth prefix (until the first non-increase). The §4
    /// exponential-phase claim predicts these stay ≈ constant > 1 on
    /// expanders until saturation.
    pub fn growth_rates(&self) -> Vec<f64> {
        let mut rates = Vec::new();
        let mut prev = 1.0f64;
        for &a in &self.active {
            let cur = a as f64;
            if cur <= prev {
                break;
            }
            rates.push(cur / prev);
            prev = cur;
        }
        rates
    }

    /// Peak active-set size.
    pub fn peak_active(&self) -> usize {
        self.active.iter().copied().max().unwrap_or(0)
    }
}

/// Run `process` from `start` for at most `max_steps` rounds (stopping
/// early on full coverage), recording the trajectory.
pub fn record_trajectory(
    g: &Graph,
    process: &dyn Process,
    start: Vertex,
    max_steps: usize,
    rng: &mut dyn Rng,
) -> Trajectory {
    let n = g.num_vertices();
    assert!(n > 0, "non-empty graph");
    let mut state = process.spawn(g, start);
    let mut covered = vec![false; n];
    let mut covered_count = 0usize;
    for &v in state.occupied() {
        if !covered[v as usize] {
            covered[v as usize] = true;
            covered_count += 1;
        }
    }
    let mut tr = Trajectory::default();
    for t in 1..=max_steps {
        state.step(g, rng);
        for &v in state.occupied() {
            if !covered[v as usize] {
                covered[v as usize] = true;
                covered_count += 1;
            }
        }
        tr.active.push(state.support_size());
        tr.covered.push(covered_count);
        if covered_count == n {
            tr.completed_at = Some(t);
            break;
        }
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cobra::CobraWalk;
    use crate::simple::SimpleWalk;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn records_complete_run() {
        let g = classic::complete(32).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let tr = record_trajectory(&g, &CobraWalk::standard(), 0, 100_000, &mut rng);
        let t = tr.completed_at.expect("K32 must be covered");
        assert_eq!(tr.active.len(), t);
        assert_eq!(tr.covered.len(), t);
        assert_eq!(*tr.covered.last().unwrap(), 32);
        // Coverage curve is monotone.
        assert!(tr.covered.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn budget_exhaustion_leaves_incomplete() {
        let g = classic::path(100).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tr = record_trajectory(&g, &SimpleWalk::new(), 0, 5, &mut rng);
        assert_eq!(tr.completed_at, None);
        assert_eq!(tr.active.len(), 5);
    }

    #[test]
    fn growth_phase_on_complete_graph_is_logarithmic() {
        let g = classic::complete(128).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tr = record_trajectory(&g, &CobraWalk::standard(), 0, 100_000, &mut rng);
        let growth = tr
            .rounds_to_active_fraction(128, 0.25)
            .expect("reaches n/4");
        // Doubling from 1 to 32 takes ≥ 5 rounds; should be well under 30.
        assert!((5..30).contains(&growth), "growth phase length {growth}");
        let half_cover = tr.rounds_to_coverage_fraction(128, 0.5).unwrap();
        assert!(half_cover >= growth / 2);
    }

    #[test]
    fn growth_rates_capped_by_branching() {
        let g = classic::complete(64).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let tr = record_trajectory(&g, &CobraWalk::standard(), 0, 100_000, &mut rng);
        for (i, r) in tr.growth_rates().iter().enumerate() {
            assert!(*r <= 2.0 + 1e-9, "rate {r} at {i} exceeds branching factor");
            assert!(*r > 1.0);
        }
        assert!(tr.peak_active() > 1);
    }

    #[test]
    fn fraction_queries_validate() {
        let tr = Trajectory {
            active: vec![1, 2, 4],
            covered: vec![1, 3, 7],
            completed_at: None,
        };
        assert_eq!(tr.rounds_to_active_fraction(8, 0.5), Some(3));
        assert_eq!(tr.rounds_to_active_fraction(8, 1.0), None);
        assert_eq!(tr.rounds_to_coverage_fraction(8, 0.375), Some(2));
    }
}
