//! # cobra-core
//!
//! The stochastic processes of *Better Bounds for Coalescing-Branching
//! Random Walks* (Mitzenmacher, Rajaraman, Roche, SPAA 2016), plus every
//! process the paper compares against or uses inside its proofs:
//!
//! * [`CobraWalk`] — the paper's central object: the `k`-cobra walk
//!   (§2). Each active vertex sends `k` independent uniformly random
//!   pebbles to neighbors; pebbles landing on the same vertex coalesce.
//! * [`WaltProcess`] — the **Walt** coupling process of §4: a fixed
//!   population of totally ordered pebbles with a three-pebble coalescence
//!   threshold, whose cover time stochastically dominates the cobra walk's
//!   (Lemma 10) and is analyzable through the directed tensor chain
//!   D(G×G) (Lemma 11).
//! * [`SimpleWalk`] / lazy variant — classic baseline (Feige's
//!   Θ(log n)…O(n³) cover-time range, §1.2).
//! * [`ParallelWalks`] — `k` independent walks (Alon et al., §1.2).
//! * [`PushGossip`], [`PullGossip`], [`PushPullGossip`] — rumor spreading
//!   (Feige et al.), the O(n log n) process cobra walks are conjectured to
//!   match.
//! * [`BiasedWalk`] — the ε-biased walks of Azar et al. (§5.1) with a
//!   pluggable [`Controller`], and the paper's **inverse-degree-biased
//!   walk** whose hitting time upper-bounds the cobra walk's (Lemma 14);
//!   includes the Metropolis controller of Lemma 16.
//! * [`CoalescingWalks`] / [`BranchingWalk`] — the two halves of the
//!   cobra dynamics in isolation (§1.2 related work).
//! * [`queueing`] — the multi-dimensional drift chain from the proof of
//!   Theorem 3 (§3), a.k.a. the paper's "discrete time queueing system".
//!
//! Measurement drivers ([`CoverDriver`], [`HittingDriver`], h_max
//! estimation and the Matthews-bound check of Theorem 1) live in
//! [`measure`].
//!
//! ## Example: cover a hypercube with a 2-cobra walk
//!
//! ```
//! use cobra_core::{CobraWalk, CoverDriver};
//! use cobra_graph::generators::hypercube::hypercube;
//! use rand::SeedableRng;
//!
//! let g = hypercube(6);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let res = CoverDriver::new(&g)
//!     .run(&CobraWalk::new(2), 0, 50_000, &mut rng)
//!     .expect("cover within budget");
//! assert_eq!(res.covered, 64);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod active_set;
pub mod biased;
pub mod branching;
pub mod coalescing;
pub mod cobra;
pub mod coverage;
pub mod fault;
pub mod frontier;
pub mod gossip;
pub mod lanes;
pub mod measure;
pub mod parallel_walks;
pub mod process;
pub mod queueing;
pub mod schedule;
pub mod scratch;
pub mod simple;
pub mod sis;
pub mod trajectory;
pub mod two_stage;
pub mod walt;

pub use active_set::DenseSet;
pub use biased::{BiasedWalk, Controller, MetropolisWalk, TowardTarget};
pub use branching::BranchingWalk;
pub use coalescing::CoalescingWalks;
pub use cobra::CobraWalk;
pub use coverage::SuccinctCoverage;
pub use fault::{DeletionWave, FaultPlan, FaultyCobraState, FaultyCobraWalk, VertexOutage};
pub use frontier::{CoverageMask, Frontier};
pub use gossip::{PullGossip, PushGossip, PushPullGossip};
pub use lanes::{run_lane_cover, run_lane_cover_probed, LaneOutcome, LaneScratch, LANE_WIDTH};
pub use measure::{run_cover_succinct, CoverDriver, CoverResult, HittingDriver, HittingResult};
pub use parallel_walks::ParallelWalks;
pub use process::{
    BoundDraw, DrawOnTheFly, ImplicitDraw, NeighborDraw, Process, ProcessState, SliceDraw,
    StateView, TypedProcess, TypedState,
};
pub use queueing::DriftChain;
pub use schedule::{BranchingSchedule, ScheduledCobraWalk};
pub use scratch::TrialScratch;
pub use simple::SimpleWalk;
pub use sis::SisProcess;
pub use trajectory::{record_trajectory, Trajectory};
pub use two_stage::TwoStageProcess;
pub use walt::WaltProcess;
