//! Cobra walks with non-constant branching — the paper's §1 closing
//! remark: *"One could further study variations where the branching
//! varied based on the vertex or the time step, or was governed by a
//! random distribution; we do not do that here."*
//!
//! This module does study them. A [`BranchingSchedule`] decides, per
//! (round, vertex, randomness), how many pebbles an active vertex emits;
//! [`ScheduledCobraWalk`] is the cobra walk driven by a schedule.
//! Experiment E14 compares schedules with equal *mean* branching to ask
//! whether E\[k\] is the quantity that matters.

use crate::frontier::Frontier;
use crate::process::{
    bernoulli, DrawOnTheFly, NeighborDraw, Process, ProcessState, TypedProcess, TypedState,
};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// How many pebbles each active vertex emits in a given round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BranchingSchedule {
    /// The classic `k`-cobra walk.
    Fixed(u32),
    /// Alternate deterministically by round parity: `even` on even
    /// rounds, `odd` on odd rounds (time-varying branching).
    Alternating {
        /// Branching factor on even rounds.
        even: u32,
        /// Branching factor on odd rounds.
        odd: u32,
    },
    /// Random branching: `base + Bernoulli(extra_prob)` per active vertex
    /// per round (mean `base + extra_prob`).
    Bernoulli {
        /// Guaranteed branches per round.
        base: u32,
        /// Probability of one extra branch.
        extra_prob: f64,
    },
    /// Degree-proportional: high-degree vertices branch more —
    /// `min(max_k, 1 + degree/divisor)` (vertex-dependent branching).
    DegreeScaled {
        /// Degree units per extra branch.
        divisor: u32,
        /// Cap on the branching factor.
        max_k: u32,
    },
}

impl BranchingSchedule {
    /// Branching factor for an active vertex `v` in round `t`.
    pub fn branches<R: Rng + ?Sized>(&self, t: usize, g: &Graph, v: Vertex, rng: &mut R) -> u32 {
        match *self {
            BranchingSchedule::Fixed(k) => k,
            BranchingSchedule::Alternating { even, odd } => {
                if t.is_multiple_of(2) {
                    even
                } else {
                    odd
                }
            }
            BranchingSchedule::Bernoulli { base, extra_prob } => {
                base + u32::from(extra_prob > 0.0 && bernoulli(extra_prob, rng))
            }
            BranchingSchedule::DegreeScaled { divisor, max_k } => {
                (1 + g.degree(v) as u32 / divisor.max(1)).min(max_k)
            }
        }
    }

    /// Mean branching factor over rounds/randomness (for a vertex of
    /// degree `deg` where relevant).
    pub fn mean_branching(&self, deg: usize) -> f64 {
        match *self {
            BranchingSchedule::Fixed(k) => k as f64,
            BranchingSchedule::Alternating { even, odd } => (even + odd) as f64 / 2.0,
            BranchingSchedule::Bernoulli { base, extra_prob } => base as f64 + extra_prob,
            BranchingSchedule::DegreeScaled { divisor, max_k } => {
                ((1 + deg as u32 / divisor.max(1)).min(max_k)) as f64
            }
        }
    }

    /// Short display name.
    pub fn name(&self) -> String {
        match *self {
            BranchingSchedule::Fixed(k) => format!("fixed({k})"),
            BranchingSchedule::Alternating { even, odd } => format!("alt({even},{odd})"),
            BranchingSchedule::Bernoulli { base, extra_prob } => {
                format!("bern({base}+{extra_prob})")
            }
            BranchingSchedule::DegreeScaled { divisor, max_k } => {
                format!("deg(/{divisor},≤{max_k})")
            }
        }
    }

    fn validate(&self) {
        match *self {
            BranchingSchedule::Fixed(k) => assert!(k >= 1, "fixed branching must be >= 1"),
            BranchingSchedule::Alternating { even, odd } => {
                assert!(even >= 1 && odd >= 1, "alternating branches must be >= 1")
            }
            BranchingSchedule::Bernoulli { base, extra_prob } => {
                assert!(base >= 1, "base branching must be >= 1");
                assert!((0.0..=1.0).contains(&extra_prob), "extra_prob in [0,1]");
            }
            BranchingSchedule::DegreeScaled { max_k, .. } => {
                assert!(max_k >= 1, "max_k must be >= 1")
            }
        }
    }
}

/// A cobra walk whose branching factor follows a [`BranchingSchedule`].
///
/// `ScheduledCobraWalk::new(BranchingSchedule::Fixed(k))` is behaviorally
/// identical to [`crate::CobraWalk`] with branching `k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledCobraWalk {
    schedule: BranchingSchedule,
}

impl ScheduledCobraWalk {
    /// Cobra walk driven by `schedule`.
    pub fn new(schedule: BranchingSchedule) -> Self {
        schedule.validate();
        ScheduledCobraWalk { schedule }
    }

    /// The schedule.
    pub fn schedule(&self) -> BranchingSchedule {
        self.schedule
    }
}

impl Process for ScheduledCobraWalk {
    fn name(&self) -> String {
        format!("cobra[{}]", self.schedule.name())
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for ScheduledCobraWalk {
    type State = ScheduledState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> ScheduledState {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let mut cur = Frontier::new(g.num_vertices());
        cur.insert(start);
        ScheduledState {
            schedule: self.schedule,
            round: 0,
            cur,
            next: Frontier::new(g.num_vertices()),
            occ: vec![start],
        }
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut ScheduledState) {
        let n = g.num_vertices();
        if state.cur.capacity() != n {
            *state = self.spawn_typed(g, start);
            return;
        }
        assert!((start as usize) < n, "start vertex in range");
        state.schedule = self.schedule;
        state.round = 0;
        crate::frontier::reinit_frontier_run(
            &mut state.cur,
            &mut state.next,
            &mut state.occ,
            start,
        );
    }
}

/// Mutable state of a scheduled cobra walk, stepped through the hybrid
/// [`Frontier`] exactly like [`crate::cobra::CobraState`] — so a
/// `Fixed(k)` schedule reproduces the plain `k`-cobra walk draw-for-draw.
pub struct ScheduledState {
    schedule: BranchingSchedule,
    round: usize,
    cur: Frontier,
    next: Frontier,
    occ: Vec<Vertex>,
}

impl ScheduledState {
    #[inline]
    fn advance<const MAINTAIN_OCC: bool, D: NeighborDraw, R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        draw: &D,
        rng: &mut R,
    ) {
        let ScheduledState {
            schedule,
            round,
            cur,
            next,
            occ,
        } = self;
        next.clear();
        cur.for_each(|v| {
            debug_assert!(g.degree(v) > 0, "cobra walk requires min degree >= 1");
            let k = schedule.branches(*round, g, v, rng);
            draw.draw_many(g, v, k, rng, |u| next.insert_quiet(u));
        });
        next.finalize_len();
        if MAINTAIN_OCC {
            occ.clear();
            next.for_each(|v| occ.push(v));
        }
        self.round += 1;
        std::mem::swap(&mut self.cur, &mut self.next);
    }
}

impl TypedState for ScheduledState {
    fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        self.advance::<true, _, R>(g, &DrawOnTheFly, rng);
    }

    fn step_fast<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        self.advance::<false, _, R>(g, &DrawOnTheFly, rng);
    }

    fn step_sampled<D: NeighborDraw, R: Rng + ?Sized>(&mut self, g: &Graph, draw: &D, rng: &mut R) {
        self.advance::<false, D, R>(g, draw, rng);
    }
}

impl crate::process::StateView for ScheduledState {
    fn occupied(&self) -> &[Vertex] {
        &self.occ
    }

    fn support_size(&self) -> usize {
        self.cur.len()
    }

    fn frontier(&self) -> Option<&Frontier> {
        Some(&self.cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_schedule_matches_cobra_walk_distribution() {
        // Same seed ⇒ identical trajectories (same sampling order).
        let g = classic::cycle(16).unwrap();
        let spec_s = ScheduledCobraWalk::new(BranchingSchedule::Fixed(2));
        let spec_c = crate::CobraWalk::new(2);
        let mut a = spec_s.spawn(&g, 0);
        let mut b = spec_c.spawn(&g, 0);
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            a.step(&g, &mut ra);
            b.step(&g, &mut rb);
            assert_eq!(a.occupied(), b.occupied());
        }
    }

    #[test]
    fn alternating_schedule_switches_by_round() {
        let g = classic::complete(10).unwrap();
        let s = BranchingSchedule::Alternating { even: 1, odd: 3 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.branches(0, &g, 0, &mut rng), 1);
        assert_eq!(s.branches(1, &g, 0, &mut rng), 3);
        assert_eq!(s.branches(2, &g, 0, &mut rng), 1);
        assert_eq!(s.mean_branching(9), 2.0);
    }

    #[test]
    fn bernoulli_schedule_hits_its_mean() {
        let g = classic::complete(4).unwrap();
        let s = BranchingSchedule::Bernoulli {
            base: 1,
            extra_prob: 0.37,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 50_000;
        let total: u64 = (0..trials)
            .map(|t| s.branches(t, &g, 0, &mut rng) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.37).abs() < 0.01, "mean {mean}");
        assert_eq!(s.mean_branching(3), 1.37);
    }

    #[test]
    fn degree_scaled_branches_more_at_hubs() {
        let g = classic::star(10).unwrap();
        let s = BranchingSchedule::DegreeScaled {
            divisor: 3,
            max_k: 4,
        };
        let mut rng = StdRng::seed_from_u64(3);
        // Hub degree 9: 1 + 9/3 = 4.
        assert_eq!(s.branches(0, &g, 0, &mut rng), 4);
        // Leaf degree 1: 1 + 0 = 1.
        assert_eq!(s.branches(0, &g, 3, &mut rng), 1);
        assert_eq!(s.mean_branching(9), 4.0);
        assert_eq!(s.mean_branching(1), 1.0);
    }

    #[test]
    fn active_set_growth_respects_max_branching() {
        let g = classic::complete(64).unwrap();
        let spec = ScheduledCobraWalk::new(BranchingSchedule::Alternating { even: 3, odd: 1 });
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut prev = 1usize;
        for t in 0..30 {
            st.step(&g, &mut rng);
            let cur = st.occupied().len();
            let cap = if t % 2 == 0 { 3 * prev } else { prev };
            assert!(cur <= cap, "round {t}: {cur} > {cap}");
            assert!(cur >= 1);
            prev = cur;
        }
    }

    #[test]
    fn names() {
        assert_eq!(
            ScheduledCobraWalk::new(BranchingSchedule::Fixed(2)).name(),
            "cobra[fixed(2)]"
        );
        assert!(BranchingSchedule::Bernoulli {
            base: 1,
            extra_prob: 0.5
        }
        .name()
        .contains("bern"));
    }

    #[test]
    #[should_panic(expected = "extra_prob")]
    fn rejects_bad_probability() {
        ScheduledCobraWalk::new(BranchingSchedule::Bernoulli {
            base: 1,
            extra_prob: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_zero_fixed() {
        ScheduledCobraWalk::new(BranchingSchedule::Fixed(0));
    }
}
