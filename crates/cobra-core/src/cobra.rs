//! The `k`-cobra walk — the paper's central process (§2).
//!
//! > "It starts at time t = 0 at an arbitrary vertex v, at which a pebble
//! > is placed. In the next and every subsequent time step, every pebble
//! > in G clones itself k − 1 times […]. Each pebble then independently
//! > selects a neighbor of its current vertex uniformly at random and
//! > moves to it. Once all pebbles have made their moves, the coalescing
//! > phase begins: if two or more pebbles are at the same vertex they
//! > coalesce into a single pebble."
//!
//! Equivalently: the active set `S_{t+1}` is the union of `k` independent
//! uniformly-random out-choices from each vertex of `S_t`. With `k = 1`
//! this is exactly the simple random walk; the paper's results are for
//! `k = 2`.

use crate::frontier::Frontier;
use crate::process::{
    ImplicitDraw, NeighborDraw, Process, ProcessState, StateView, TypedProcess, TypedState,
};
use cobra_graph::{Graph, ImplicitGraph, Vertex};
use rand::Rng;

/// Specification of a `k`-cobra walk.
///
/// `branching_factor = 1` degenerates to the simple random walk; the
/// paper's headline results use 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CobraWalk {
    branching_factor: u32,
}

impl CobraWalk {
    /// A cobra walk with the given branching factor `k ≥ 1`.
    pub fn new(branching_factor: u32) -> Self {
        assert!(branching_factor >= 1, "branching factor must be >= 1");
        CobraWalk { branching_factor }
    }

    /// The paper's default: the 2-cobra walk.
    pub fn standard() -> Self {
        CobraWalk::new(2)
    }

    /// The branching factor `k`.
    pub fn branching_factor(&self) -> u32 {
        self.branching_factor
    }
}

impl Process for CobraWalk {
    fn name(&self) -> String {
        format!("cobra(k={})", self.branching_factor)
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl<G: ImplicitGraph + ?Sized> TypedProcess<G> for CobraWalk {
    type State = CobraState;

    fn spawn_typed(&self, g: &G, start: Vertex) -> CobraState {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let mut cur = Frontier::new(g.num_vertices());
        cur.insert(start);
        CobraState {
            k: self.branching_factor,
            cur,
            next: Frontier::new(g.num_vertices()),
            occ: vec![start],
        }
    }

    fn lane_branching(&self) -> Option<u32> {
        // One cobra round IS k iid uniform out-draws per frontier vertex.
        Some(self.branching_factor)
    }

    fn respawn_typed(&self, g: &G, start: Vertex, state: &mut CobraState) {
        let n = g.num_vertices();
        if state.cur.capacity() != n {
            *state = self.spawn_typed(g, start);
            return;
        }
        assert!((start as usize) < n, "start vertex in range");
        state.k = self.branching_factor;
        crate::frontier::reinit_frontier_run(
            &mut state.cur,
            &mut state.next,
            &mut state.occ,
            start,
        );
    }
}

/// Mutable state of a running cobra walk: the active set as a hybrid
/// sparse/dense [`Frontier`].
///
/// The step iterates the frontier in its native order — insertion order
/// while sparse, ascending vertex order once dense (which streams the CSR
/// adjacency arrays sequentially instead of hopping around them). The
/// order is deterministic, and the dyn and typed routes share this one
/// step body, so they consume identical RNG streams. `occ` is a
/// materialized copy of the active set kept for
/// [`ProcessState::occupied`]; the fast-path [`TypedState::step_fast`]
/// skips maintaining it because the typed drivers read the frontier
/// directly. No per-step allocation once warmed up.
pub struct CobraState {
    k: u32,
    cur: Frontier,
    next: Frontier,
    occ: Vec<Vertex>,
}

impl CobraState {
    /// One round of the cobra dynamics: `k` uniform out-choices per active
    /// vertex (through a [`NeighborDraw`] strategy — all strategies are
    /// stream-compatible, so every route makes the same draws),
    /// deduplicated into the next frontier through the branch-free
    /// quiet-insert path. `MAINTAIN_OCC` is compile-time so the dyn route
    /// rematerializes its `occupied()` slice after the round while the
    /// fast route drops that bookkeeping entirely — same draws either way.
    #[inline]
    fn advance<const MAINTAIN_OCC: bool, G: ?Sized, D: NeighborDraw<G>, R: Rng + ?Sized>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
    ) {
        let CobraState { k, cur, next, occ } = self;
        next.clear();
        cur.for_each(|v| {
            draw.draw_many(g, v, *k, rng, |u| next.insert_quiet(u));
        });
        next.finalize_len();
        if MAINTAIN_OCC {
            occ.clear();
            next.for_each(|v| occ.push(v));
        }
        std::mem::swap(cur, next);
    }
}

impl StateView for CobraState {
    fn occupied(&self) -> &[Vertex] {
        &self.occ
    }

    fn support_size(&self) -> usize {
        self.cur.len()
    }

    fn frontier(&self) -> Option<&Frontier> {
        Some(&self.cur)
    }
}

impl<G: ImplicitGraph + ?Sized> TypedState<G> for CobraState {
    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        // `ImplicitDraw` resolves identical vertices from the identical
        // stream as the old slice-based default on CSR graphs, so the dyn
        // route's draws are unchanged.
        self.advance::<true, G, _, R>(g, &ImplicitDraw, rng);
    }

    fn step_fast<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        self.advance::<false, G, _, R>(g, &ImplicitDraw, rng);
    }

    fn step_sampled<D: NeighborDraw<G>, R: Rng + ?Sized>(&mut self, g: &G, draw: &D, rng: &mut R) {
        self.advance::<false, G, D, R>(g, draw, rng);
    }

    fn step_probed<D: NeighborDraw<G>, R: Rng + ?Sized, Pb: cobra_obs::Probe>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
        probe: &mut Pb,
    ) {
        // Draw accounting costs two frontier-length reads (O(1) field
        // loads), never a kernel change: every active vertex makes
        // exactly k draws, and a draw "merged" iff it failed to open a
        // new slot in the next frontier. Under `NoopProbe` both reads
        // and the hook are dead code and the optimizer restores the
        // exact `step_sampled` body.
        let senders = self.cur.len() as u64;
        self.advance::<false, G, D, R>(g, draw, rng);
        let draws = senders * u64::from(self.k);
        probe.on_draws(draws, draws - self.cur.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, grid, hypercube};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_steps(
        spec: &CobraWalk,
        g: &Graph,
        start: Vertex,
        steps: usize,
        seed: u64,
    ) -> Box<dyn ProcessState> {
        let mut st = spec.spawn(g, start);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            st.step(g, &mut rng);
        }
        st
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn rejects_zero_branching() {
        CobraWalk::new(0);
    }

    #[test]
    fn name_includes_k() {
        assert_eq!(CobraWalk::new(3).name(), "cobra(k=3)");
        assert_eq!(CobraWalk::standard().branching_factor(), 2);
    }

    #[test]
    fn initial_state_is_start_vertex() {
        let g = classic::cycle(5).unwrap();
        let st = CobraWalk::standard().spawn(&g, 2);
        assert_eq!(st.occupied(), &[2]);
        assert_eq!(st.support_size(), 1);
    }

    #[test]
    fn active_set_never_empty_and_in_range() {
        let g = grid::grid(&[5, 5]);
        let st = run_steps(&CobraWalk::standard(), &g, 0, 200, 7);
        assert!(!st.occupied().is_empty());
        for &v in st.occupied() {
            assert!((v as usize) < g.num_vertices());
        }
    }

    #[test]
    fn active_set_has_no_duplicates() {
        let g = hypercube::hypercube(5);
        let spec = CobraWalk::new(3);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            st.step(&g, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for &v in st.occupied() {
                assert!(seen.insert(v), "duplicate vertex {v} in active set");
            }
        }
    }

    #[test]
    fn growth_is_bounded_by_k() {
        let g = hypercube::hypercube(7);
        let spec = CobraWalk::new(2);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut prev = st.occupied().len();
        for _ in 0..60 {
            st.step(&g, &mut rng);
            let cur = st.occupied().len();
            assert!(
                cur <= 2 * prev,
                "|S_{{t+1}}| = {cur} > 2|S_t| = {}",
                2 * prev
            );
            assert!(cur >= 1);
            prev = cur;
        }
    }

    #[test]
    fn k1_is_a_single_walk() {
        let g = classic::cycle(8).unwrap();
        let spec = CobraWalk::new(1);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            st.step(&g, &mut rng);
            assert_eq!(st.occupied().len(), 1);
        }
    }

    #[test]
    fn steps_stay_on_neighbors() {
        // On a path, a single step from the active set must land on
        // adjacent vertices only.
        let g = classic::path(10).unwrap();
        let spec = CobraWalk::standard();
        let mut st = spec.spawn(&g, 5);
        let mut rng = StdRng::seed_from_u64(19);
        st.step(&g, &mut rng);
        for &v in st.occupied() {
            assert!(g.has_edge(5, v));
        }
    }

    #[test]
    fn complete_graph_active_set_expands_quickly() {
        let g = classic::complete(64).unwrap();
        let spec = CobraWalk::standard();
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            st.step(&g, &mut rng);
        }
        // After 10 doubling-ish rounds on K_64 the active set should be
        // well beyond a handful of vertices.
        assert!(st.occupied().len() > 8);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = grid::grid(&[6, 6]);
        let a = run_steps(&CobraWalk::standard(), &g, 0, 30, 99);
        let b = run_steps(&CobraWalk::standard(), &g, 0, 30, 99);
        let mut av: Vec<_> = a.occupied().to_vec();
        let mut bv: Vec<_> = b.occupied().to_vec();
        av.sort_unstable();
        bv.sort_unstable();
        assert_eq!(av, bv);
    }
}
