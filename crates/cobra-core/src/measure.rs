//! Cover-time and hitting-time measurement (paper §2 definitions) plus the
//! Matthews-bound check of Theorem 1.
//!
//! * **Cover time**: the first `T` such that every vertex belonged to some
//!   active set `S_t`, `t ≤ T`;
//! * **Hitting time `H(u, v)`**: the first time any pebble of a walk
//!   started at `u` reaches `v`;
//! * **`h_max`**: `max_{u,v} H(u, v)`, estimated by sampling pairs;
//! * **Theorem 1** (Matthews extension, proved in the prior cobra paper):
//!   cover time `= O(h_max · log n)` — checked empirically by
//!   [`matthews_ratio`].

use crate::frontier::CoverageMask;
use crate::process::{NeighborDraw, Process, StateView, TypedProcess, TypedState};
use crate::scratch::TrialScratch;
use cobra_graph::{Graph, ImplicitGraph, Vertex};
use cobra_obs::{NoopProbe, Probe};
use rand::Rng;

/// Outcome of a cover-time run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverResult {
    /// Rounds taken to cover the graph (valid when `completed`).
    pub steps: usize,
    /// Number of distinct vertices covered when the run ended.
    pub covered: usize,
    /// Whether the whole graph was covered within the budget.
    pub completed: bool,
    /// `|S_t|` after each round, recorded when trajectory recording is on.
    pub trajectory: Option<Vec<usize>>,
}

/// Drives a process on a graph until coverage or a step budget.
///
/// Generic over the graph representation: `G = Graph` (the CSR default)
/// keeps every existing call site unchanged, while any
/// [`ImplicitGraph`] family runs the same monomorphized kernels without
/// materializing adjacency. The dyn-dispatch [`CoverDriver::run`] entry
/// point exists only for CSR graphs ([`crate::process::Process`] is
/// CSR-typed); the typed paths are available for every `G`.
pub struct CoverDriver<'g, G: ?Sized = Graph> {
    g: &'g G,
    record_trajectory: bool,
}

impl<'g, G: ImplicitGraph + ?Sized> CoverDriver<'g, G> {
    /// Driver for graph `g`.
    pub fn new(g: &'g G) -> Self {
        CoverDriver {
            g,
            record_trajectory: false,
        }
    }

    /// Also record the active-set size after every round (costs one usize
    /// per round).
    pub fn record_trajectory(mut self) -> Self {
        self.record_trajectory = true;
        self
    }
}

impl<'g> CoverDriver<'g, Graph> {
    /// Run `process` from `start` until the graph is covered or
    /// `max_steps` rounds elapse. Returns `None` only if the graph has no
    /// vertices.
    pub fn run(
        &self,
        process: &dyn Process,
        start: Vertex,
        max_steps: usize,
        rng: &mut dyn Rng,
    ) -> Option<CoverResult> {
        self.run_probed(process, start, max_steps, rng, &mut NoopProbe)
    }

    /// [`CoverDriver::run`] with an observability [`Probe`] attached: the
    /// driver reports each round's index and frontier occupancy plus the
    /// coverage delta (the dyn route cannot account for draw counts — the
    /// boxed state hides the kernel). The probe never touches the RNG, so
    /// results are bit-identical to [`CoverDriver::run`]; with
    /// [`NoopProbe`] this *is* `run`.
    pub fn run_probed<Pb: Probe>(
        &self,
        process: &dyn Process,
        start: Vertex,
        max_steps: usize,
        rng: &mut dyn Rng,
        probe: &mut Pb,
    ) -> Option<CoverResult> {
        let n = self.g.num_vertices();
        if n == 0 {
            return None;
        }
        let mut state = process.spawn(self.g, start);
        let mut covered = vec![false; n];
        let mut covered_count = 0usize;
        let mark = |occ: &[Vertex], covered: &mut [bool], count: &mut usize| {
            for &v in occ {
                if !covered[v as usize] {
                    covered[v as usize] = true;
                    *count += 1;
                }
            }
        };
        mark(state.occupied(), &mut covered, &mut covered_count);
        probe.on_coverage(covered_count as u64, covered_count as u64);
        let mut trajectory = self.record_trajectory.then(Vec::new);
        if covered_count == n {
            probe.on_trial_end(0, true);
            return Some(CoverResult {
                steps: 0,
                covered: n,
                completed: true,
                trajectory,
            });
        }
        for t in 1..=max_steps {
            state.step(self.g, rng);
            let before = covered_count;
            mark(state.occupied(), &mut covered, &mut covered_count);
            // `Pb::ENABLED` gate: `support_size` is a scan (and for some
            // processes an allocation) when there is no O(1) frontier —
            // the noop route must not pay for it.
            if Pb::ENABLED {
                probe.on_round(t as u64, state.support_size() as u64);
            }
            probe.on_coverage((covered_count - before) as u64, covered_count as u64);
            if let Some(tr) = trajectory.as_mut() {
                tr.push(state.support_size());
            }
            if covered_count == n {
                probe.on_trial_end(t as u64, true);
                return Some(CoverResult {
                    steps: t,
                    covered: n,
                    completed: true,
                    trajectory,
                });
            }
        }
        probe.on_trial_end(max_steps as u64, false);
        Some(CoverResult {
            steps: max_steps,
            covered: covered_count,
            completed: false,
            trajectory,
        })
    }
}

impl<'g, G: ImplicitGraph + ?Sized> CoverDriver<'g, G> {
    /// Monomorphized fast path: identical semantics (and, on the same
    /// seed, identical results — see `tests/engine_equivalence.rs`) to
    /// [`CoverDriver::run`], but with zero virtual dispatch. The process
    /// state, the RNG, and the coverage bookkeeping all inline; coverage
    /// is tracked in a [`CoverageMask`] and updated word-parallel whenever
    /// the process exposes a dense [`crate::frontier::Frontier`].
    pub fn run_typed<P: TypedProcess<G>, R: Rng + ?Sized>(
        &self,
        process: &P,
        start: Vertex,
        max_steps: usize,
        rng: &mut R,
    ) -> Option<CoverResult> {
        self.run_typed_probed(process, start, max_steps, rng, &mut NoopProbe)
    }

    /// [`CoverDriver::run_typed`] with an observability [`Probe`]
    /// attached: the driver reports rounds, frontier occupancy, and
    /// coverage deltas; the process kernel reports its own draw
    /// accounting through [`TypedState::step_probed`]. The probe never
    /// touches the RNG, so results are bit-identical to
    /// [`CoverDriver::run_typed`]; with [`NoopProbe`] every hook is dead
    /// code and this *is* `run_typed`.
    pub fn run_typed_probed<P: TypedProcess<G>, R: Rng + ?Sized, Pb: Probe>(
        &self,
        process: &P,
        start: Vertex,
        max_steps: usize,
        rng: &mut R,
        probe: &mut Pb,
    ) -> Option<CoverResult> {
        let n = self.g.num_vertices();
        if n == 0 {
            return None;
        }
        let mut state = process.spawn_typed(self.g, start);
        let mut covered = CoverageMask::new(n);
        let newly = covered.mark_slice(state.occupied());
        probe.on_coverage(newly as u64, covered.count() as u64);
        let mut trajectory = self.record_trajectory.then(Vec::new);
        if covered.is_complete() {
            probe.on_trial_end(0, true);
            return Some(CoverResult {
                steps: 0,
                covered: n,
                completed: true,
                trajectory,
            });
        }
        for t in 1..=max_steps {
            // `ImplicitDraw` is stream-compatible with the `step_fast`
            // default, so the probed round makes the same draws.
            state.step_probed(self.g, &crate::process::ImplicitDraw, rng, probe);
            let newly = match state.frontier() {
                Some(f) => covered.union_frontier(f),
                None => covered.mark_slice(state.occupied()),
            };
            if Pb::ENABLED {
                probe.on_round(t as u64, state.support_size() as u64);
            }
            probe.on_coverage(newly as u64, covered.count() as u64);
            if let Some(tr) = trajectory.as_mut() {
                tr.push(state.support_size());
            }
            if covered.is_complete() {
                probe.on_trial_end(t as u64, true);
                return Some(CoverResult {
                    steps: t,
                    covered: n,
                    completed: true,
                    trajectory,
                });
            }
        }
        probe.on_trial_end(max_steps as u64, false);
        Some(CoverResult {
            steps: max_steps,
            covered: covered.count(),
            completed: false,
            trajectory,
        })
    }

    /// Scratch-borrowing variant of [`CoverDriver::run_typed`] for the
    /// batched trial engine: reuses the process state, coverage mask, and
    /// trajectory buffer in `scratch` (O(dirty) reinitialization, zero
    /// heap allocations once warm) and routes every neighbor draw through
    /// `draw` (typically the per-graph
    /// [`cobra_graph::NeighborSampler`]). All [`NeighborDraw`] strategies
    /// are stream-compatible and `respawn` mirrors `spawn`, so results
    /// are **bit-for-bit identical** to [`CoverDriver::run_typed`] on the
    /// same seed — pinned by `tests/engine_equivalence.rs`.
    ///
    /// When trajectory recording is on, the trajectory is both returned
    /// in the [`CoverResult`] (cloned) and left in
    /// [`TrialScratch::trajectory`] (borrowed, allocation-free).
    pub fn run_typed_in<P: TypedProcess<G>, D: NeighborDraw<G>, R: Rng + ?Sized>(
        &self,
        process: &P,
        draw: &D,
        scratch: &mut TrialScratch<P::State>,
        start: Vertex,
        max_steps: usize,
        rng: &mut R,
    ) -> Option<CoverResult> {
        self.run_typed_in_probed(
            process,
            draw,
            scratch,
            start,
            max_steps,
            rng,
            &mut NoopProbe,
        )
    }

    /// [`CoverDriver::run_typed_in`] with an observability [`Probe`]
    /// attached — the probed analogue exactly as
    /// [`CoverDriver::run_typed_probed`] is to [`CoverDriver::run_typed`].
    /// Bit-identical to the unprobed scratch driver on the same seed
    /// (the probe never touches the RNG), and allocation-free once warm
    /// for probes that don't allocate.
    #[allow(clippy::too_many_arguments)] // mirrors run_typed_in + probe
    pub fn run_typed_in_probed<P, D, R, Pb>(
        &self,
        process: &P,
        draw: &D,
        scratch: &mut TrialScratch<P::State>,
        start: Vertex,
        max_steps: usize,
        rng: &mut R,
        probe: &mut Pb,
    ) -> Option<CoverResult>
    where
        P: TypedProcess<G>,
        D: NeighborDraw<G>,
        R: Rng + ?Sized,
        Pb: Probe,
    {
        let n = self.g.num_vertices();
        if n == 0 {
            return None;
        }
        scratch.prepare(self.g, process, start);
        let TrialScratch {
            state,
            covered,
            trajectory,
        } = scratch;
        let state = state.as_mut().expect("prepare populated the state");
        let newly = covered.mark_slice(state.occupied());
        probe.on_coverage(newly as u64, covered.count() as u64);
        if covered.is_complete() {
            probe.on_trial_end(0, true);
            return Some(CoverResult {
                steps: 0,
                covered: n,
                completed: true,
                trajectory: self.record_trajectory.then(|| trajectory.clone()),
            });
        }
        for t in 1..=max_steps {
            state.step_probed(self.g, draw, rng, probe);
            let newly = match state.frontier() {
                Some(f) => covered.union_frontier(f),
                None => covered.mark_slice(state.occupied()),
            };
            if Pb::ENABLED {
                probe.on_round(t as u64, state.support_size() as u64);
            }
            probe.on_coverage(newly as u64, covered.count() as u64);
            if self.record_trajectory {
                trajectory.push(state.support_size());
            }
            if covered.is_complete() {
                probe.on_trial_end(t as u64, true);
                return Some(CoverResult {
                    steps: t,
                    covered: n,
                    completed: true,
                    trajectory: self.record_trajectory.then(|| trajectory.clone()),
                });
            }
        }
        probe.on_trial_end(max_steps as u64, false);
        Some(CoverResult {
            steps: max_steps,
            covered: covered.count(),
            completed: false,
            trajectory: self.record_trajectory.then(|| trajectory.clone()),
        })
    }
}

/// Outcome of a hitting-time run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HittingResult {
    /// Rounds until the target was first occupied (valid when `hit`).
    pub steps: usize,
    /// Whether the target was reached within the budget.
    pub hit: bool,
}

/// Drives a process until a target vertex is occupied.
///
/// Generic over the graph representation exactly like [`CoverDriver`]:
/// the dyn-dispatch [`HittingDriver::run`] is CSR-only, the typed paths
/// work for any [`ImplicitGraph`].
pub struct HittingDriver<'g, G: ?Sized = Graph> {
    g: &'g G,
}

impl<'g, G: ImplicitGraph + ?Sized> HittingDriver<'g, G> {
    /// Driver for graph `g`.
    pub fn new(g: &'g G) -> Self {
        HittingDriver { g }
    }
}

impl<'g> HittingDriver<'g, Graph> {
    /// Run `process` from `start` until some pebble occupies `target` or
    /// `max_steps` rounds elapse. A run started *at* the target hits at
    /// step 0.
    pub fn run(
        &self,
        process: &dyn Process,
        start: Vertex,
        target: Vertex,
        max_steps: usize,
        rng: &mut dyn Rng,
    ) -> HittingResult {
        let mut state = process.spawn(self.g, start);
        if state.occupied().contains(&target) {
            return HittingResult {
                steps: 0,
                hit: true,
            };
        }
        for t in 1..=max_steps {
            state.step(self.g, rng);
            if state.occupied().contains(&target) {
                return HittingResult {
                    steps: t,
                    hit: true,
                };
            }
        }
        HittingResult {
            steps: max_steps,
            hit: false,
        }
    }
}

impl<'g, G: ImplicitGraph + ?Sized> HittingDriver<'g, G> {
    /// Monomorphized fast path for hitting times; identical semantics and
    /// seed-for-seed results to [`HittingDriver::run`]. When the process
    /// exposes a [`crate::frontier::Frontier`], the per-round hit test is
    /// an O(1)/O(log s) membership query instead of a linear scan of the
    /// occupied slice.
    pub fn run_typed<P: TypedProcess<G>, R: Rng + ?Sized>(
        &self,
        process: &P,
        start: Vertex,
        target: Vertex,
        max_steps: usize,
        rng: &mut R,
    ) -> HittingResult {
        let mut state = process.spawn_typed(self.g, start);
        if state.occupied().contains(&target) {
            return HittingResult {
                steps: 0,
                hit: true,
            };
        }
        for t in 1..=max_steps {
            state.step_fast(self.g, rng);
            let hit = match state.frontier() {
                Some(f) => f.contains(target),
                None => state.occupied().contains(&target),
            };
            if hit {
                return HittingResult {
                    steps: t,
                    hit: true,
                };
            }
        }
        HittingResult {
            steps: max_steps,
            hit: false,
        }
    }

    /// Scratch-borrowing variant of [`HittingDriver::run_typed`] for the
    /// batched trial engine: reuses the process state in `scratch` and
    /// draws neighbors through `draw`. Bit-for-bit identical to
    /// [`HittingDriver::run_typed`] on the same seed (the scratch's
    /// coverage mask and trajectory buffer are untouched — hitting runs
    /// only need the state).
    #[allow(clippy::too_many_arguments)] // mirrors run_typed + (draw, scratch)
    pub fn run_typed_in<P: TypedProcess<G>, D: NeighborDraw<G>, R: Rng + ?Sized>(
        &self,
        process: &P,
        draw: &D,
        scratch: &mut TrialScratch<P::State>,
        start: Vertex,
        target: Vertex,
        max_steps: usize,
        rng: &mut R,
    ) -> HittingResult {
        let state = match scratch.state {
            Some(ref mut state) => {
                process.respawn_typed(self.g, start, state);
                state
            }
            None => scratch.state.insert(process.spawn_typed(self.g, start)),
        };
        if state.occupied().contains(&target) {
            return HittingResult {
                steps: 0,
                hit: true,
            };
        }
        for t in 1..=max_steps {
            state.step_sampled(self.g, draw, rng);
            let hit = match state.frontier() {
                Some(f) => f.contains(target),
                None => state.occupied().contains(&target),
            };
            if hit {
                return HittingResult {
                    steps: t,
                    hit: true,
                };
            }
        }
        HittingResult {
            steps: max_steps,
            hit: false,
        }
    }
}

/// Run one cover trial of `process` on any [`ImplicitGraph`], tracking
/// coverage in a caller-owned [`crate::coverage::SuccinctCoverage`].
///
/// This is the giant-run entry point: the caller preallocates (and can
/// reuse, via [`crate::coverage::SuccinctCoverage::reset`]) the coverage
/// structure, the graph is consulted only through arithmetic
/// [`ImplicitGraph`] calls, and the step kernel is the same monomorphized
/// path as [`CoverDriver::run_typed`] — so on `G = Graph` the two agree
/// draw-for-draw (the coverage structure never touches the RNG). See
/// `tests/implicit_scale.rs`, which pushes this through 10⁸ vertices
/// without materializing adjacency.
pub fn run_cover_succinct<G, P, R>(
    g: &G,
    process: &P,
    covered: &mut crate::coverage::SuccinctCoverage,
    start: Vertex,
    max_steps: usize,
    rng: &mut R,
) -> Option<CoverResult>
where
    G: ImplicitGraph + ?Sized,
    P: TypedProcess<G>,
    R: Rng + ?Sized,
{
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    assert_eq!(
        covered.capacity(),
        n,
        "coverage sized for a different graph"
    );
    covered.reset();
    let mut state = process.spawn_typed(g, start);
    covered.mark_slice(state.occupied());
    if covered.is_complete() {
        return Some(CoverResult {
            steps: 0,
            covered: n,
            completed: true,
            trajectory: None,
        });
    }
    for t in 1..=max_steps {
        state.step_fast(g, rng);
        match state.frontier() {
            Some(f) => covered.union_from_frontier(f),
            None => covered.mark_slice(state.occupied()),
        };
        if covered.is_complete() {
            return Some(CoverResult {
                steps: t,
                covered: n,
                completed: true,
                trajectory: None,
            });
        }
    }
    Some(CoverResult {
        steps: max_steps,
        covered: covered.count(),
        completed: false,
        trajectory: None,
    })
}

/// Estimate `h_max = max_{u,v} H(u, v)` by measuring the mean hitting time
/// over `trials` runs for each of `pairs` sampled `(u, v)` pairs, returning
/// the largest mean observed. For small graphs, pass `pairs >= n²` to make
/// the pair sample exhaustive-ish.
///
/// Runs that exhaust `max_steps` count as `max_steps` (an underestimate —
/// acceptable because the Matthews experiment only needs the right order
/// of magnitude and reports censoring separately).
pub fn estimate_hmax(
    g: &Graph,
    process: &dyn Process,
    pairs: usize,
    trials: usize,
    max_steps: usize,
    rng: &mut dyn Rng,
) -> f64 {
    use crate::process::sample_index;
    let n = g.num_vertices();
    assert!(n >= 2, "hitting times need at least two vertices");
    let driver = HittingDriver::new(g);
    let mut worst = 0.0f64;
    for _ in 0..pairs {
        let u = sample_index(n, rng) as Vertex;
        let mut v = sample_index(n - 1, rng) as Vertex;
        if v >= u {
            v += 1;
        }
        let mut total = 0usize;
        for _ in 0..trials {
            total += driver.run(process, u, v, max_steps, rng).steps;
        }
        let mean = total as f64 / trials as f64;
        worst = worst.max(mean);
    }
    worst
}

/// The Matthews ratio `cover_time / (h_max · ln n)`. Theorem 1 says this
/// is O(1) for cobra walks; the experiment harness checks it stays bounded
/// across families and sizes.
pub fn matthews_ratio(cover_time: f64, hmax: f64, n: usize) -> f64 {
    assert!(n >= 2);
    cover_time / (hmax.max(1.0) * (n as f64).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cobra::CobraWalk;
    use crate::simple::SimpleWalk;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cover_completes_on_small_cycle() {
        let g = classic::cycle(8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let res = CoverDriver::new(&g)
            .run(&CobraWalk::standard(), 0, 10_000, &mut rng)
            .unwrap();
        assert!(res.completed);
        assert_eq!(res.covered, 8);
        assert!(res.steps >= 4, "cannot cover an 8-cycle in under 4 rounds");
    }

    #[test]
    fn cover_budget_exhaustion_reports_partial() {
        let g = classic::path(50).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let res = CoverDriver::new(&g)
            .run(&SimpleWalk::new(), 0, 3, &mut rng)
            .unwrap();
        assert!(!res.completed);
        assert!(res.covered < 50);
        assert_eq!(res.steps, 3);
    }

    #[test]
    fn cover_on_single_vertex_graph_is_zero_steps() {
        let g = cobra_graph::builder::from_edges(1, &[]).unwrap();
        // Single-vertex graph: start covers everything; process never steps,
        // so its (absent) neighbors are never sampled.
        let mut rng = StdRng::seed_from_u64(3);
        let res = CoverDriver::new(&g)
            .run(&SimpleWalk::new(), 0, 10, &mut rng)
            .unwrap();
        assert!(res.completed);
        assert_eq!(res.steps, 0);
    }

    #[test]
    fn cover_on_empty_graph_is_none() {
        let g = cobra_graph::Graph::empty(0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(CoverDriver::new(&g)
            .run(&SimpleWalk::new(), 0, 10, &mut rng)
            .is_none());
    }

    #[test]
    fn trajectory_is_recorded() {
        let g = classic::complete(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let res = CoverDriver::new(&g)
            .record_trajectory()
            .run(&CobraWalk::standard(), 0, 10_000, &mut rng)
            .unwrap();
        let tr = res.trajectory.unwrap();
        assert_eq!(tr.len(), res.steps);
        assert!(tr.iter().all(|&s| (1..=16).contains(&s)));
    }

    #[test]
    fn hitting_at_start_is_zero() {
        let g = classic::cycle(5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let res = HittingDriver::new(&g).run(&SimpleWalk::new(), 3, 3, 100, &mut rng);
        assert!(res.hit);
        assert_eq!(res.steps, 0);
    }

    #[test]
    fn hitting_adjacent_takes_at_least_one_step() {
        let g = classic::complete(4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let res = HittingDriver::new(&g).run(&CobraWalk::standard(), 0, 1, 1000, &mut rng);
        assert!(res.hit);
        assert!(res.steps >= 1);
    }

    #[test]
    fn hitting_budget_exhaustion() {
        let g = classic::path(100).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let res = HittingDriver::new(&g).run(&SimpleWalk::new(), 0, 99, 5, &mut rng);
        assert!(!res.hit);
        assert_eq!(res.steps, 5);
    }

    #[test]
    fn hmax_on_complete_graph_is_small() {
        let g = classic::complete(8).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let h = estimate_hmax(&g, &CobraWalk::standard(), 10, 20, 10_000, &mut rng);
        // On K_8 the 2-cobra hits any fixed vertex in a handful of rounds.
        assert!(h >= 1.0);
        assert!(h < 30.0, "h_max estimate {h} way too large for K8");
    }

    #[test]
    fn matthews_ratio_is_finite_and_positive() {
        let r = matthews_ratio(100.0, 10.0, 64);
        assert!(r > 0.0 && r.is_finite());
        // cover = hmax·ln n gives ratio 1.
        let n = 64usize;
        let r1 = matthews_ratio(10.0 * (n as f64).ln(), 10.0, n);
        assert!((r1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cobra_cover_beats_simple_walk_on_cycle() {
        // Sanity: 2-cobra covers the cycle about quadratically faster.
        let g = classic::cycle(64).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let trials = 5;
        let mut cobra_total = 0usize;
        let mut rw_total = 0usize;
        for _ in 0..trials {
            cobra_total += CoverDriver::new(&g)
                .run(&CobraWalk::standard(), 0, 1_000_000, &mut rng)
                .unwrap()
                .steps;
            rw_total += CoverDriver::new(&g)
                .run(&SimpleWalk::new(), 0, 1_000_000, &mut rng)
                .unwrap()
                .steps;
        }
        assert!(
            cobra_total * 3 < rw_total,
            "cobra {cobra_total} not clearly faster than simple {rw_total}"
        );
    }
}
