//! Hybrid sparse/dense frontier engine for walk kernels.
//!
//! Every process in the paper is a frontier evolution: the active set
//! `S_{t+1}` is a union of random out-choices from `S_t` (§2). On
//! expanders that frontier goes from a single pebble to Θ(n) vertices
//! within O(log n) rounds, so no single set representation is right for a
//! whole run:
//!
//! * **sparse** (insertion-order `Vec<Vertex>` + membership bits):
//!   iteration touches only `|S|` entries and clearing is per-member.
//!   Wins while the frontier is a vanishing fraction of the graph.
//! * **dense** (`u64` bitset only): insertion is a single unconditional
//!   OR — no membership test, no append, and crucially **no
//!   data-dependent branch** — with `len` recovered by a word-parallel
//!   popcount once per round. Wins once the frontier is a constant
//!   fraction of the graph, where a tested insert mispredicts ~50% of the
//!   time and dominates the whole walk kernel (measured ~16 of 21 ns per
//!   vertex-step on the 64×64 grid at steady state).
//!
//! **Load-factor heuristic.** [`Frontier`] switches sparse → dense when
//! `|S| ≥ max(8, n/64)`, i.e. when the member count reaches the number of
//! `u64` words the bitset needs. Below that point per-member bookkeeping
//! is cheaper than any whole-bitset operation (clear, popcount, scan —
//! each O(n/64) words); above it those word-parallel passes cost no more
//! than the member count, so the branch-free OR-insert wins outright. The
//! switch is one-way within a round and resets on [`Frontier::clear`],
//! matching the direction-switching trick of hybrid BFS engines.
//!
//! Membership bits are maintained in *both* modes, so `contains` is O(1)
//! throughout and the representation switch never changes which set is
//! stored — only how it is traversed. Iteration order is insertion order
//! while sparse and ascending once dense; it is deterministic either way,
//! and the dyn and typed drivers share one step body, so the
//! seed-equivalence harness holds bit-for-bit across the switch.

use cobra_graph::Vertex;

/// Member-count threshold divisor: go dense once `len ≥ n / 64` (one
/// member per bitset word).
const DENSE_DIVISOR: usize = 64;

/// Minimum threshold so tiny graphs keep a useful sparse phase.
const MIN_THRESHOLD: usize = 8;

#[inline]
fn word_count(n: usize) -> usize {
    n.div_ceil(64)
}

/// A set over dense vertex ids `0..n` that adapts its representation to
/// its load factor: insertion-order vector + membership bits while small,
/// branch-free pure bitset once it crosses the load-factor threshold (see
/// the module docs).
#[derive(Clone, Debug)]
pub struct Frontier {
    /// Id-space size `n`.
    n: usize,
    /// Member count at which the representation switches to dense.
    threshold: usize,
    /// Membership bitset; maintained in both modes.
    words: Vec<u64>,
    /// Unique members in insertion order (sparse mode only; capacity
    /// `threshold`, abandoned after the switch).
    buf: Vec<Vertex>,
    /// Which representation is live.
    dense: bool,
    /// Member count. Exact through the public API; after
    /// [`Frontier::insert_quiet`] bursts it is only exact again once
    /// [`Frontier::finalize_len`] runs (crate-internal contract).
    len: usize,
}

impl Frontier {
    /// An empty frontier over the id space `0..n`.
    pub fn new(n: usize) -> Self {
        let threshold = (n / DENSE_DIVISOR).max(MIN_THRESHOLD);
        Frontier {
            n,
            threshold,
            words: vec![0; word_count(n)],
            buf: Vec::with_capacity(threshold),
            dense: false,
            len: 0,
        }
    }

    /// Capacity of the id space.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the dense (pure bitset) representation is live.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// The member count at which this frontier goes dense.
    pub fn dense_threshold(&self) -> usize {
        self.threshold
    }

    /// Whether `v` is a member (O(1) in both modes).
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let i = v as usize;
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Insert `v`; returns `true` if it was newly inserted. Keeps `len`
    /// exact; walk kernels use `Frontier::insert_quiet` instead, which
    /// skips everything a hot loop does not need.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        debug_assert!((v as usize) < self.n, "vertex {v} out of range");
        let i = v as usize;
        let word = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.len += 1;
        if !self.dense {
            self.buf.push(v);
            if self.len >= self.threshold {
                self.dense = true;
                self.buf.clear();
            }
        }
        true
    }

    /// Hot-path insert for walk kernels: no return value, no exact `len`
    /// maintenance while dense. In dense mode this is a single
    /// unconditional OR (branch-free); in sparse mode a branchless
    /// conditional append. Callers must run [`Frontier::finalize_len`]
    /// after the insert burst and before reading `len`.
    #[inline]
    pub(crate) fn insert_quiet(&mut self, v: Vertex) {
        debug_assert!((v as usize) < self.n, "vertex {v} out of range");
        let i = v as usize;
        let word = &mut self.words[i >> 6];
        let bit = 1u64 << (i & 63);
        if self.dense {
            *word |= bit;
        } else {
            // Branchless "push if new": unconditional store to the next
            // slot, advance only when the bit was actually fresh. A tested
            // push mispredicts ~50% at high occupancy; this never does.
            let newly = (*word & bit == 0) as usize;
            *word |= bit;
            debug_assert!(self.len < self.buf.capacity());
            unsafe {
                // SAFETY: `buf` is allocated with capacity `threshold` and
                // `len < threshold` in sparse mode (the switch below fires
                // the moment `len` reaches it).
                *self.buf.as_mut_ptr().add(self.len) = v;
            }
            self.len += newly;
            if self.len >= self.threshold {
                self.dense = true;
            }
        }
    }

    /// Restore the exact `len` after a burst of
    /// [`Frontier::insert_quiet`] calls: a word-parallel popcount in dense
    /// mode, a no-op in sparse mode (where `len` stays exact).
    #[inline]
    pub(crate) fn finalize_len(&mut self) {
        if self.dense {
            self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
        } else {
            // SAFETY: elements 0..len were initialized by insert_quiet /
            // insert before len advanced past them.
            unsafe { self.buf.set_len(self.len) }
        }
    }

    /// Remove all members and return to the sparse representation.
    /// Per-member bit clears while sparse; O(n/64) word fill once dense —
    /// which is still O(dirty): the dense switch only fires at
    /// `len ≥ max(8, n/64)`, so a dense frontier has at least as many
    /// members as the bitset has words. Trial-scratch reuse therefore
    /// never pays more to clear than the run paid to fill.
    pub fn clear(&mut self) {
        if self.dense {
            self.words.fill(0);
            self.dense = false;
        } else {
            for &v in &self.buf {
                self.words[v as usize >> 6] &= !(1u64 << (v as usize & 63));
            }
        }
        self.buf.clear();
        self.len = 0;
    }

    /// The bitset words. In dense mode this is the whole story; in sparse
    /// mode the same bits are set but [`Frontier::as_sparse`] is the
    /// cheaper traversal.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// The members in insertion order while sparse, `None` once dense.
    pub fn as_sparse(&self) -> Option<&[Vertex]> {
        (!self.dense).then_some(self.buf.as_slice())
    }

    /// Visit every member: insertion order while sparse, ascending vertex
    /// order once dense. Deterministic in both modes.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(Vertex)) {
        if self.dense {
            for (w, &bits) in self.words.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    f(((w << 6) + b as usize) as Vertex);
                    bits &= bits - 1;
                }
            }
        } else {
            for &v in &self.buf {
                f(v);
            }
        }
    }

    /// Materialize the members as a sorted vector (tests and table code;
    /// hot paths use [`Frontier::for_each`] or [`Frontier::as_words`]).
    pub fn to_sorted_vec(&self) -> Vec<Vertex> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|v| out.push(v));
        out.sort_unstable();
        out
    }

    /// Union another frontier into this one; returns how many members were
    /// newly added. Word-parallel when this side is dense.
    pub fn union_from(&mut self, other: &Frontier) -> usize {
        assert_eq!(self.n, other.n, "frontier id spaces must match");
        let before = self.len;
        if self.dense {
            let mut added = 0u32;
            for (mine, &w) in self.words.iter_mut().zip(&other.words) {
                added += (w & !*mine).count_ones();
                *mine |= w;
            }
            self.len += added as usize;
        } else {
            other.for_each(|v| {
                self.insert(v);
            });
        }
        self.len - before
    }
}

/// Reinitialize a frontier-pair walk state (cobra, scheduled cobra, SIS)
/// for a new run from `start`: O(dirty) clears of both frontiers, the
/// start re-seeded, the occupied slice rebuilt — exactly the observable
/// state `spawn_typed` produces. One shared body so the three
/// `respawn_typed` impls cannot drift from the spawn shape independently.
/// Callers have already checked the capacity matches the graph.
pub(crate) fn reinit_frontier_run(
    cur: &mut Frontier,
    next: &mut Frontier,
    occ: &mut Vec<Vertex>,
    start: Vertex,
) {
    cur.clear();
    cur.insert(start);
    next.clear();
    occ.clear();
    occ.push(start);
}

/// Monotone coverage bitmask with popcount-tracked cardinality and an
/// epoch-stamped, O(dirty-words) [`CoverageMask::reset`].
///
/// The cover-time drivers union each round's frontier into this mask and
/// stop at full coverage. Unlike [`Frontier`] it never shrinks and is
/// usually a constant fraction of `n` for most of a run, so it is dense
/// from the start.
///
/// **Reset strategy.** The batched trial engine reuses one mask across a
/// worker's whole chunk of trials, so clearing must not cost O(n/64)
/// words per trial when a trial touched only a few (short hitting runs,
/// early-extinction SIS). Each word therefore carries an epoch stamp: a
/// word's bits are valid only while its stamp matches the mask's current
/// epoch, and [`CoverageMask::reset`] just bumps the epoch — O(1), no
/// re-zeroing. Writers lazily refresh a stale word (one predictable
/// compare per touched word) before OR-ing into it; on the extremely rare
/// `u32` epoch wrap, everything is re-zeroed once for real.
#[derive(Clone, Debug)]
pub struct CoverageMask {
    words: Vec<u64>,
    /// Per-word epoch stamps; `words[w]` is garbage unless
    /// `word_epoch[w] == epoch`.
    word_epoch: Vec<u32>,
    /// Current epoch; 0 is reserved so freshly built stamps read as stale.
    epoch: u32,
    n: usize,
    covered: usize,
}

impl CoverageMask {
    /// An all-uncovered mask over `0..n`.
    pub fn new(n: usize) -> Self {
        CoverageMask {
            words: vec![0; word_count(n)],
            word_epoch: vec![0; word_count(n)],
            epoch: 1,
            n,
            covered: 0,
        }
    }

    /// Size of the id space this mask covers.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Number of covered vertices.
    #[inline]
    pub fn count(&self) -> usize {
        self.covered
    }

    /// Whether all `n` vertices are covered.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.covered == self.n
    }

    /// Un-cover everything in O(1): bump the epoch so every word reads as
    /// stale. Actual zeroing happens lazily, only for words the next run
    /// touches (O(dirty words) total), except at `u32` epoch wraparound
    /// where one genuine re-zero keeps stale stamps from aliasing.
    pub fn reset(&mut self) {
        self.covered = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.words.fill(0);
            self.word_epoch.fill(0);
            self.epoch = 1;
        }
    }

    /// The current value of word `w` (0 if its stamp is stale).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        if self.word_epoch[w] == self.epoch {
            self.words[w]
        } else {
            0
        }
    }

    /// Mutable access to word `w`, refreshing it to the current epoch
    /// (zeroing stale contents) first.
    #[inline]
    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if self.word_epoch[w] != self.epoch {
            self.word_epoch[w] = self.epoch;
            self.words[w] = 0;
        }
        &mut self.words[w]
    }

    /// Whether `v` is covered.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let i = v as usize;
        self.word(i >> 6) & (1u64 << (i & 63)) != 0
    }

    /// Mark one vertex; returns `true` if newly covered. One predictable
    /// stamp check, otherwise branchless.
    #[inline]
    pub fn mark(&mut self, v: Vertex) -> bool {
        let i = v as usize;
        let word = self.word_mut(i >> 6);
        let bit = 1u64 << (i & 63);
        let newly = *word & bit == 0;
        *word |= bit;
        self.covered += newly as usize;
        newly
    }

    /// Mark every vertex in `vs` (duplicates welcome); returns how many
    /// were newly covered.
    pub fn mark_slice(&mut self, vs: &[Vertex]) -> usize {
        let before = self.covered;
        for &v in vs {
            self.mark(v);
        }
        self.covered - before
    }

    /// Union a frontier in; word-parallel with popcount deltas when the
    /// frontier is dense, per-member branchless marks while it is sparse.
    /// Returns how many vertices were newly covered.
    pub fn union_frontier(&mut self, f: &Frontier) -> usize {
        assert_eq!(self.n, f.capacity(), "id spaces must match");
        let before = self.covered;
        match f.as_sparse() {
            Some(members) => {
                for &v in members {
                    self.mark(v);
                }
            }
            None => {
                let epoch = self.epoch;
                let mut added = 0u32;
                for ((mine, stamp), &w) in self
                    .words
                    .iter_mut()
                    .zip(self.word_epoch.iter_mut())
                    .zip(f.as_words())
                {
                    let cur = if *stamp == epoch { *mine } else { 0 };
                    added += (w & !cur).count_ones();
                    *mine = cur | w;
                    *stamp = epoch;
                }
                self.covered += added as usize;
            }
        }
        self.covered - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn starts_sparse_and_switches_at_threshold() {
        let n = 64 * DENSE_DIVISOR; // threshold = 64
        let mut f = Frontier::new(n);
        assert_eq!(f.dense_threshold(), 64);
        for v in 0..63u32 {
            assert!(f.insert(2 * v));
            assert!(!f.is_dense(), "must stay sparse below the threshold");
        }
        assert!(f.insert(4000));
        assert!(f.is_dense(), "64th member must trip the switch");
        assert_eq!(f.len(), 64);
        // Same members visible on both sides of the switch.
        for v in 0..63u32 {
            assert!(f.contains(2 * v));
        }
        assert!(f.contains(4000));
        assert!(!f.contains(1));
    }

    #[test]
    fn small_id_spaces_use_min_threshold() {
        let f = Frontier::new(100);
        assert_eq!(f.dense_threshold(), MIN_THRESHOLD);
    }

    #[test]
    fn insert_dedups_in_both_representations() {
        let mut f = Frontier::new(1024);
        assert!(f.insert(5));
        assert!(!f.insert(5));
        for v in 0..40u32 {
            f.insert(v);
        }
        assert!(f.is_dense());
        assert!(!f.insert(5));
        assert_eq!(f.len(), 40);
    }

    #[test]
    fn clear_resets_to_sparse() {
        let mut f = Frontier::new(256);
        for v in 0..200u32 {
            f.insert(v);
        }
        assert!(f.is_dense());
        f.clear();
        assert!(f.is_empty());
        assert!(!f.is_dense());
        assert!(!f.contains(0));
        assert!(f.insert(0));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn quiet_inserts_match_exact_inserts() {
        // Drive one frontier with the hot-path API and one with the exact
        // API through the sparse→dense switch; they must agree.
        let vs: Vec<u32> = (0..400u32).map(|i| (i * 37) % 300).collect();
        let mut quiet = Frontier::new(300);
        let mut exact = Frontier::new(300);
        for &v in &vs {
            quiet.insert_quiet(v);
            exact.insert(v);
        }
        quiet.finalize_len();
        assert_eq!(quiet.len(), exact.len());
        assert_eq!(quiet.to_sorted_vec(), exact.to_sorted_vec());
    }

    #[test]
    fn quiet_inserts_stay_exact_while_sparse() {
        let mut f = Frontier::new(4096); // threshold 64
        f.insert_quiet(7);
        f.insert_quiet(7);
        f.insert_quiet(9);
        f.finalize_len();
        assert_eq!(f.len(), 2);
        assert!(!f.is_dense());
        assert_eq!(f.as_sparse(), Some(&[7, 9][..]));
    }

    #[test]
    fn sparse_iteration_is_insertion_order_dense_is_ascending() {
        let mut f = Frontier::new(4096);
        for &v in &[77u32, 3, 4090] {
            f.insert(v);
        }
        assert_eq!(f.as_sparse(), Some(&[77, 3, 4090][..]));
        assert_eq!(f.to_sorted_vec(), vec![3, 77, 4090]);
        for v in 1000..1100u32 {
            f.insert(v);
        }
        assert!(f.is_dense());
        let mut got = Vec::new();
        f.for_each(|v| got.push(v));
        let mut expect: Vec<u32> = vec![77, 3, 4090];
        expect.extend(1000..1100u32);
        expect.sort_unstable();
        assert_eq!(got, expect, "dense iteration must be ascending");
    }

    #[test]
    fn union_from_counts_new_members() {
        let mut a = Frontier::new(512);
        let mut b = Frontier::new(512);
        for v in 0..100u32 {
            a.insert(v);
        }
        for v in 50..150u32 {
            b.insert(v);
        }
        assert_eq!(a.union_from(&b), 50);
        assert_eq!(a.len(), 150);
        assert_eq!(a.union_from(&b), 0);
    }

    #[test]
    fn coverage_mask_counts_and_completes() {
        let mut c = CoverageMask::new(70);
        assert_eq!(c.mark_slice(&[0, 1, 1, 69]), 3);
        assert_eq!(c.count(), 3);
        assert!(c.contains(69));
        assert!(!c.contains(2));
        for v in 0..70u32 {
            c.mark(v);
        }
        assert!(c.is_complete());
    }

    #[test]
    fn coverage_reset_uncovers_everything() {
        let mut c = CoverageMask::new(200);
        c.mark_slice(&[0, 5, 64, 199]);
        assert_eq!(c.count(), 4);
        c.reset();
        assert_eq!(c.count(), 0);
        for v in [0u32, 5, 64, 199] {
            assert!(!c.contains(v), "vertex {v} survived reset");
        }
        // Stale words must behave as zero for every operation.
        assert_eq!(c.mark_slice(&[5, 5, 64]), 2);
        let mut f = Frontier::new(200);
        for v in 0..200u32 {
            f.insert(v);
        }
        assert!(f.is_dense());
        assert_eq!(c.union_frontier(&f), 198);
        assert!(c.is_complete());
    }

    #[test]
    fn coverage_reset_interleaves_with_runs() {
        // Many reset cycles with different touch patterns: lazily-refreshed
        // words must never leak bits from a previous epoch.
        let mut c = CoverageMask::new(320);
        for round in 0..50u32 {
            let stride = (round % 7 + 1) as usize;
            let mut marked = Vec::new();
            for v in (0..320).step_by(stride) {
                c.mark(v as u32);
                marked.push(v as u32);
            }
            assert_eq!(c.count(), marked.len());
            for v in 0..320u32 {
                assert_eq!(c.contains(v), marked.contains(&v), "round {round}, v {v}");
            }
            c.reset();
        }
    }

    #[test]
    fn coverage_epoch_wrap_is_safe() {
        let mut c = CoverageMask::new(70);
        c.mark(3);
        c.epoch = u32::MAX;
        // Re-stamp under the pinned epoch, then force the wrap.
        c.reset();
        assert_eq!(c.epoch, 1, "wrap must land back on epoch 1");
        assert!(!c.contains(3));
        assert!(c.mark(3));
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn coverage_epoch_wrap_rezeros_every_stale_word() {
        // The wrap hazard is *aliasing*: after wrapping, the epoch counter
        // lands back on 1, so any word whose stamp still says 1 from the
        // mask's first life would read its ancient bits as live coverage —
        // unless the wrap genuinely re-zeroes words and stamps. Build
        // exactly that trap: dirty words at epoch 1, advance the epoch
        // without touching them (their stamps stay 1), then wrap.
        let mut c = CoverageMask::new(256);
        c.mark(0); // word 0 stamped at epoch 1
        c.mark(64); // word 1 stamped at epoch 1
        c.mark(128); // word 2 stamped at epoch 1
        c.reset(); // epoch 2
        c.mark(5); // word 0 re-stamped at epoch 2; words 1-2 keep stamp 1
        c.epoch = u32::MAX; // pin to the wrap boundary
        c.mark(200); // word 3 stamped at u32::MAX
        assert!(c.contains(200));
        assert_eq!(c.count(), 2);

        c.reset(); // wraps: the one genuine full re-zero
        assert_eq!(c.epoch, 1, "wrap must land back on epoch 1");
        assert_eq!(c.count(), 0);
        assert!(
            c.words.iter().all(|&w| w == 0),
            "wrap must physically zero every word"
        );
        assert!(
            c.word_epoch.iter().all(|&e| e == 0),
            "wrap must reset every stamp below the new epoch"
        );
        // The aliasing trap: words 1-2 were stamped 1 before the wrap and
        // the epoch is 1 again — they must read as uncovered regardless.
        for v in [0u32, 5, 64, 128, 200, 255] {
            assert!(!c.contains(v), "vertex {v} leaked through the wrap");
        }

        // Lazy refresh after the wrap yields correctly zeroed words for
        // both write paths.
        assert!(c.mark(64));
        assert_eq!(c.mark_slice(&[64, 65, 200]), 2);
        assert_eq!(c.count(), 3);
        let mut f = Frontier::new(256);
        for v in 0..256u32 {
            f.insert(v);
        }
        assert!(f.is_dense());
        assert_eq!(c.union_frontier(&f), 253);
        assert!(c.is_complete());

        // And the next (non-wrapping) reset behaves normally again.
        c.reset();
        assert_eq!(c.epoch, 2);
        assert_eq!(c.count(), 0);
        assert!(!c.contains(64));
    }

    #[test]
    fn coverage_union_matches_mark_slice() {
        let mut f = Frontier::new(300);
        for v in (0..300u32).step_by(3) {
            f.insert(v);
        }
        assert!(f.is_dense());
        let mut via_union = CoverageMask::new(300);
        via_union.mark(0);
        via_union.mark(1);
        let mut via_marks = via_union.clone();
        assert_eq!(
            via_union.union_frontier(&f),
            via_marks.mark_slice(&f.to_sorted_vec())
        );
        assert_eq!(via_union.count(), via_marks.count());
        for v in 0..300u32 {
            assert_eq!(via_union.contains(v), via_marks.contains(v));
        }
    }

    /// Random op sequence for the oracle tests: insert (exact or quiet),
    /// clear, or union with a random batch.
    #[derive(Clone, Debug)]
    enum Op {
        Insert(u32),
        QuietBurst(Vec<u32>),
        Clear,
        Union(Vec<u32>),
    }

    fn arb_ops(n: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
        // Weighted mix (the vendored proptest has no `prop_oneof`):
        // selector 0 → clear, 1–2 → union, 3–4 → quiet burst, 5+ → insert.
        proptest::collection::vec(
            (0u8..11, 0..n, proptest::collection::vec(0..n, 0..40)).prop_map(|(sel, v, vs)| {
                match sel {
                    0 => Op::Clear,
                    1 | 2 => Op::Union(vs),
                    3 | 4 => Op::QuietBurst(vs),
                    _ => Op::Insert(v),
                }
            }),
            1..len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The hybrid frontier agrees with a `HashSet` oracle under random
        /// insert/union/clear sequences. `n = 600` with threshold
        /// `max(8, 600/64) = 9` makes the sparse↔dense switch and the
        /// post-clear re-sparsification both routine events.
        #[test]
        fn frontier_matches_hashset_oracle(ops in arb_ops(600, 120)) {
            let n = 600usize;
            let mut f = Frontier::new(n);
            let mut oracle: HashSet<u32> = HashSet::new();
            for op in ops {
                match op {
                    Op::Insert(v) => {
                        prop_assert_eq!(f.insert(v), oracle.insert(v));
                    }
                    Op::QuietBurst(vs) => {
                        for v in vs {
                            f.insert_quiet(v);
                            oracle.insert(v);
                        }
                        f.finalize_len();
                    }
                    Op::Clear => {
                        f.clear();
                        oracle.clear();
                        prop_assert!(!f.is_dense(), "clear must re-sparsify");
                    }
                    Op::Union(vs) => {
                        let mut other = Frontier::new(n);
                        let mut newly = 0;
                        for v in vs {
                            other.insert(v);
                            if oracle.insert(v) {
                                newly += 1;
                            }
                        }
                        prop_assert_eq!(f.union_from(&other), newly);
                    }
                }
                prop_assert_eq!(f.len(), oracle.len());
            }
            let mut expect: Vec<u32> = oracle.iter().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(f.to_sorted_vec(), expect);
            for v in 0..n as u32 {
                prop_assert_eq!(f.contains(v), oracle.contains(&v));
            }
        }

        /// The coverage mask agrees with a `HashSet` oracle when fed a mix
        /// of slice marks, frontier unions (sparse and dense), and epoch
        /// resets (every fifth batch, exercising lazy word refresh).
        #[test]
        fn coverage_matches_hashset_oracle(batches in proptest::collection::vec(
            proptest::collection::vec(0u32..400, 0..60), 1..20))
        {
            let n = 400usize;
            let mut mask = CoverageMask::new(n);
            let mut oracle: HashSet<u32> = HashSet::new();
            for (i, batch) in batches.iter().enumerate() {
                if i % 5 == 4 {
                    mask.reset();
                    oracle.clear();
                }
                let newly_oracle = batch.iter().filter(|&&v| oracle.insert(v)).count();
                if i % 2 == 0 {
                    prop_assert_eq!(mask.mark_slice(batch), newly_oracle);
                } else {
                    let mut f = Frontier::new(n);
                    for &v in batch {
                        f.insert(v);
                    }
                    prop_assert_eq!(mask.union_frontier(&f), newly_oracle);
                }
                prop_assert_eq!(mask.count(), oracle.len());
            }
            for v in 0..n as u32 {
                prop_assert_eq!(mask.contains(v), oracle.contains(&v));
            }
        }
    }
}
