//! `k` independent parallel random walks (Alon et al., Elsässer–Sauerwald;
//! paper §1.2 related work).
//!
//! Unlike the cobra walk, the number of walkers is a fixed parameter and
//! walkers neither branch nor coalesce. The tensor-product machinery that
//! makes parallel walks analyzable is exactly what breaks for cobra walks
//! (§1.2), which is why the paper treats them as a distinct baseline.

use crate::process::{random_neighbor, Process, ProcessState};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Specification of `k` independent simple random walks, all starting at
/// the same vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelWalks {
    walkers: usize,
}

impl ParallelWalks {
    /// `walkers ≥ 1` independent walkers.
    pub fn new(walkers: usize) -> Self {
        assert!(walkers >= 1, "need at least one walker");
        ParallelWalks { walkers }
    }

    /// Number of walkers.
    pub fn walkers(&self) -> usize {
        self.walkers
    }
}

impl Process for ParallelWalks {
    fn name(&self) -> String {
        format!("parallel-rw(k={})", self.walkers)
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        Box::new(ParallelState {
            positions: vec![start; self.walkers],
        })
    }
}

struct ParallelState {
    positions: Vec<Vertex>,
}

impl ProcessState for ParallelState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        for pos in &mut self.positions {
            *pos = random_neighbor(g, *pos, rng);
        }
    }

    fn occupied(&self) -> &[Vertex] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walker_count_is_invariant() {
        let g = classic::cycle(11).unwrap();
        let spec = ParallelWalks::new(6);
        assert_eq!(spec.walkers(), 6);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            st.step(&g, &mut rng);
            assert_eq!(st.occupied().len(), 6);
        }
    }

    #[test]
    fn walkers_move_along_edges() {
        let g = classic::path(8).unwrap();
        let spec = ParallelWalks::new(3);
        let mut st = spec.spawn(&g, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = st.occupied().to_vec();
        for _ in 0..50 {
            st.step(&g, &mut rng);
            for (i, &cur) in st.occupied().iter().enumerate() {
                assert!(g.has_edge(prev[i], cur));
            }
            prev = st.occupied().to_vec();
        }
    }

    #[test]
    fn walkers_eventually_diverge() {
        let g = classic::complete(10).unwrap();
        let spec = ParallelWalks::new(4);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(3);
        st.step(&g, &mut rng);
        let distinct: std::collections::HashSet<_> = st.occupied().iter().collect();
        assert!(distinct.len() > 1, "4 walkers on K10 should scatter");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_walkers() {
        ParallelWalks::new(0);
    }

    #[test]
    fn name_contains_count() {
        assert_eq!(ParallelWalks::new(5).name(), "parallel-rw(k=5)");
    }
}
