//! Simple (and lazy) random walks — the baseline process.
//!
//! Feige's classical bounds put the cover time of the simple walk between
//! Θ(n log n) and Θ(n³) (§1.2); every experiment that claims a cobra-walk
//! speedup measures against this process.

use crate::process::{
    bernoulli, ImplicitDraw, NeighborDraw, Process, ProcessState, StateView, TypedProcess,
    TypedState,
};
use cobra_graph::{Graph, ImplicitGraph, Vertex};
use rand::Rng;

/// Specification of a simple random walk, optionally lazy.
///
/// A lazy walk stays put with probability `laziness` each round and
/// otherwise moves to a uniformly random neighbor. `laziness = 0` is the
/// standard simple random walk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimpleWalk {
    laziness: f64,
}

impl SimpleWalk {
    /// The standard (non-lazy) simple random walk.
    pub fn new() -> Self {
        SimpleWalk { laziness: 0.0 }
    }

    /// A lazy walk holding with probability `laziness ∈ [0, 1)`.
    pub fn lazy(laziness: f64) -> Self {
        assert!((0.0..1.0).contains(&laziness), "laziness must be in [0, 1)");
        SimpleWalk { laziness }
    }

    /// The hold probability.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }
}

impl Default for SimpleWalk {
    fn default() -> Self {
        SimpleWalk::new()
    }
}

impl Process for SimpleWalk {
    fn name(&self) -> String {
        if self.laziness == 0.0 {
            "simple-rw".to_string()
        } else {
            format!("lazy-rw({})", self.laziness)
        }
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl<G: ImplicitGraph + ?Sized> TypedProcess<G> for SimpleWalk {
    type State = SimpleState;

    fn spawn_typed(&self, g: &G, start: Vertex) -> SimpleState {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        SimpleState {
            laziness: self.laziness,
            pos: [start],
        }
    }

    fn lane_branching(&self) -> Option<u32> {
        // The non-lazy walk is the 1-cobra walk; a lazy walk's hold coin
        // has no lane-parallel form, so it stays on the per-trial engines.
        (self.laziness == 0.0).then_some(1)
    }
}

/// Mutable state of a running simple walk: one pebble position.
pub struct SimpleState {
    laziness: f64,
    pos: [Vertex; 1],
}

impl SimpleState {
    #[inline]
    fn advance<G: ?Sized, D: NeighborDraw<G>, R: Rng + ?Sized>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
    ) {
        if self.laziness > 0.0 && bernoulli(self.laziness, rng) {
            return;
        }
        self.pos[0] = draw.draw_one(g, self.pos[0], rng);
    }
}

impl StateView for SimpleState {
    fn occupied(&self) -> &[Vertex] {
        &self.pos
    }
}

impl<G: ImplicitGraph + ?Sized> TypedState<G> for SimpleState {
    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        self.advance(g, &ImplicitDraw, rng);
    }

    fn step_sampled<D: NeighborDraw<G>, R: Rng + ?Sized>(&mut self, g: &G, draw: &D, rng: &mut R) {
        self.advance(g, draw, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names() {
        assert_eq!(SimpleWalk::new().name(), "simple-rw");
        assert_eq!(SimpleWalk::lazy(0.5).name(), "lazy-rw(0.5)");
        assert_eq!(SimpleWalk::default(), SimpleWalk::new());
    }

    #[test]
    #[should_panic(expected = "laziness")]
    fn rejects_laziness_one() {
        SimpleWalk::lazy(1.0);
    }

    #[test]
    fn walk_moves_along_edges() {
        let g = classic::cycle(7).unwrap();
        let spec = SimpleWalk::new();
        let mut st = spec.spawn(&g, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = 3;
        for _ in 0..100 {
            st.step(&g, &mut rng);
            let cur = st.occupied()[0];
            assert!(g.has_edge(prev, cur), "{prev} -> {cur} not an edge");
            prev = cur;
        }
    }

    #[test]
    fn lazy_walk_sometimes_holds() {
        let g = classic::cycle(7).unwrap();
        let spec = SimpleWalk::lazy(0.5);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut holds = 0;
        let mut prev = 0;
        let steps = 400;
        for _ in 0..steps {
            st.step(&g, &mut rng);
            let cur = st.occupied()[0];
            if cur == prev {
                holds += 1;
            }
            prev = cur;
        }
        let frac = holds as f64 / steps as f64;
        assert!((frac - 0.5).abs() < 0.1, "hold fraction {frac}");
    }

    #[test]
    fn non_lazy_walk_never_holds_on_triangle_free_graph() {
        let g = classic::cycle(8).unwrap();
        let spec = SimpleWalk::new();
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = 0;
        for _ in 0..100 {
            st.step(&g, &mut rng);
            let cur = st.occupied()[0];
            assert_ne!(cur, prev);
            prev = cur;
        }
    }

    #[test]
    fn support_is_always_one() {
        let g = classic::star(6).unwrap();
        let spec = SimpleWalk::new();
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            st.step(&g, &mut rng);
            assert_eq!(st.support_size(), 1);
        }
    }
}
