//! Push / pull / push-pull rumor spreading (Feige, Peleg, Raghavan, Upfal;
//! paper §1.2).
//!
//! The push process completes on every undirected graph in O(n log n)
//! rounds w.h.p., and the paper notes this bound has been *conjectured*
//! for cobra walks (§1.2, §6). Experiment E11 compares both on the star
//! graph, where the conjectured Ω(n log n) lower bound for cobra walks is
//! attained.
//!
//! Unlike walks, gossip states are monotone: an informed vertex stays
//! informed. `occupied()` reports only the vertices informed in the last
//! round (plus the source initially), so the driver's union-over-time
//! coverage matches the usual "all vertices informed" completion time.

use crate::process::{random_neighbor, Process, ProcessState, TypedProcess, TypedState};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Which gossip exchange directions are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Push,
    Pull,
    PushPull,
}

/// Push gossip: each informed vertex sends the rumor to a uniformly random
/// neighbor each round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushGossip;

/// Pull gossip: each uninformed vertex polls a uniformly random neighbor
/// and becomes informed if that neighbor knows the rumor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PullGossip;

/// Push–pull gossip: both exchanges every round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PushPullGossip;

impl Process for PushGossip {
    fn name(&self) -> String {
        "gossip-push".into()
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for PushGossip {
    type State = GossipState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> GossipState {
        GossipState::new(g, start, Mode::Push)
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut GossipState) {
        state.reinit(g, start, Mode::Push);
    }
}

impl Process for PullGossip {
    fn name(&self) -> String {
        "gossip-pull".into()
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for PullGossip {
    type State = GossipState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> GossipState {
        GossipState::new(g, start, Mode::Pull)
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut GossipState) {
        state.reinit(g, start, Mode::Pull);
    }
}

impl Process for PushPullGossip {
    fn name(&self) -> String {
        "gossip-pushpull".into()
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for PushPullGossip {
    type State = GossipState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> GossipState {
        GossipState::new(g, start, Mode::PushPull)
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut GossipState) {
        state.reinit(g, start, Mode::PushPull);
    }
}

const NEVER: u32 = u32::MAX;

/// Mutable state of a running gossip process (any exchange mode).
pub struct GossipState {
    mode: Mode,
    /// Round at which each vertex became informed (`NEVER` if uninformed).
    informed_at: Vec<u32>,
    /// All informed vertices, in discovery order. `fresh_from` indexes the
    /// suffix informed by the most recent round.
    informed_list: Vec<Vertex>,
    fresh_from: usize,
    round: u32,
}

impl GossipState {
    fn new(g: &Graph, start: Vertex, mode: Mode) -> Self {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let mut informed_at = vec![NEVER; g.num_vertices()];
        informed_at[start as usize] = 0;
        GossipState {
            mode,
            informed_at,
            informed_list: vec![start],
            fresh_from: 0,
            round: 0,
        }
    }

    /// Reinitialize for a new run: un-inform exactly the vertices that
    /// were informed (O(dirty), no reallocation, no O(n) refill), then
    /// re-seed `start`. Shared by the three gossip modes' `respawn_typed`.
    fn reinit(&mut self, g: &Graph, start: Vertex, mode: Mode) {
        if self.informed_at.len() != g.num_vertices() {
            *self = GossipState::new(g, start, mode);
            return;
        }
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        for &v in &self.informed_list {
            self.informed_at[v as usize] = NEVER;
        }
        self.informed_list.clear();
        self.informed_at[start as usize] = 0;
        self.informed_list.push(start);
        self.mode = mode;
        self.fresh_from = 0;
        self.round = 0;
    }

    /// Number of informed vertices.
    fn informed_count(&self) -> usize {
        self.informed_list.len()
    }
}

impl TypedState for GossipState {
    fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        let already = self.informed_list.len();
        self.fresh_from = already;
        self.round += 1;
        let round = self.round;

        if matches!(self.mode, Mode::Push | Mode::PushPull) {
            // Every vertex informed *before* this round pushes once.
            for i in 0..already {
                let v = self.informed_list[i];
                let u = random_neighbor(g, v, rng);
                if self.informed_at[u as usize] == NEVER {
                    self.informed_at[u as usize] = round;
                    self.informed_list.push(u);
                }
            }
        }
        if matches!(self.mode, Mode::Pull | Mode::PushPull) {
            // Every currently-uninformed vertex pulls; informs itself if the
            // polled neighbor was informed before this round. (Standard
            // synchronous semantics: exchanges use the pre-round state.)
            let n = g.num_vertices();
            for v in 0..n as u32 {
                if self.informed_at[v as usize] != NEVER {
                    continue;
                }
                let u = random_neighbor(g, v, rng);
                if self.informed_at[u as usize] < round {
                    self.informed_at[v as usize] = round;
                    self.informed_list.push(v);
                }
            }
        }
    }
}

impl crate::process::StateView for GossipState {
    fn occupied(&self) -> &[Vertex] {
        &self.informed_list[self.fresh_from..]
    }

    fn support_size(&self) -> usize {
        self.informed_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn informed_after(proc_: &dyn Process, g: &Graph, steps: usize, seed: u64) -> usize {
        let mut st = proc_.spawn(g, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            st.step(g, &mut rng);
        }
        st.support_size()
    }

    #[test]
    fn initial_state() {
        let g = classic::complete(5).unwrap();
        let st = PushGossip.spawn(&g, 0);
        assert_eq!(st.occupied(), &[0]);
        assert_eq!(st.support_size(), 1);
    }

    #[test]
    fn informed_set_is_monotone() {
        let g = classic::cycle(12).unwrap();
        let mut st = PushGossip.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = 1;
        for _ in 0..100 {
            st.step(&g, &mut rng);
            let cur = st.support_size();
            assert!(cur >= prev);
            prev = cur;
        }
        assert_eq!(prev, 12, "cycle must be fully informed eventually");
    }

    #[test]
    fn push_at_most_doubles() {
        let g = classic::complete(64).unwrap();
        let mut st = PushGossip.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = 1;
        for _ in 0..30 {
            st.step(&g, &mut rng);
            let cur = st.support_size();
            assert!(cur <= 2 * prev, "push informed {cur} > 2×{prev}");
            prev = cur;
        }
    }

    #[test]
    fn occupied_reports_only_fresh_vertices() {
        let g = classic::complete(32).unwrap();
        let mut st = PushGossip.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        seen.insert(0u32);
        for _ in 0..40 {
            st.step(&g, &mut rng);
            for &v in st.occupied() {
                assert!(seen.insert(v), "vertex {v} reported fresh twice");
            }
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn pull_works_on_complete_graph() {
        let g = classic::complete(32).unwrap();
        let informed = informed_after(&PullGossip, &g, 40, 4);
        assert_eq!(informed, 32);
    }

    #[test]
    fn pushpull_is_at_least_as_fast_as_push_on_star() {
        // On the star, push from the hub informs one leaf per round, but
        // pull lets every leaf grab the rumor in one round.
        let g = classic::star(50).unwrap();
        let pp = informed_after(&PushPullGossip, &g, 2, 5);
        assert_eq!(pp, 50, "push-pull on a star finishes in 2 rounds");
        let p = informed_after(&PushGossip, &g, 2, 5);
        assert!(p < 50, "push alone cannot finish a 50-star in 2 rounds");
    }

    #[test]
    fn names() {
        assert_eq!(PushGossip.name(), "gossip-push");
        assert_eq!(PullGossip.name(), "gossip-pull");
        assert_eq!(PushPullGossip.name(), "gossip-pushpull");
    }
}
