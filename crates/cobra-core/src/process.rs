//! The process abstraction shared by every walk variant.
//!
//! A [`Process`] is an immutable *specification* (e.g. "the 2-cobra walk");
//! [`Process::spawn`] creates the mutable per-run [`ProcessState`]. The
//! split exists so the Monte-Carlo engine can share one specification
//! across rayon worker threads while each trial owns its own state.

use cobra_graph::{Graph, ImplicitGraph, Vertex};
use rand::Rng;

/// An immutable specification of a walk process on a graph.
pub trait Process: Sync {
    /// Human-readable name used in result tables (e.g. `"cobra(k=2)"`).
    fn name(&self) -> String;

    /// Create a fresh run of the process with its initial pebble(s)/token(s)
    /// at `start`.
    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState>;
}

/// The mutable state of one run of a process.
///
/// The driver contract is:
///
/// 1. immediately after [`Process::spawn`], [`ProcessState::occupied`]
///    describes the initial configuration (typically `[start]`);
/// 2. each call to [`ProcessState::step`] advances the process one round;
/// 3. after each step, [`ProcessState::occupied`] lists the vertices that
///    are *active* in that round (duplicates allowed — e.g. Walt reports
///    one entry per pebble). The driver unions these over time to compute
///    coverage, matching the paper's definition of the cover time as the
///    first `T` with `⋃_{t ≤ T} S_t = V`.
pub trait ProcessState {
    /// Advance one round.
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng);

    /// Vertices occupied after the last step (or the initial configuration
    /// before any step). May contain duplicates.
    fn occupied(&self) -> &[Vertex];

    /// Number of tokens the process currently maintains; used by
    /// experiments that track active-set growth (e.g. the exponential
    /// growth phase on expanders). Defaults to `occupied().len()`.
    fn support_size(&self) -> usize {
        self.occupied().len()
    }
}

/// Blanket impl so `&T` specifications can be passed around cheaply.
impl<T: Process + ?Sized> Process for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        (**self).spawn(g, start)
    }
}

/// A [`Process`] whose per-run state has a concrete (non-boxed) type.
///
/// This is the monomorphized fast path: [`TypedProcess::spawn_typed`]
/// returns the state by value, so drivers generic over `P: TypedProcess`
/// step it with zero virtual dispatch — the walk kernel, the RNG, and the
/// coverage bookkeeping all inline into one loop. The dyn API stays
/// available for heterogeneous experiment tables: [`Process::spawn`] for
/// these types boxes the *same* state struct, so both routes execute
/// identical code and consume identical RNG streams (the seed-equivalence
/// harness in `tests/engine_equivalence.rs` pins this bit-for-bit).
pub trait TypedProcess<G: ImplicitGraph + ?Sized = Graph>: Process {
    /// The concrete per-run state.
    type State: TypedState<G> + 'static;

    /// Create a fresh, unboxed run of the process (fast-path analogue of
    /// [`Process::spawn`]).
    fn spawn_typed(&self, g: &G, start: Vertex) -> Self::State;

    /// Reinitialize an existing state for a new run from `start`,
    /// producing a state observationally identical to
    /// [`TypedProcess::spawn_typed`] — same configuration, same RNG
    /// consumption from here on. The default rebuilds from scratch;
    /// processes override it to reuse the state's buffers (O(dirty)
    /// clears, zero heap traffic), which is what makes the batched trial
    /// engine ([`crate::TrialScratch`]) allocation-free after warm-up.
    fn respawn_typed(&self, g: &G, start: Vertex, state: &mut Self::State) {
        *state = self.spawn_typed(g, start);
    }

    /// `Some(k)` when one round of this process from frontier `S` is
    /// exactly the union of `k` iid uniform out-draws per vertex of `S` —
    /// the shape the bit-sliced lane kernel ([`crate::lanes`]) implements.
    /// Cobra walks report their branching factor; the non-lazy simple
    /// walk is the `k = 1` case. Everything else (laziness coins,
    /// per-contact transmission coins, pebble counts) returns `None` and
    /// stays on the per-trial engines.
    fn lane_branching(&self) -> Option<u32> {
        None
    }
}

/// Blanket impl so `&T` specifications keep the typed route too.
impl<G: ImplicitGraph + ?Sized, T: TypedProcess<G>> TypedProcess<G> for &T {
    type State = T::State;

    fn spawn_typed(&self, g: &G, start: Vertex) -> Self::State {
        (**self).spawn_typed(g, start)
    }

    fn respawn_typed(&self, g: &G, start: Vertex, state: &mut Self::State) {
        (**self).respawn_typed(g, start, state)
    }

    fn lane_branching(&self) -> Option<u32> {
        TypedProcess::<G>::lane_branching(&**self)
    }
}

/// The graph-independent read side of a typed walk state.
///
/// Split out of [`TypedState`] so that states implementing
/// `TypedState<G>` for *every* implicit graph `G` still expose
/// unambiguous introspection: `st.occupied()` needs no graph type to
/// resolve, while the stepping methods (which mention `G` in their
/// signatures) live on [`TypedState`] and infer `G` from the graph
/// argument at the call site.
pub trait StateView {
    /// Vertices occupied after the last step (or the initial configuration
    /// before any step). May contain duplicates.
    fn occupied(&self) -> &[Vertex];

    /// Number of tokens currently maintained; see
    /// [`ProcessState::support_size`].
    fn support_size(&self) -> usize {
        self.occupied().len()
    }

    /// The hybrid sparse/dense frontier describing the occupied set, when
    /// the process maintains one (set-valued processes: cobra, SIS).
    /// Drivers use it for word-parallel coverage union and O(1)/O(log s)
    /// hit tests; `None` falls back to the [`StateView::occupied`] slice.
    fn frontier(&self) -> Option<&crate::frontier::Frontier> {
        None
    }
}

/// Statically dispatched analogue of [`ProcessState`], generic over the
/// graph representation.
///
/// The contract is identical to [`ProcessState`]; the differences are
/// that [`TypedState::step`] is generic over the RNG, so a driver holding a
/// concrete `StdRng` monomorphizes the whole step (no `dyn Rng` virtual
/// call per random draw), and over the graph `G`, so the same kernel body
/// serves both the materialized CSR [`Graph`] and the arithmetic
/// [`ImplicitGraph`] families with zero dynamic dispatch either way.
/// Every `TypedState<Graph>` implementor automatically implements
/// [`ProcessState`] through a blanket impl that instantiates the same
/// `step` with `R = dyn Rng` — one body, two dispatch styles, so the two
/// routes cannot drift apart.
pub trait TypedState<G: ImplicitGraph + ?Sized = Graph>: StateView {
    /// Advance one round. Must draw from `rng` exactly as the dyn route
    /// does (it is the same code, instantiated twice).
    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R);

    /// Advance one round on the fast path. Must consume the same RNG
    /// stream and produce the same occupied *set* as [`TypedState::step`],
    /// but may skip materializing the [`StateView::occupied`] slice
    /// (leaving it stale) when the state exposes a
    /// [`StateView::frontier`] — the typed drivers read the frontier and
    /// [`StateView::support_size`] instead. Defaults to `step`.
    fn step_fast<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        self.step(g, rng)
    }

    /// Advance one round on the fast path, drawing neighbors through
    /// `draw` (a [`NeighborDraw`] strategy such as the per-graph
    /// [`cobra_graph::NeighborSampler`] table). Must consume the same RNG
    /// stream and reach the same state as [`TypedState::step_fast`] —
    /// every [`NeighborDraw`] impl is stream-compatible, so the default
    /// simply ignores `draw`; kernels whose inner loop is dominated by
    /// neighbor draws override this to route them through the table.
    fn step_sampled<D: NeighborDraw<G>, R: Rng + ?Sized>(&mut self, g: &G, draw: &D, rng: &mut R) {
        let _ = draw;
        self.step_fast(g, rng)
    }

    /// Advance one round on the fast path with an observability probe
    /// attached. Must consume the same RNG stream and reach the same
    /// state as [`TypedState::step_sampled`] — the probe observes, it
    /// never participates. The default ignores the probe entirely (so
    /// every existing state is probe-transparent); kernels that can
    /// account for their own work (draw counts, coalesces, faults)
    /// override this to report through `probe`. With
    /// [`cobra_obs::NoopProbe`] every override must compile down to the
    /// unprobed kernel — `tests/probe_neutrality.rs` pins the routes
    /// bit-for-bit.
    fn step_probed<D: NeighborDraw<G>, R: Rng + ?Sized, Pb: cobra_obs::Probe>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
        probe: &mut Pb,
    ) {
        let _ = probe;
        self.step_sampled(g, draw, rng)
    }
}

/// A strategy for drawing uniformly random neighbors.
///
/// All implementations are **stream-compatible**: on the same RNG state
/// they make the same draws and consume the same number of `u64`s, so a
/// kernel parameterized over `D: NeighborDraw` produces bit-identical runs
/// whichever strategy drives it. [`DrawOnTheFly`] resolves the CSR slice
/// per vertex (the spawn-anywhere default); [`cobra_graph::NeighborSampler`]
/// is the table-driven fast path built once per graph.
///
/// Kernels call [`NeighborDraw::bind`] once per active vertex and draw
/// repeatedly through the returned [`BoundDraw`], so per-vertex setup
/// (slice bounds, table slot, threshold) is hoisted out of the draw loop
/// for every strategy — including loops whose draws interleave with other
/// randomness (SIS's per-contact transmission coins).
pub trait NeighborDraw<G: ?Sized = Graph> {
    /// The per-vertex resolved drawer.
    type Bound<'a>: BoundDraw
    where
        Self: 'a,
        G: 'a;

    /// Resolve the per-vertex draw state for `v` once. Panics if `v` is
    /// isolated.
    fn bind<'a>(&'a self, g: &'a G, v: Vertex) -> Self::Bound<'a>;

    /// Draw one uniformly random neighbor of `v`. Panics if `v` is
    /// isolated.
    #[inline]
    fn draw_one<R: Rng + ?Sized>(&self, g: &G, v: Vertex, rng: &mut R) -> Vertex {
        self.bind(g, v).draw(rng)
    }

    /// Draw `k` uniformly random neighbors of `v`, passing each to `sink`
    /// in draw order; per-vertex setup is done once for the burst.
    #[inline]
    fn draw_many<R: Rng + ?Sized>(
        &self,
        g: &G,
        v: Vertex,
        k: u32,
        rng: &mut R,
        mut sink: impl FnMut(Vertex),
    ) {
        let bound = self.bind(g, v);
        for _ in 0..k {
            sink(bound.draw(rng));
        }
    }
}

/// A [`NeighborDraw`] resolved to one vertex: repeated draws with no
/// per-draw re-resolution, stream-compatible across strategies.
pub trait BoundDraw {
    /// Draw one uniformly random neighbor of the bound vertex.
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vertex;
}

/// The default [`NeighborDraw`]: resolve the neighbor slice per vertex,
/// draw with [`sample_index`] (lazy rejection threshold) — exactly what
/// [`random_neighbor`] / `ns[sample_index(ns.len(), rng)]` do. Used by
/// the plain `step` routes so the sampled and unsampled kernels share one
/// generic body.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrawOnTheFly;

/// [`DrawOnTheFly`] bound to one vertex's neighbor slice.
#[derive(Clone, Copy, Debug)]
pub struct SliceDraw<'a> {
    ns: &'a [Vertex],
}

impl NeighborDraw for DrawOnTheFly {
    type Bound<'a> = SliceDraw<'a>;

    #[inline]
    fn bind<'a>(&'a self, g: &'a Graph, v: Vertex) -> SliceDraw<'a> {
        let ns = g.neighbors(v);
        assert!(!ns.is_empty(), "vertex {v} has no neighbors");
        SliceDraw { ns }
    }
}

impl BoundDraw for SliceDraw<'_> {
    #[inline]
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vertex {
        self.ns[sample_index(self.ns.len(), rng)]
    }
}

impl NeighborDraw for cobra_graph::NeighborSampler {
    type Bound<'a> = cobra_graph::sampler::BoundSample<'a>;

    #[inline]
    fn bind<'a>(&'a self, g: &'a Graph, v: Vertex) -> Self::Bound<'a> {
        cobra_graph::NeighborSampler::bind(self, g, v)
    }
}

impl BoundDraw for cobra_graph::sampler::BoundSample<'_> {
    #[inline]
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vertex {
        cobra_graph::sampler::BoundSample::draw(self, rng)
    }
}

/// The [`NeighborDraw`] for arithmetic graphs: resolve the degree per
/// vertex through the [`ImplicitGraph`] trait, then index-address each
/// draw with `neighbor(v, i)` — no adjacency slice exists to borrow.
/// Draws with [`sample_index`] (lazy rejection threshold), so for
/// `G = Graph` this consumes the identical RNG stream as [`DrawOnTheFly`]
/// and [`cobra_graph::NeighborSampler`], and resolves identical vertices
/// (the implicit families enumerate neighbors in CSR order).
#[derive(Clone, Copy, Debug, Default)]
pub struct ImplicitDraw;

/// [`ImplicitDraw`] bound to one vertex: the graph handle, the vertex, and
/// its degree, hoisted out of the draw loop.
#[derive(Clone, Copy, Debug)]
pub struct ImplicitBound<'a, G: ?Sized> {
    g: &'a G,
    v: Vertex,
    degree: usize,
}

impl<G: ImplicitGraph + ?Sized> NeighborDraw<G> for ImplicitDraw {
    type Bound<'a>
        = ImplicitBound<'a, G>
    where
        G: 'a;

    #[inline]
    fn bind<'a>(&'a self, g: &'a G, v: Vertex) -> ImplicitBound<'a, G> {
        let degree = g.degree(v);
        assert!(degree > 0, "vertex {v} has no neighbors");
        ImplicitBound { g, v, degree }
    }
}

impl<G: ImplicitGraph + ?Sized> BoundDraw for ImplicitBound<'_, G> {
    #[inline]
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vertex {
        self.g.neighbor(self.v, sample_index(self.degree, rng))
    }
}

/// Every typed state is usable through the dyn API: the blanket impl
/// instantiates the generic step with `R = dyn Rng`, so boxed and unboxed
/// runs execute the same instructions modulo dispatch.
impl<T: TypedState<Graph>> ProcessState for T {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        TypedState::step(self, g, rng)
    }

    fn occupied(&self) -> &[Vertex] {
        StateView::occupied(self)
    }

    fn support_size(&self) -> usize {
        StateView::support_size(self)
    }
}

/// Draw a uniformly random neighbor of `v`. Panics if `v` is isolated —
/// every process in the paper is defined on connected graphs, so an
/// isolated vertex is a caller bug worth failing loudly on.
#[inline]
pub fn random_neighbor<R: Rng + ?Sized>(g: &Graph, v: Vertex, rng: &mut R) -> Vertex {
    let ns = g.neighbors(v);
    assert!(!ns.is_empty(), "vertex {v} has no neighbors");
    ns[sample_index(ns.len(), rng)]
}

/// Uniform index in `0..len` using Lemire-style rejection; unbiased and
/// branch-light. Generic over the RNG so the typed fast path inlines the
/// generator while `&mut dyn Rng` callers keep working unchanged.
#[inline]
pub fn sample_index<R: Rng + ?Sized>(len: usize, rng: &mut R) -> usize {
    debug_assert!(len > 0);
    let len = len as u64;
    // Widening-multiply rejection sampling.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(len as u128);
    let mut lo = m as u64;
    if lo < len {
        let threshold = len.wrapping_neg() % len;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(len as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as usize
}

/// A fair coin.
#[inline]
pub fn coin<R: Rng + ?Sized>(rng: &mut R) -> bool {
    rng.next_u64() & 1 == 1
}

/// Bernoulli(p).
#[inline]
pub fn bernoulli<R: Rng + ?Sized>(p: f64, rng: &mut R) -> bool {
    debug_assert!((0.0..=1.0).contains(&p));
    // 53-bit uniform in [0,1).
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_index_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(1);
        let len = 7;
        let trials = 70_000;
        let mut counts = vec![0usize; len];
        for _ in 0..trials {
            counts[sample_index(len, &mut rng)] += 1;
        }
        let expect = trials as f64 / len as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "bucket {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn sample_index_len_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(sample_index(1, &mut rng), 0);
        }
    }

    #[test]
    fn random_neighbor_stays_adjacent() {
        let g = classic::cycle(9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let u = random_neighbor(&g, 4, &mut rng);
            assert!(g.has_edge(4, u));
        }
    }

    #[test]
    #[should_panic(expected = "no neighbors")]
    fn random_neighbor_panics_on_isolated() {
        let g = cobra_graph::Graph::empty(2);
        let mut rng = StdRng::seed_from_u64(0);
        random_neighbor(&g, 0, &mut rng);
    }

    #[test]
    fn bernoulli_frequencies() {
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 50_000;
        for p in [0.0, 0.25, 0.5, 1.0] {
            let hits = (0..trials).filter(|_| bernoulli(p, &mut rng)).count();
            let freq = hits as f64 / trials as f64;
            assert!((freq - p).abs() < 0.02, "p = {p}, freq = {freq}");
        }
    }

    #[test]
    fn coin_is_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let heads = (0..trials).filter(|_| coin(&mut rng)).count();
        assert!((heads as f64 / trials as f64 - 0.5).abs() < 0.02);
    }
}
