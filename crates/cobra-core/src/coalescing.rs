//! Pure coalescing random walks (Cooper–Elsässer–Ono–Radzik; paper §1.2).
//!
//! The "coalescing half" of the cobra dynamics: a population of walkers
//! move independently, and walkers that meet at a vertex merge into one.
//! Dual to the voter model. Included as a related-work baseline and to
//! test coalescence handling in isolation from branching.

use crate::active_set::DenseSet;
use crate::process::{random_neighbor, Process, ProcessState};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Specification of a coalescing random walk system.
///
/// Spawned with `walkers` tokens at the start vertex; since co-located
/// walkers merge immediately, a same-vertex start collapses to one walker
/// after the first coalescence pass — use
/// [`CoalescingWalks::spawn_spread`] to scatter the initial walkers over
/// distinct vertices instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalescingWalks {
    walkers: usize,
}

impl CoalescingWalks {
    /// A system that starts with `walkers ≥ 1` tokens.
    pub fn new(walkers: usize) -> Self {
        assert!(walkers >= 1, "need at least one walker");
        CoalescingWalks { walkers }
    }

    /// Spawn with one walker on each of the first `walkers` vertices
    /// (vertex ids `0, 1, …`), the standard initial condition for
    /// coalescence-time studies.
    pub fn spawn_spread(&self, g: &Graph) -> Box<dyn ProcessState> {
        let n = g.num_vertices();
        assert!(self.walkers <= n, "more walkers than vertices");
        Box::new(CoalescingState {
            positions: (0..self.walkers as u32).collect(),
            dedup: DenseSet::new(n),
        })
    }
}

impl Process for CoalescingWalks {
    fn name(&self) -> String {
        format!("coalescing-rw(k={})", self.walkers)
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        Box::new(CoalescingState {
            positions: vec![start; self.walkers],
            dedup: DenseSet::new(g.num_vertices()),
        })
    }
}

struct CoalescingState {
    positions: Vec<Vertex>,
    dedup: DenseSet,
}

impl ProcessState for CoalescingState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        // Move every walker, then coalesce co-located ones.
        self.dedup.clear();
        let mut write = 0usize;
        for read in 0..self.positions.len() {
            let next = random_neighbor(g, self.positions[read], rng);
            if self.dedup.insert(next) {
                self.positions[write] = next;
                write += 1;
            }
        }
        self.positions.truncate(write);
    }

    fn occupied(&self) -> &[Vertex] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walker_count_never_increases() {
        let g = classic::complete(12).unwrap();
        let spec = CoalescingWalks::new(8);
        let mut st = spec.spawn_spread(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = st.occupied().len();
        for _ in 0..200 {
            st.step(&g, &mut rng);
            let cur = st.occupied().len();
            assert!(cur <= prev);
            assert!(cur >= 1);
            prev = cur;
        }
    }

    #[test]
    fn eventually_coalesces_to_one_on_complete_graph() {
        let g = classic::complete(8).unwrap();
        let spec = CoalescingWalks::new(8);
        let mut st = spec.spawn_spread(&g);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5000 {
            st.step(&g, &mut rng);
            if st.occupied().len() == 1 {
                return;
            }
        }
        panic!("8 walkers on K8 did not coalesce within 5000 steps");
    }

    #[test]
    fn same_start_collapses_after_one_step() {
        let g = classic::star(6).unwrap();
        let spec = CoalescingWalks::new(5);
        let mut st = spec.spawn(&g, 1); // all at a leaf
        let mut rng = StdRng::seed_from_u64(3);
        st.step(&g, &mut rng);
        // All walkers were at leaf 1, all must move to hub 0 and coalesce.
        assert_eq!(st.occupied(), &[0]);
    }

    #[test]
    fn positions_are_distinct_after_each_step() {
        let g = classic::cycle(20).unwrap();
        let spec = CoalescingWalks::new(10);
        let mut st = spec.spawn_spread(&g);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            st.step(&g, &mut rng);
            let mut sorted = st.occupied().to_vec();
            sorted.sort_unstable();
            let len = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), len);
        }
    }

    #[test]
    fn spawn_spread_validates() {
        let g = classic::path(3).unwrap();
        let spec = CoalescingWalks::new(3);
        let st = spec.spawn_spread(&g);
        assert_eq!(st.occupied(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "more walkers")]
    fn spawn_spread_rejects_overflow() {
        let g = classic::path(2).unwrap();
        CoalescingWalks::new(5).spawn_spread(&g);
    }

    #[test]
    fn name_contains_count() {
        assert_eq!(CoalescingWalks::new(3).name(), "coalescing-rw(k=3)");
    }
}
