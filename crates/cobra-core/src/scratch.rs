//! Reusable per-worker scratch for batched Monte-Carlo trials.
//!
//! The paper's empirical claims are pinned by sweeps of thousands of
//! short trials, so per-trial *setup* — allocating and zeroing two
//! frontiers, a coverage mask, and the process state — was the dominant
//! waste once the step kernel itself got fast. A [`TrialScratch`] owns
//! all of that mutable state for one worker; the scratch-borrowing
//! drivers ([`crate::CoverDriver::run_typed_in`] /
//! [`crate::HittingDriver::run_typed_in`]) reinitialize it per trial with
//! O(dirty) clears:
//!
//! * the typed process state is rebuilt in place by
//!   [`TypedProcess::respawn_typed`] (frontier clears are O(members), see
//!   `Frontier::clear`);
//! * the coverage mask's [`CoverageMask::reset`] is an O(1) epoch bump
//!   with lazy word refresh — no re-zeroing of untouched words;
//! * the trajectory buffer is a plain `Vec::clear`.
//!
//! After the first trial warms the buffers up, the steady-state trial
//! path performs **zero heap allocations** (pinned by
//! `tests/zero_alloc.rs`). Each rayon worker lazily builds one scratch
//! via `map_init` and reuses it across all of the worker's chunks, so
//! the amortized setup cost per trial is ~nothing.

use crate::frontier::CoverageMask;
use crate::process::TypedProcess;
use cobra_graph::{ImplicitGraph, Vertex};

/// Reusable state for a stream of trials of one process type on one graph
/// (a different graph — e.g. the next sweep cell — triggers a one-time
/// rebuild of the mismatched pieces).
#[derive(Debug)]
pub struct TrialScratch<S> {
    /// The reused typed process state; `None` until the first trial.
    pub(crate) state: Option<S>,
    /// The reused coverage mask.
    pub(crate) covered: CoverageMask,
    /// The reused per-round support-size buffer (only written when the
    /// driver records trajectories).
    pub(crate) trajectory: Vec<usize>,
}

impl<S> TrialScratch<S> {
    /// Scratch sized for `g` (CSR or implicit). The process state itself
    /// is created lazily on the first trial (the driver knows the
    /// process, this constructor does not need to).
    pub fn new<G: ImplicitGraph + ?Sized>(g: &G) -> Self {
        TrialScratch {
            state: None,
            covered: CoverageMask::new(g.num_vertices()),
            trajectory: Vec::new(),
        }
    }

    /// The trajectory recorded by the most recent scratch-borrowing run
    /// (empty unless the driver had `record_trajectory` on).
    pub fn trajectory(&self) -> &[usize] {
        &self.trajectory
    }

    /// Reinitialize for a trial of `process` from `start` on `g`: respawn
    /// (or lazily spawn) the state, epoch-reset the mask, clear the
    /// trajectory buffer. Returns the ready state; everything is O(dirty)
    /// and allocation-free once warm.
    pub(crate) fn prepare<'a, G, P>(&'a mut self, g: &G, process: &P, start: Vertex) -> &'a mut S
    where
        G: ImplicitGraph + ?Sized,
        P: TypedProcess<G, State = S>,
    {
        if self.covered.capacity() != g.num_vertices() {
            self.covered = CoverageMask::new(g.num_vertices());
        } else {
            self.covered.reset();
        }
        self.trajectory.clear();
        match self.state {
            Some(ref mut state) => process.respawn_typed(g, start, state),
            None => self.state = Some(process.spawn_typed(g, start)),
        }
        self.state.as_mut().expect("state just ensured")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cobra::CobraWalk;
    use crate::process::StateView;
    use cobra_graph::generators::classic;

    #[test]
    fn prepare_spawns_then_reuses() {
        let g = classic::cycle(32).unwrap();
        let spec = CobraWalk::standard();
        let mut scratch = TrialScratch::new(&g);
        assert!(scratch.state.is_none());
        {
            let st = scratch.prepare(&g, &spec, 5);
            assert_eq!(st.occupied(), &[5]);
        }
        assert!(scratch.state.is_some());
        let st = scratch.prepare(&g, &spec, 9);
        assert_eq!(st.occupied(), &[9], "respawn must relocate the start");
    }

    #[test]
    fn prepare_rebuilds_on_graph_change() {
        let small = classic::cycle(16).unwrap();
        let big = classic::cycle(64).unwrap();
        let spec = CobraWalk::standard();
        let mut scratch = TrialScratch::new(&small);
        scratch.prepare(&small, &spec, 0);
        assert_eq!(scratch.covered.capacity(), 16);
        let st = scratch.prepare(&big, &spec, 3);
        assert_eq!(st.occupied(), &[3]);
        assert_eq!(scratch.covered.capacity(), 64);
    }

    #[test]
    fn mask_resets_between_trials() {
        let g = classic::complete(10).unwrap();
        let spec = CobraWalk::standard();
        let mut scratch = TrialScratch::new(&g);
        scratch.prepare(&g, &spec, 0);
        scratch.covered.mark_slice(&[0, 1, 2]);
        assert_eq!(scratch.covered.count(), 3);
        scratch.prepare(&g, &spec, 0);
        assert_eq!(scratch.covered.count(), 0, "prepare must reset coverage");
    }
}
