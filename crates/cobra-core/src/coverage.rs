//! Rank/select-capable coverage bitmap for giant implicit graphs.
//!
//! [`crate::frontier::CoverageMask`] is the right coverage structure for
//! the batched trial engine: epoch-stamped words make `reset` O(1), which
//! matters when thousands of trials reuse one mask. At the other extreme —
//! a *single* cover run over 10⁸ implicit vertices — the pressure is
//! different: the mask is the largest resident structure, the run wants
//! `count`/`is_complete` in O(1) without a popcount sweep, and analysis
//! code wants `rank`/`select` queries over the covered set without
//! materializing it.
//!
//! [`SuccinctCoverage`] serves that regime with the classic RRR-style
//! block layout (Raman–Raman–Rao; see the repo's related-work notes):
//! the universe is split into **63-bit blocks** so a block's popcount
//! fits a `u8` with room to spare, a summary layer of one `u32` per
//! [`SUPER_BLOCKS`] blocks caches per-superblock covered counts, and a
//! global counter keeps `count`/`is_complete` O(1). `mark` and
//! `contains` are O(1); `rank`/`select` scan summaries first and touch
//! at most [`SUPER_BLOCKS`] block counts plus one block's bits; `reset`
//! only rewrites superblocks that actually contain covered vertices.
//!
//! Overhead beyond the raw bits is one byte per 63 vertices plus four
//! bytes per ~32k vertices (≈ 1.9%), so a 1.3·10⁸-vertex run keeps the
//! whole structure around 19 MB — cache-friendly and far below the
//! multi-GB CSR adjacency it replaces (see `tests/implicit_scale.rs`).

use crate::frontier::Frontier;
use cobra_graph::Vertex;

/// Bits stored per block. 63 (not 64) so a block popcount fits the u8
/// summary with a spare bit, mirroring the RRR block convention.
const BLOCK_BITS: usize = 63;

/// Blocks per superblock in the summary layer (≈ 32k vertices each).
pub const SUPER_BLOCKS: usize = 512;

/// A coverage bitmap over vertex ids `0..n` with O(1) mark/contains/
/// count/is-complete and summary-accelerated rank/select.
///
/// See the [module docs](self) for the layout and for when to prefer
/// this over [`crate::frontier::CoverageMask`].
#[derive(Clone, Debug)]
pub struct SuccinctCoverage {
    n: usize,
    /// 63-bit payloads; bit 63 of every word is always zero.
    blocks: Vec<u64>,
    /// Popcount of each block (≤ 63).
    block_counts: Vec<u8>,
    /// Covered count within each superblock of [`SUPER_BLOCKS`] blocks.
    super_counts: Vec<u32>,
    covered: usize,
}

impl SuccinctCoverage {
    /// An empty coverage map over vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        let blocks = n.div_ceil(BLOCK_BITS);
        let supers = blocks.div_ceil(SUPER_BLOCKS);
        SuccinctCoverage {
            n,
            blocks: vec![0; blocks],
            block_counts: vec![0; blocks],
            super_counts: vec![0; supers],
            covered: 0,
        }
    }

    /// The id-space size `n`.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Number of covered vertices (O(1)).
    #[inline]
    pub fn count(&self) -> usize {
        self.covered
    }

    /// Whether all `n` vertices are covered (O(1)).
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.covered == self.n
    }

    /// Whether `v` is covered.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        let i = v as usize;
        debug_assert!(i < self.n, "vertex {v} out of range");
        self.blocks[i / BLOCK_BITS] & (1u64 << (i % BLOCK_BITS)) != 0
    }

    /// Cover `v`; returns `true` if it was newly covered. Branch-free on
    /// the already-covered fast path apart from the return itself.
    #[inline]
    pub fn mark(&mut self, v: Vertex) -> bool {
        let i = v as usize;
        debug_assert!(i < self.n, "vertex {v} out of range");
        let b = i / BLOCK_BITS;
        let bit = 1u64 << (i % BLOCK_BITS);
        let word = &mut self.blocks[b];
        let newly = *word & bit == 0;
        *word |= bit;
        let newly_u = newly as usize;
        self.block_counts[b] += newly_u as u8;
        self.super_counts[b / SUPER_BLOCKS] += newly_u as u32;
        self.covered += newly_u;
        newly
    }

    /// Cover every vertex in `vs` (duplicates welcome); returns how many
    /// were newly covered.
    pub fn mark_slice(&mut self, vs: &[Vertex]) -> usize {
        let before = self.covered;
        for &v in vs {
            self.mark(v);
        }
        self.covered - before
    }

    /// Union a [`Frontier`] in; returns how many vertices were newly
    /// covered. Sparse frontiers mark per member; dense frontiers repack
    /// the 64-bit frontier words into 63-bit blocks word-parallel, so the
    /// per-round coverage update of a big run costs O(n/64) independent
    /// of the frontier's population.
    pub fn union_from_frontier(&mut self, f: &Frontier) -> usize {
        assert_eq!(self.n, f.capacity(), "id spaces must match");
        let before = self.covered;
        match f.as_sparse() {
            Some(members) => {
                for &v in members {
                    self.mark(v);
                }
            }
            None => {
                let words = f.as_words();
                for b in 0..self.blocks.len() {
                    let lo_bit = b * BLOCK_BITS;
                    let w = lo_bit / 64;
                    let shift = lo_bit % 64;
                    let mut incoming = words[w] >> shift;
                    if shift != 0 && w + 1 < words.len() {
                        incoming |= words[w + 1] << (64 - shift);
                    }
                    incoming &= (1u64 << BLOCK_BITS) - 1;
                    let fresh = incoming & !self.blocks[b];
                    if fresh != 0 {
                        let added = fresh.count_ones();
                        self.blocks[b] |= fresh;
                        self.block_counts[b] += added as u8;
                        self.super_counts[b / SUPER_BLOCKS] += added;
                        self.covered += added as usize;
                    }
                }
            }
        }
        self.covered - before
    }

    /// Un-cover everything. Only superblocks that contain covered
    /// vertices are rewritten, so a reset after a short partial run costs
    /// O(covered region), not O(n).
    pub fn reset(&mut self) {
        if self.covered == 0 {
            return;
        }
        for (s, count) in self.super_counts.iter_mut().enumerate() {
            if *count == 0 {
                continue;
            }
            let lo = s * SUPER_BLOCKS;
            let hi = (lo + SUPER_BLOCKS).min(self.blocks.len());
            self.blocks[lo..hi].fill(0);
            self.block_counts[lo..hi].fill(0);
            *count = 0;
        }
        self.covered = 0;
    }

    /// Number of covered vertices with id strictly below `v`
    /// (`v ≤ n` allowed; `rank(n)` equals [`SuccinctCoverage::count`]).
    /// Scans the summary layer, then at most [`SUPER_BLOCKS`] block
    /// counts, then popcounts one partial block.
    pub fn rank(&self, v: usize) -> usize {
        assert!(v <= self.n, "rank position {v} beyond id space {}", self.n);
        let b = v / BLOCK_BITS;
        let s = b / SUPER_BLOCKS;
        let mut r: usize = self.super_counts[..s].iter().map(|&c| c as usize).sum();
        r += self.block_counts[s * SUPER_BLOCKS..b]
            .iter()
            .map(|&c| c as usize)
            .sum::<usize>();
        if b < self.blocks.len() {
            let mask = (1u64 << (v % BLOCK_BITS)) - 1;
            r += (self.blocks[b] & mask).count_ones() as usize;
        }
        r
    }

    /// The id of the `r`-th covered vertex in ascending order (0-based),
    /// or `None` when `r ≥ count()`. Walks the summary layer, then the
    /// block counts of one superblock, then the bits of one block.
    pub fn select(&self, r: usize) -> Option<Vertex> {
        if r >= self.covered {
            return None;
        }
        let mut remaining = r;
        let mut s = 0usize;
        while remaining >= self.super_counts[s] as usize {
            remaining -= self.super_counts[s] as usize;
            s += 1;
        }
        let mut b = s * SUPER_BLOCKS;
        while remaining >= self.block_counts[b] as usize {
            remaining -= self.block_counts[b] as usize;
            b += 1;
        }
        let mut bits = self.blocks[b];
        for _ in 0..remaining {
            bits &= bits - 1;
        }
        Some((b * BLOCK_BITS + bits.trailing_zeros() as usize) as Vertex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::CoverageMask;
    use proptest::prelude::*;

    #[test]
    fn empty_and_complete() {
        let mut c = SuccinctCoverage::new(5);
        assert_eq!(c.capacity(), 5);
        assert_eq!(c.count(), 0);
        assert!(!c.is_complete());
        assert_eq!(c.mark_slice(&[0, 1, 2, 3, 4, 2, 0]), 5);
        assert!(c.is_complete());
        assert_eq!(c.rank(5), 5);
        c.reset();
        assert_eq!(c.count(), 0);
        assert!(!c.contains(3));
    }

    #[test]
    fn mark_contains_rank_select_across_block_boundaries() {
        // Straddle the 63-bit block boundary and a superblock boundary.
        let n = BLOCK_BITS * SUPER_BLOCKS + 100;
        let mut c = SuccinctCoverage::new(n);
        let picks = [
            0usize,
            62,
            63,
            64,
            BLOCK_BITS * 2 - 1,
            BLOCK_BITS * SUPER_BLOCKS - 1,
            BLOCK_BITS * SUPER_BLOCKS,
            n - 1,
        ];
        for (i, &v) in picks.iter().enumerate() {
            assert!(c.mark(v as Vertex));
            assert!(!c.mark(v as Vertex), "remark of {v} reported new");
            assert_eq!(c.count(), i + 1);
        }
        for (i, &v) in picks.iter().enumerate() {
            assert!(c.contains(v as Vertex));
            assert_eq!(c.rank(v), i, "rank below {v}");
            assert_eq!(c.rank(v + 1), i + 1, "rank through {v}");
            assert_eq!(c.select(i), Some(v as Vertex));
        }
        assert_eq!(c.select(picks.len()), None);
    }

    #[test]
    fn union_repacks_dense_frontier_words() {
        // A frontier past its dense threshold exercises the 64→63-bit
        // repack; compare against the mask oracle on the same members.
        let n = 4096;
        let mut f = Frontier::new(n);
        let mut c = SuccinctCoverage::new(n);
        let mut mask = CoverageMask::new(n);
        for v in (0..n as u32).step_by(3) {
            f.insert(v);
        }
        assert!(f.is_dense(), "step-3 fill must trip the dense threshold");
        assert_eq!(
            c.union_from_frontier(&f),
            mask.union_frontier(&f),
            "newly-covered counts must agree"
        );
        for v in 0..n as u32 {
            assert_eq!(c.contains(v), mask.contains(v));
        }
        // A second union adds nothing.
        assert_eq!(c.union_from_frontier(&f), 0);
    }

    #[test]
    fn union_sparse_frontier_matches_mask() {
        let n = 1000;
        let mut f = Frontier::new(n);
        let mut c = SuccinctCoverage::new(n);
        let mut mask = CoverageMask::new(n);
        for v in [3u32, 999, 63, 64, 126, 3] {
            f.insert(v);
        }
        assert!(f.as_sparse().is_some());
        assert_eq!(c.union_from_frontier(&f), mask.union_frontier(&f));
        assert_eq!(c.count(), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite 4: SuccinctCoverage must agree with the trial
        // engine's CoverageMask (and a plain Vec<bool> oracle) under an
        // arbitrary mark/reset workload, including rank/select readback.
        #[test]
        fn agrees_with_coverage_mask_oracle(
            n in 1usize..700,
            ops in proptest::collection::vec((0u8..10, 0u32..700u32), 1..120),
        ) {
            let mut c = SuccinctCoverage::new(n);
            let mut mask = CoverageMask::new(n);
            let mut oracle = vec![false; n];
            for (sel, raw) in ops {
                let v = raw % n as u32;
                if sel == 0 {
                    // Occasional reset (mask resets are epoch bumps,
                    // succinct resets rewrite dirty superblocks).
                    c.reset();
                    mask.reset();
                    oracle.fill(false);
                } else {
                    let newly = !oracle[v as usize];
                    oracle[v as usize] = true;
                    prop_assert_eq!(c.mark(v), newly);
                    prop_assert_eq!(mask.mark(v), newly);
                }
                prop_assert_eq!(c.count(), mask.count());
                prop_assert_eq!(c.is_complete(), mask.is_complete());
                prop_assert_eq!(c.contains(v), mask.contains(v));
            }
            // Full readback: membership, every rank boundary, and select
            // as the inverse of rank.
            let mut seen = 0usize;
            for (v, &covered) in oracle.iter().enumerate() {
                prop_assert_eq!(c.rank(v), seen);
                if covered {
                    prop_assert_eq!(c.select(seen), Some(v as Vertex));
                    seen += 1;
                }
                prop_assert_eq!(c.contains(v as Vertex), covered);
            }
            prop_assert_eq!(c.rank(n), seen);
            prop_assert_eq!(c.select(seen), None);
        }
    }
}
