//! Epoch-stamped dense vertex set with O(1) clear.
//!
//! Walk kernels toggle membership for a handful of vertices per round but
//! would pay O(n) to clear a `Vec<bool>` between rounds. [`DenseSet`]
//! stamps entries with an epoch counter instead, so `clear` is a single
//! increment.

use cobra_graph::Vertex;

/// A set over dense vertex ids `0..n` with O(1) insert/contains/clear.
#[derive(Clone, Debug)]
pub struct DenseSet {
    stamps: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl DenseSet {
    /// Create an empty set over the id space `0..n`.
    pub fn new(n: usize) -> Self {
        DenseSet {
            stamps: vec![0; n],
            epoch: 1,
            len: 0,
        }
    }

    /// Capacity of the id space.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.stamps[v as usize] == self.epoch
    }

    /// Insert `v`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: Vertex) -> bool {
        let slot = &mut self.stamps[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            self.len += 1;
            true
        }
    }

    /// Remove all members in O(1).
    pub fn clear(&mut self) {
        self.len = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps so stale epochs can't alias.
            self.stamps.fill(0);
            self.epoch = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membership() {
        let mut s = DenseSet::new(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn clear_is_effective() {
        let mut s = DenseSet::new(5);
        for v in 0..5 {
            s.insert(v);
        }
        assert_eq!(s.len(), 5);
        s.clear();
        assert!(s.is_empty());
        for v in 0..5 {
            assert!(!s.contains(v));
        }
        assert!(s.insert(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn epoch_wraparound_is_safe() {
        let mut s = DenseSet::new(3);
        s.insert(0);
        // Force the epoch to wrap.
        s.epoch = u32::MAX;
        s.clear();
        assert_eq!(s.epoch, 1);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.contains(0));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Membership stays correct across epoch wraparound: run a random
        /// insert/clear schedule with the epoch pinned just below
        /// `u32::MAX`, so the wrap-and-reset branch in `clear` fires mid
        /// sequence. Oracle: a `HashSet` rebuilt at every clear.
        #[test]
        fn epoch_wrap_matches_hashset_oracle(
            start_offset in 0u32..6,
            ops in proptest::collection::vec((0u8..8, 0u32..24), 1..80),
        ) {
            let mut s = DenseSet::new(24);
            // Pre-populate under the soon-to-wrap epoch so stale stamps
            // exist when the wrap resets them.
            s.insert(3);
            s.insert(7);
            s.epoch = u32::MAX - start_offset;
            // Re-stamp the pre-populated members under the pinned epoch.
            let mut oracle = std::collections::HashSet::new();
            s.stamps.fill(0);
            s.len = 0;
            for v in [3u32, 7] {
                s.insert(v);
                oracle.insert(v);
            }
            for (sel, v) in ops {
                if sel == 0 {
                    s.clear();
                    oracle.clear();
                } else {
                    proptest::prop_assert_eq!(s.insert(v), oracle.insert(v));
                }
                proptest::prop_assert_eq!(s.len(), oracle.len());
                for u in 0..24u32 {
                    proptest::prop_assert_eq!(s.contains(u), oracle.contains(&u));
                }
                proptest::prop_assert!(s.epoch != 0, "epoch 0 is reserved for stale stamps");
            }
        }
    }

    #[test]
    fn many_clear_cycles() {
        let mut s = DenseSet::new(4);
        for round in 0..1000u32 {
            let v = (round % 4) as Vertex;
            assert!(s.insert(v));
            assert!(s.contains(v));
            s.clear();
        }
        assert!(s.is_empty());
    }
}
