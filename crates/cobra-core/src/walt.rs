//! The **Walt** process (paper §4) — the structured coupling process whose
//! cover time stochastically dominates the cobra walk's (Lemma 10).
//!
//! Walt maintains a *fixed* population of totally ordered pebbles (no
//! splitting, no coalescing). Per round:
//!
//! 1. If one or two pebbles sit at a vertex, each independently moves to a
//!    uniformly random neighbor.
//! 2. If **three or more** pebbles sit at `v`, the two lowest-order pebbles
//!    pick independent uniform neighbors `u`, `w`; every remaining pebble
//!    at `v` flips a fair coin and moves to `u` or `w`.
//!
//! The paper additionally makes Walt *lazy*: each round, with probability
//! 1/2 all pebbles hold. Both the laziness and the three-pebble threshold
//! are configurable here so experiment E13 can ablate them.

use crate::process::{coin, sample_index, Process, ProcessState, TypedProcess, TypedState};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// How many pebbles a [`WaltProcess`] starts with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PebblePopulation {
    /// An explicit pebble count.
    Count(usize),
    /// `⌈δ·n⌉` pebbles; the paper uses δ ≤ 1/2.
    Fraction(f64),
}

/// Specification of a Walt process.
///
/// [`Process::spawn`] places all pebbles at the start vertex, matching the
/// paper's Theorem 8 analysis ("all δn pebbles begin at the same vertex").
/// Use [`WaltProcess::spawn_at_positions`] for arbitrary placements (as in
/// Lemma 10's statement).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaltProcess {
    population: PebblePopulation,
    lazy: bool,
    /// Minimum co-located pebble count at which the follow-the-leaders rule
    /// kicks in. The paper fixes this to 3.
    threshold: usize,
}

impl WaltProcess {
    /// The paper's configuration: `⌈δ·n⌉` pebbles, lazy, threshold 3.
    pub fn standard(delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 0.5, "paper requires 0 < δ ≤ 1/2");
        WaltProcess {
            population: PebblePopulation::Fraction(delta),
            lazy: true,
            threshold: 3,
        }
    }

    /// A Walt process with an explicit pebble count.
    pub fn with_count(count: usize) -> Self {
        assert!(count >= 1, "need at least one pebble");
        WaltProcess {
            population: PebblePopulation::Count(count),
            lazy: true,
            threshold: 3,
        }
    }

    /// Disable (or re-enable) the global laziness coin.
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Override the coalescence-rule threshold (paper: 3). Threshold 2
    /// makes every co-located group move like a two-leader herd; used only
    /// by the ablation experiment.
    pub fn threshold(mut self, threshold: usize) -> Self {
        assert!(threshold >= 2, "threshold must be >= 2");
        self.threshold = threshold;
        self
    }

    /// Resolve the pebble count for a graph on `n` vertices.
    pub fn population_for(&self, n: usize) -> usize {
        match self.population {
            PebblePopulation::Count(c) => c.max(1),
            PebblePopulation::Fraction(delta) => ((delta * n as f64).ceil() as usize).max(1),
        }
    }

    /// Spawn with explicit initial pebble positions (Lemma 10 allows an
    /// arbitrary number of pebbles at each start vertex).
    pub fn spawn_at_positions(&self, g: &Graph, positions: Vec<Vertex>) -> Box<dyn ProcessState> {
        assert!(!positions.is_empty(), "need at least one pebble");
        for &v in &positions {
            assert!((v as usize) < g.num_vertices(), "pebble position in range");
        }
        Box::new(WaltState::new(
            positions,
            g.num_vertices(),
            self.lazy,
            self.threshold,
        ))
    }
}

impl Process for WaltProcess {
    fn name(&self) -> String {
        let pop = match self.population {
            PebblePopulation::Count(c) => format!("p={c}"),
            PebblePopulation::Fraction(d) => format!("δ={d}"),
        };
        format!(
            "walt({pop}{}{})",
            if self.lazy { ",lazy" } else { "" },
            if self.threshold != 3 {
                format!(",thr={}", self.threshold)
            } else {
                String::new()
            }
        )
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for WaltProcess {
    type State = WaltState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> WaltState {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let count = self.population_for(g.num_vertices());
        WaltState::new(
            vec![start; count],
            g.num_vertices(),
            self.lazy,
            self.threshold,
        )
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut WaltState) {
        let n = g.num_vertices();
        let count = self.population_for(n);
        if state.counts.len() != n + 1 || state.positions.len() != count {
            *state = self.spawn_typed(g, start);
            return;
        }
        assert!((start as usize) < n, "start vertex in range");
        state.positions.fill(start);
        state.lazy = self.lazy;
        state.threshold = self.threshold;
    }
}

/// Running state: `positions[i]` is the vertex of pebble `i`, and pebble
/// index *is* the total order (lower index = lower order).
pub struct WaltState {
    positions: Vec<Vertex>,
    lazy: bool,
    threshold: usize,
    // Scratch for counting-sort grouping, reused across steps (and, via
    // `TypedProcess::respawn_typed`, across trials).
    counts: Vec<u32>,
    grouped: Vec<u32>,
    cursors: Vec<u32>,
}

impl WaltState {
    fn new(positions: Vec<Vertex>, n: usize, lazy: bool, threshold: usize) -> Self {
        let p = positions.len();
        WaltState {
            positions,
            lazy,
            threshold,
            counts: vec![0; n + 1],
            grouped: vec![0; p],
            cursors: Vec::with_capacity(n),
        }
    }
}

impl TypedState for WaltState {
    fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        if self.lazy && coin(rng) {
            return; // all pebbles hold this round
        }

        // Counting sort pebble ids by vertex; iterating ids in ascending
        // order keeps each bucket sorted by pebble order, so the first two
        // entries of a bucket are the two lowest-order pebbles.
        let n = g.num_vertices();
        self.counts[..=n].fill(0);
        for &v in &self.positions {
            self.counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            let prev = self.counts[i];
            self.counts[i + 1] += prev;
        }
        // `cursor[v]` = next insertion slot; reuse counts as cursors by
        // remembering bucket starts separately via a second pass below.
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.counts[..n]);
        for (id, &v) in self.positions.iter().enumerate() {
            let slot = self.cursors[v as usize];
            self.grouped[slot as usize] = id as u32;
            self.cursors[v as usize] += 1;
        }

        for v in 0..n {
            let lo = self.counts[v] as usize;
            let hi = self.counts[v + 1] as usize;
            let size = hi - lo;
            if size == 0 {
                continue;
            }
            let ns = g.neighbors(v as Vertex);
            debug_assert!(!ns.is_empty(), "Walt requires min degree >= 1");
            if size < self.threshold {
                // Rule 1: each pebble walks independently.
                for &id in &self.grouped[lo..hi] {
                    self.positions[id as usize] = ns[sample_index(ns.len(), rng)];
                }
            } else {
                // Rule 2: two lowest-order pebbles lead; the rest follow a
                // fair coin between the leaders' destinations.
                let u = ns[sample_index(ns.len(), rng)];
                let w = ns[sample_index(ns.len(), rng)];
                self.positions[self.grouped[lo] as usize] = u;
                self.positions[self.grouped[lo + 1] as usize] = w;
                for &id in &self.grouped[lo + 2..hi] {
                    self.positions[id as usize] = if coin(rng) { u } else { w };
                }
            }
        }
    }
}

impl crate::process::StateView for WaltState {
    fn occupied(&self) -> &[Vertex] {
        &self.positions
    }

    fn support_size(&self) -> usize {
        // Number of distinct occupied vertices.
        let mut sorted: Vec<Vertex> = self.positions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::{classic, hypercube};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn population_resolution() {
        let w = WaltProcess::standard(0.5);
        assert_eq!(w.population_for(100), 50);
        assert_eq!(w.population_for(3), 2);
        let w = WaltProcess::with_count(7);
        assert_eq!(w.population_for(1000), 7);
    }

    #[test]
    #[should_panic(expected = "δ")]
    fn rejects_large_delta() {
        WaltProcess::standard(0.9);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(WaltProcess::standard(0.5).name(), "walt(δ=0.5,lazy)");
        assert_eq!(
            WaltProcess::with_count(4).lazy(false).threshold(2).name(),
            "walt(p=4,thr=2)"
        );
    }

    #[test]
    fn pebble_count_is_invariant() {
        let g = hypercube::hypercube(4);
        let spec = WaltProcess::standard(0.5);
        let mut st = spec.spawn(&g, 0);
        let expected = spec.population_for(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            st.step(&g, &mut rng);
            assert_eq!(st.occupied().len(), expected);
        }
    }

    #[test]
    fn pebbles_move_along_edges() {
        let g = classic::cycle(9).unwrap();
        let spec = WaltProcess::with_count(5).lazy(false);
        let mut st = spec.spawn(&g, 4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = st.occupied().to_vec();
        for _ in 0..100 {
            st.step(&g, &mut rng);
            for (i, &cur) in st.occupied().iter().enumerate() {
                assert!(
                    g.has_edge(prev[i], cur),
                    "pebble {i} jumped {} -> {cur}",
                    prev[i]
                );
            }
            prev = st.occupied().to_vec();
        }
    }

    #[test]
    fn lazy_process_holds_roughly_half_the_time() {
        let g = classic::cycle(9).unwrap();
        let spec = WaltProcess::with_count(3); // lazy by default
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut holds = 0;
        let steps = 600;
        let mut prev = st.occupied().to_vec();
        for _ in 0..steps {
            st.step(&g, &mut rng);
            // On an odd cycle with 3 pebbles, a non-lazy round moves every
            // pebble to an adjacent vertex, so "all identical to previous"
            // only happens on holds.
            if st.occupied() == prev.as_slice() {
                holds += 1;
            }
            prev = st.occupied().to_vec();
        }
        let frac = holds as f64 / steps as f64;
        assert!((frac - 0.5).abs() < 0.1, "hold fraction {frac}");
    }

    #[test]
    fn herd_rule_sends_followers_to_leader_destinations() {
        // Star graph: all pebbles at the hub must scatter to leaves; with
        // threshold 3 and many pebbles, followers may only go to the two
        // leaders' destinations.
        let g = classic::star(10).unwrap();
        let spec = WaltProcess::with_count(8).lazy(false);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(5);
        st.step(&g, &mut rng);
        let mut dests: Vec<Vertex> = st.occupied().to_vec();
        dests.sort_unstable();
        dests.dedup();
        assert!(
            dests.len() <= 2,
            "8 co-located pebbles must land on at most 2 vertices, got {dests:?}"
        );
    }

    #[test]
    fn threshold_two_makes_pairs_herd() {
        // With threshold 2, even two co-located pebbles use the leader rule
        // (both ARE leaders, so behaviour matches rule 1 for pairs); with
        // 3+ pebbles everything still lands on ≤ 2 vertices. This is a
        // sanity check that the ablation knob is wired through.
        let g = classic::star(10).unwrap();
        let spec = WaltProcess::with_count(5).lazy(false).threshold(2);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(6);
        st.step(&g, &mut rng);
        let mut dests: Vec<Vertex> = st.occupied().to_vec();
        dests.sort_unstable();
        dests.dedup();
        assert!(dests.len() <= 2);
    }

    #[test]
    fn spawn_at_positions_validates_and_places() {
        let g = classic::path(5).unwrap();
        let spec = WaltProcess::with_count(3).lazy(false);
        let st = spec.spawn_at_positions(&g, vec![0, 2, 4]);
        assert_eq!(st.occupied(), &[0, 2, 4]);
        assert_eq!(st.support_size(), 3);
    }

    #[test]
    #[should_panic(expected = "in range")]
    fn spawn_at_positions_rejects_out_of_range() {
        let g = classic::path(3).unwrap();
        WaltProcess::with_count(1).spawn_at_positions(&g, vec![9]);
    }

    #[test]
    fn support_size_counts_distinct() {
        let g = classic::path(5).unwrap();
        let spec = WaltProcess::with_count(4).lazy(false);
        let st = spec.spawn_at_positions(&g, vec![1, 1, 2, 2]);
        assert_eq!(st.occupied().len(), 4);
        assert_eq!(st.support_size(), 2);
    }

    #[test]
    fn isolated_pairs_walk_independently() {
        // Two pebbles at the same vertex (below threshold 3) must be able
        // to land on different neighbors sometimes.
        let g = classic::star(12).unwrap();
        let spec = WaltProcess::with_count(2).lazy(false);
        let mut rng = StdRng::seed_from_u64(8);
        let mut diverged = false;
        for _ in 0..50 {
            let mut st = spec.spawn(&g, 0);
            st.step(&g, &mut rng);
            let occ = st.occupied();
            if occ[0] != occ[1] {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "independent pair never diverged in 50 trials");
    }
}
