//! Deterministic fault injection for the cobra dynamics.
//!
//! The paper frames cobra walks as a *robust* epidemic primitive; this
//! module makes that robustness measurable. A [`FaultPlan`] describes a
//! round-synchronous fault environment — per-pebble loss, per-vertex
//! crash/recovery windows, one-shot adversarial deletion waves, and
//! delayed delivery through a bounded in-flight queue — and
//! [`FaultyCobraWalk`] runs the `k`-cobra walk inside it, on any
//! [`ImplicitGraph`], through the same [`TypedProcess`]/[`TypedState`]
//! seam every engine already drives.
//!
//! ## Determinism contract
//!
//! Fault randomness is drawn from a **dedicated stream**: on the first
//! step of each trial (and only when the plan actually has probabilistic
//! faults) one `u64` is taken from the trial's main RNG to seed a private
//! `StdRng`. All loss and delay coins come from that private stream, so
//! the *walk's* neighbor draws consume exactly the same main-stream
//! values as the fault-free kernel, and a faulty run is bit-identical
//! across worker counts and batch sizes — each trial's streams depend
//! only on its global trial index.
//!
//! [`FaultPlan::none()`] consumes **zero** extra randomness: no seeding
//! draw, no coins, and the step body reduces to the exact
//! [`CobraState`](crate::cobra::CobraState)-shaped round, so a
//! no-fault [`FaultyCobraWalk`] is bit-identical to [`CobraWalk`](crate::CobraWalk) on the
//! typed, scratch, lane, and implicit routes (pinned in
//! `tests/faults.rs`).
//!
//! ## Fault semantics (round-synchronous)
//!
//! Rounds are 1-indexed: the step producing `S_1` from `S_0` is round 1.
//! During round `r`:
//!
//! 1. **Crashes.** A vertex with an outage window `from_round ≤ r <
//!    until_round` is *down*: pebbles on it are destroyed (it does not
//!    send), newly drawn arrivals to it are rejected, and in-flight
//!    deliveries due at it are dropped. Recovery is implicit — after
//!    `until_round` the vertex participates again as soon as a pebble
//!    reaches it. Overlapping windows nest (depth-counted).
//! 2. **Deletion waves.** A [`DeletionWave`] with `round == r` destroys
//!    the pebbles sitting on its vertices at the start of the round
//!    (they do not send). One-shot, adversarial, no randomness.
//! 3. **Delivery.** In-flight pebbles due this round are delivered first
//!    (into `S_r`), then every surviving active vertex makes its `k`
//!    neighbor draws from the main stream. Each drawn pebble is lost
//!    with probability `pebble_loss` (one fault coin), rejected if its
//!    destination is down (no coin), else delayed with probability
//!    `delay_prob` (one fault coin). A delayed pebble enters the bounded
//!    in-flight queue due next round; if the queue is at
//!    `max_in_flight`, the pebble is dropped — bounded-buffer loss, the
//!    same back-pressure a real gossip transport exhibits.
//!
//! A trial whose frontier and in-flight queue both empty out is *dead*;
//! the measurement drivers observe an empty frontier forever after and
//! censor the trial at its step budget.

use crate::frontier::{reinit_frontier_run, Frontier};
use crate::process::{
    bernoulli, ImplicitDraw, NeighborDraw, Process, ProcessState, StateView, TypedProcess,
    TypedState,
};
use cobra_graph::{Graph, ImplicitGraph, Vertex};
use cobra_obs::{FaultKind, NoopProbe, Probe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One per-vertex crash window: the vertex is down during rounds
/// `from_round ≤ r < until_round` (half-open, 1-indexed rounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexOutage {
    /// The crashed vertex.
    pub vertex: Vertex,
    /// First round (inclusive) the vertex is down.
    pub from_round: usize,
    /// First round (exclusive) the vertex is back up.
    pub until_round: usize,
}

/// One adversarial deletion wave: at the start of round `round`, every
/// pebble sitting on one of `vertices` is destroyed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeletionWave {
    /// The 1-indexed round the wave strikes.
    pub round: usize,
    /// The vertices whose pebbles are destroyed.
    pub vertices: Vec<Vertex>,
}

/// A deterministic, round-synchronous fault environment for
/// [`FaultyCobraWalk`]. See the [module docs](self) for exact semantics
/// and the determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    pebble_loss: f64,
    delay_prob: f64,
    max_in_flight: usize,
    outages: Vec<VertexOutage>,
    deletion_waves: Vec<DeletionWave>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan. Provably consumes zero extra randomness: a
    /// [`FaultyCobraWalk`] under this plan is bit-identical to
    /// [`CobraWalk`](crate::CobraWalk) on every engine route.
    pub fn none() -> Self {
        FaultPlan {
            pebble_loss: 0.0,
            delay_prob: 0.0,
            max_in_flight: 0,
            outages: Vec::new(),
            deletion_waves: Vec::new(),
        }
    }

    /// Whether this plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.pebble_loss == 0.0
            && self.delay_prob == 0.0
            && self.outages.is_empty()
            && self.deletion_waves.is_empty()
    }

    /// Lose each delivered pebble independently with probability `p`.
    pub fn with_pebble_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "pebble_loss must be in [0,1]");
        self.pebble_loss = p;
        self
    }

    /// Delay each surviving pebble independently with probability `p`,
    /// buffering at most `max_in_flight` delayed pebbles at a time
    /// (overflow is dropped — bounded-buffer loss).
    pub fn with_delay(mut self, p: f64, max_in_flight: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay_prob must be in [0,1]");
        self.delay_prob = p;
        self.max_in_flight = max_in_flight;
        self
    }

    /// Crash `vertex` for rounds `from_round ≤ r < until_round`.
    pub fn with_outage(mut self, vertex: Vertex, from_round: usize, until_round: usize) -> Self {
        assert!(
            from_round < until_round,
            "outage window must be non-empty: [{from_round}, {until_round})"
        );
        assert!(from_round >= 1, "rounds are 1-indexed");
        self.outages.push(VertexOutage {
            vertex,
            from_round,
            until_round,
        });
        self
    }

    /// Destroy the pebbles on `vertices` at the start of round `round`.
    pub fn with_deletion_wave(mut self, round: usize, vertices: Vec<Vertex>) -> Self {
        assert!(round >= 1, "rounds are 1-indexed");
        self.deletion_waves.push(DeletionWave { round, vertices });
        self
    }

    /// Per-pebble loss probability.
    pub fn pebble_loss(&self) -> f64 {
        self.pebble_loss
    }

    /// Per-pebble delay probability.
    pub fn delay_prob(&self) -> f64 {
        self.delay_prob
    }

    /// Capacity of the delayed-pebble in-flight queue.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The configured crash windows.
    pub fn outages(&self) -> &[VertexOutage] {
        &self.outages
    }

    /// The configured deletion waves.
    pub fn deletion_waves(&self) -> &[DeletionWave] {
        &self.deletion_waves
    }

    /// Largest vertex id referenced by outages or deletion waves, if any
    /// — used to validate the plan against a graph at spawn.
    fn max_vertex(&self) -> Option<Vertex> {
        let o = self.outages.iter().map(|o| o.vertex);
        let w = self
            .deletion_waves
            .iter()
            .flat_map(|w| w.vertices.iter().copied());
        o.chain(w).max()
    }
}

/// A crash-bitmap edit: at `round`, raise (`down`) or lower the crash
/// depth of `vertex`. Depth-counted so overlapping windows nest.
#[derive(Clone, Copy, Debug)]
struct CrashEvent {
    round: usize,
    vertex: Vertex,
    down: bool,
}

/// The `k`-cobra walk running inside a [`FaultPlan`].
///
/// Under [`FaultPlan::none()`] this is bit-identical to
/// [`CobraWalk`](crate::CobraWalk) (same draws, same stream, same
/// frontier evolution) and keeps its lane-engine eligibility; any real
/// fault disables [`TypedProcess::lane_branching`] so the auto-router
/// keeps faulty runs on the per-trial engines, where the dedicated
/// fault stream makes them bit-identical across worker counts.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultyCobraWalk {
    branching_factor: u32,
    plan: FaultPlan,
}

impl FaultyCobraWalk {
    /// A `k`-cobra walk (`k ≥ 1`) under `plan`.
    pub fn new(branching_factor: u32, plan: FaultPlan) -> Self {
        assert!(branching_factor >= 1, "branching factor must be >= 1");
        FaultyCobraWalk {
            branching_factor,
            plan,
        }
    }

    /// The branching factor `k`.
    pub fn branching_factor(&self) -> u32 {
        self.branching_factor
    }

    /// The fault environment.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Process for FaultyCobraWalk {
    fn name(&self) -> String {
        if self.plan.is_none() {
            format!("faulty-cobra(k={}, none)", self.branching_factor)
        } else {
            format!(
                "faulty-cobra(k={}, loss={}, delay={}, outages={}, waves={})",
                self.branching_factor,
                self.plan.pebble_loss,
                self.plan.delay_prob,
                self.plan.outages.len(),
                self.plan.deletion_waves.len(),
            )
        }
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl<G: ImplicitGraph + ?Sized> TypedProcess<G> for FaultyCobraWalk {
    type State = FaultyCobraState;

    fn spawn_typed(&self, g: &G, start: Vertex) -> FaultyCobraState {
        let n = g.num_vertices();
        assert!((start as usize) < n, "start vertex in range");
        if let Some(v) = self.plan.max_vertex() {
            assert!(
                (v as usize) < n,
                "fault plan references vertex {v} but the graph has {n} vertices"
            );
        }
        let mut cur = Frontier::new(n);
        cur.insert(start);

        // Depth-counted crash edits, sorted by round; within a round the
        // order is irrelevant because depths add.
        let mut crash_events = Vec::with_capacity(self.plan.outages.len() * 2);
        for o in &self.plan.outages {
            crash_events.push(CrashEvent {
                round: o.from_round,
                vertex: o.vertex,
                down: true,
            });
            crash_events.push(CrashEvent {
                round: o.until_round,
                vertex: o.vertex,
                down: false,
            });
        }
        crash_events.sort_by_key(|e| e.round);
        let mut waves = self.plan.deletion_waves.clone();
        waves.sort_by_key(|w| w.round);

        FaultyCobraState {
            k: self.branching_factor,
            plan: self.plan.clone(),
            cur,
            next: Frontier::new(n),
            occ: vec![start],
            round: 0,
            fault_rng: None,
            crash_events,
            crash_cursor: 0,
            crash_depth: if self.plan.outages.is_empty() {
                Vec::new()
            } else {
                vec![0u32; n]
            },
            waves,
            wave_cursor: 0,
            wave_marks: if self.plan.deletion_waves.is_empty() {
                Vec::new()
            } else {
                vec![false; n]
            },
            wave_marked: Vec::new(),
            in_flight: VecDeque::new(),
        }
    }

    fn lane_branching(&self) -> Option<u32> {
        // The no-fault plan is exactly the cobra round shape the lane
        // kernel implements; any real fault is not.
        if self.plan.is_none() {
            Some(self.branching_factor)
        } else {
            None
        }
    }

    fn respawn_typed(&self, g: &G, start: Vertex, state: &mut FaultyCobraState) {
        let n = g.num_vertices();
        if state.cur.capacity() != n || state.plan != self.plan {
            *state = self.spawn_typed(g, start);
            return;
        }
        assert!((start as usize) < n, "start vertex in range");
        state.k = self.branching_factor;
        reinit_frontier_run(&mut state.cur, &mut state.next, &mut state.occ, start);
        state.round = 0;
        // Next trial reseeds its private fault stream from its own main
        // stream — this is what keeps batched trials bit-identical
        // across worker counts.
        state.fault_rng = None;
        state.crash_cursor = 0;
        if !state.crash_depth.is_empty() {
            state.crash_depth.fill(0);
        }
        state.wave_cursor = 0;
        for &v in &state.wave_marked {
            state.wave_marks[v as usize] = false;
        }
        state.wave_marked.clear();
        state.in_flight.clear();
    }
}

/// Mutable state of a running faulty cobra walk.
///
/// The fault-free fields (`cur`/`next`/`occ`) mirror
/// [`CobraState`](crate::cobra::CobraState) exactly; the rest is the
/// fault machinery: the lazily-seeded private fault RNG, the crash-edit
/// cursor + depth map, the deletion-wave cursor + scratch marks, and the
/// bounded in-flight queue of `(due_round, destination)` pebbles.
pub struct FaultyCobraState {
    k: u32,
    plan: FaultPlan,
    cur: Frontier,
    next: Frontier,
    occ: Vec<Vertex>,
    round: usize,
    fault_rng: Option<StdRng>,
    crash_events: Vec<CrashEvent>,
    crash_cursor: usize,
    crash_depth: Vec<u32>,
    waves: Vec<DeletionWave>,
    wave_cursor: usize,
    wave_marks: Vec<bool>,
    wave_marked: Vec<Vertex>,
    in_flight: VecDeque<(usize, Vertex)>,
}

impl FaultyCobraState {
    /// Rounds stepped so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Delayed pebbles currently buffered.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the process can ever deliver another pebble: dead means
    /// both the frontier and the in-flight queue are empty.
    pub fn is_dead(&self) -> bool {
        self.cur.is_empty() && self.in_flight.is_empty()
    }

    /// The shared round body. When the plan is fault-free this reduces
    /// to the exact `CobraState::advance` shape — same draws, same
    /// stream, zero fault overhead (the identity is pinned bit-for-bit
    /// in `tests/faults.rs`).
    #[inline]
    fn advance<const MAINTAIN_OCC: bool, G: ?Sized, D: NeighborDraw<G>, R: Rng + ?Sized>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
    ) {
        self.advance_probed::<MAINTAIN_OCC, G, D, R, NoopProbe>(g, draw, rng, &mut NoopProbe)
    }

    /// [`Self::advance`] with an observation seam. Emits
    /// [`Probe::on_draws`] for the round's neighbor draws and one
    /// [`Probe::on_fault`] per fault kind that fired this round:
    /// [`FaultKind::PebbleLoss`] counts loss-coin hits plus bounded-queue
    /// overflow drops, [`FaultKind::Delay`] counts pebbles buffered into
    /// the in-flight queue, [`FaultKind::Outage`] counts down senders
    /// skipped plus arrivals (drawn or in-flight) rejected by a down
    /// destination, and [`FaultKind::Deletion`] counts waved senders
    /// destroyed. The probe never touches either RNG stream, so a
    /// `NoopProbe` call is bit-identical to the unprobed path — which is
    /// how [`Self::advance`] is implemented.
    #[inline]
    fn advance_probed<
        const MAINTAIN_OCC: bool,
        G: ?Sized,
        D: NeighborDraw<G>,
        R: Rng + ?Sized,
        Pb: Probe,
    >(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
        probe: &mut Pb,
    ) {
        if self.plan.is_none() {
            let FaultyCobraState {
                k, cur, next, occ, ..
            } = self;
            let senders = cur.len() as u64;
            next.clear();
            cur.for_each(|v| {
                draw.draw_many(g, v, *k, rng, |u| next.insert_quiet(u));
            });
            next.finalize_len();
            if MAINTAIN_OCC {
                occ.clear();
                next.for_each(|v| occ.push(v));
            }
            std::mem::swap(cur, next);
            let draws = senders * u64::from(self.k);
            probe.on_draws(draws, draws - self.cur.len() as u64);
            return;
        }

        // Seed the private fault stream on the trial's first faulty
        // step: one u64 from the main stream, then the two streams never
        // touch again.
        if self.fault_rng.is_none() {
            self.fault_rng = Some(StdRng::seed_from_u64(rng.next_u64()));
        }
        self.round += 1;
        let r = self.round;

        // 1. Crash edits due through round r.
        while self.crash_cursor < self.crash_events.len()
            && self.crash_events[self.crash_cursor].round <= r
        {
            let e = self.crash_events[self.crash_cursor];
            let d = &mut self.crash_depth[e.vertex as usize];
            if e.down {
                *d += 1;
            } else {
                *d -= 1;
            }
            self.crash_cursor += 1;
        }

        // 2. Deletion waves striking this round.
        while self.wave_cursor < self.waves.len() && self.waves[self.wave_cursor].round <= r {
            if self.waves[self.wave_cursor].round == r {
                for &v in &self.waves[self.wave_cursor].vertices {
                    if !self.wave_marks[v as usize] {
                        self.wave_marks[v as usize] = true;
                        self.wave_marked.push(v);
                    }
                }
            }
            self.wave_cursor += 1;
        }

        let FaultyCobraState {
            k,
            plan,
            cur,
            next,
            occ,
            fault_rng,
            crash_depth,
            wave_marks,
            in_flight,
            ..
        } = self;
        let frng = fault_rng.as_mut().expect("fault rng seeded above");
        let down = |v: Vertex| !crash_depth.is_empty() && crash_depth[v as usize] > 0;
        let waved = |v: Vertex| !wave_marks.is_empty() && wave_marks[v as usize];

        // Fault tallies feed only the probe; under `NoopProbe` they are
        // dead locals the optimizer strips.
        let mut loss_hits = 0u64;
        let mut delay_hits = 0u64;
        let mut outage_hits = 0u64;
        let mut deletion_hits = 0u64;
        let mut draws_made = 0u64;

        next.clear();

        // 3. Deliver in-flight pebbles due this round (dropped if the
        // destination is down).
        while let Some(&(due, u)) = in_flight.front() {
            if due > r {
                break;
            }
            in_flight.pop_front();
            if !down(u) {
                next.insert_quiet(u);
            } else {
                outage_hits += 1;
            }
        }

        // 4. Surviving senders make their k draws from the main stream;
        // the sink applies loss → crash → delay from the fault stream.
        cur.for_each(|v| {
            if down(v) {
                outage_hits += 1;
                return;
            }
            if waved(v) {
                deletion_hits += 1;
                return;
            }
            draws_made += u64::from(*k);
            draw.draw_many(g, v, *k, rng, |u| {
                if plan.pebble_loss > 0.0 && bernoulli(plan.pebble_loss, frng) {
                    loss_hits += 1;
                    return;
                }
                if down(u) {
                    outage_hits += 1;
                    return;
                }
                if plan.delay_prob > 0.0 && bernoulli(plan.delay_prob, frng) {
                    if in_flight.len() < plan.max_in_flight {
                        in_flight.push_back((r + 1, u));
                        delay_hits += 1;
                    } else {
                        loss_hits += 1;
                    }
                    return;
                }
                next.insert_quiet(u);
            });
        });
        next.finalize_len();
        if MAINTAIN_OCC {
            occ.clear();
            next.for_each(|v| occ.push(v));
        }
        std::mem::swap(cur, next);

        // 5. Retire this round's wave marks.
        for &v in self.wave_marked.iter() {
            self.wave_marks[v as usize] = false;
        }
        self.wave_marked.clear();

        probe.on_draws(draws_made, 0);
        if loss_hits > 0 {
            probe.on_fault(FaultKind::PebbleLoss, loss_hits);
        }
        if delay_hits > 0 {
            probe.on_fault(FaultKind::Delay, delay_hits);
        }
        if outage_hits > 0 {
            probe.on_fault(FaultKind::Outage, outage_hits);
        }
        if deletion_hits > 0 {
            probe.on_fault(FaultKind::Deletion, deletion_hits);
        }
    }
}

impl StateView for FaultyCobraState {
    fn occupied(&self) -> &[Vertex] {
        &self.occ
    }

    fn support_size(&self) -> usize {
        self.cur.len()
    }

    fn frontier(&self) -> Option<&Frontier> {
        Some(&self.cur)
    }
}

impl<G: ImplicitGraph + ?Sized> TypedState<G> for FaultyCobraState {
    fn step<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        self.advance::<true, G, _, R>(g, &ImplicitDraw, rng);
    }

    fn step_fast<R: Rng + ?Sized>(&mut self, g: &G, rng: &mut R) {
        self.advance::<false, G, _, R>(g, &ImplicitDraw, rng);
    }

    fn step_sampled<D: NeighborDraw<G>, R: Rng + ?Sized>(&mut self, g: &G, draw: &D, rng: &mut R) {
        self.advance::<false, G, D, R>(g, draw, rng);
    }

    fn step_probed<D: NeighborDraw<G>, R: Rng + ?Sized, Pb: Probe>(
        &mut self,
        g: &G,
        draw: &D,
        rng: &mut R,
        probe: &mut Pb,
    ) {
        self.advance_probed::<false, G, D, R, Pb>(g, draw, rng, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CobraWalk;
    use cobra_graph::generators::{classic, grid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sorted_occ(st: &dyn ProcessState) -> Vec<Vertex> {
        let mut v = st.occupied().to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn none_plan_is_bit_identical_to_cobra_dyn_route() {
        let g = grid::grid(&[6, 6]);
        let plain = CobraWalk::standard();
        let faulty = FaultyCobraWalk::new(2, FaultPlan::none());
        let mut a = plain.spawn(&g, 0);
        let mut b = faulty.spawn(&g, 0);
        let mut ra = StdRng::seed_from_u64(99);
        let mut rb = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            a.step(&g, &mut ra);
            b.step(&g, &mut rb);
            assert_eq!(sorted_occ(a.as_ref()), sorted_occ(b.as_ref()));
        }
        // Zero extra randomness: both RNGs sit at the same stream point.
        assert_eq!(ra.next_u64(), rb.next_u64());
    }

    #[test]
    fn none_plan_keeps_lane_eligibility_faulty_does_not() {
        let none = FaultyCobraWalk::new(2, FaultPlan::none());
        assert_eq!(TypedProcess::<Graph>::lane_branching(&none), Some(2));
        let lossy = FaultyCobraWalk::new(2, FaultPlan::none().with_pebble_loss(0.1));
        assert_eq!(TypedProcess::<Graph>::lane_branching(&lossy), None);
    }

    #[test]
    fn full_loss_kills_the_walk() {
        let g = classic::complete(16).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_pebble_loss(1.0));
        let mut st = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(7);
        TypedState::step(&mut st, &g, &mut rng);
        assert!(st.is_dead());
        assert_eq!(StateView::support_size(&st), 0);
        // Dead processes keep stepping without panicking (drivers censor).
        TypedState::step(&mut st, &g, &mut rng);
        assert!(st.is_dead());
    }

    #[test]
    fn crashed_vertex_neither_sends_nor_receives() {
        // Path 0-1-2: crash vertex 1 forever. A walk from 0 can only draw
        // vertex 1, every arrival is rejected, so the frontier dies the
        // round the start's pebble moves.
        let g = classic::path(3).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_outage(1, 1, usize::MAX));
        let mut st = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(5);
        TypedState::step(&mut st, &g, &mut rng);
        assert_eq!(
            StateView::support_size(&st),
            0,
            "all arrivals rejected by crashed hub"
        );
        assert!(st.is_dead());
    }

    #[test]
    fn crash_recovery_window_is_half_open() {
        // Crash vertex 1 for round 1 only ([1, 2)); in round 2 it accepts
        // again. Start at 0 on the path 0-1-2: round 1 dies at the hub…
        let g = classic::path(3).unwrap();
        let spec = FaultyCobraWalk::new(1, FaultPlan::none().with_outage(1, 1, 2));
        let mut st = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(5);
        TypedState::step(&mut st, &g, &mut rng);
        assert!(st.is_dead());
        // …but a fresh run whose outage covers neither round survives:
        let spec2 = FaultyCobraWalk::new(1, FaultPlan::none().with_outage(1, 5, 6));
        let mut st2 = spec2.spawn_typed(&g, 0);
        let mut rng2 = StdRng::seed_from_u64(5);
        TypedState::step(&mut st2, &g, &mut rng2);
        assert_eq!(
            StateView::support_size(&st2),
            1,
            "hub up in round 1 accepts the pebble"
        );
    }

    #[test]
    fn deletion_wave_destroys_pebbles_at_round_start() {
        // Wave at round 1 on the start vertex: the only pebble is
        // destroyed before it can send.
        let g = classic::complete(8).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_deletion_wave(1, vec![3]));
        let mut st = spec.spawn_typed(&g, 3);
        let mut rng = StdRng::seed_from_u64(11);
        TypedState::step(&mut st, &g, &mut rng);
        assert!(st.is_dead());
        // A wave elsewhere leaves the walk alone.
        let spec2 = FaultyCobraWalk::new(2, FaultPlan::none().with_deletion_wave(1, vec![4]));
        let mut st2 = spec2.spawn_typed(&g, 3);
        let mut rng2 = StdRng::seed_from_u64(11);
        TypedState::step(&mut st2, &g, &mut rng2);
        assert!(StateView::support_size(&st2) >= 1);
    }

    #[test]
    fn delayed_pebbles_arrive_one_round_late() {
        // delay_prob = 1 with ample queue: round 1 delivers nothing (all
        // pebbles buffered), round 2 delivers round 1's draws and buffers
        // nothing new (the frontier was empty in round 2).
        let g = classic::complete(8).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_delay(1.0, 64));
        let mut st = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(13);
        TypedState::step(&mut st, &g, &mut rng);
        assert_eq!(StateView::support_size(&st), 0);
        assert_eq!(st.in_flight_len(), 2);
        assert!(!st.is_dead());
        TypedState::step(&mut st, &g, &mut rng);
        assert!(
            StateView::support_size(&st) >= 1,
            "buffered pebbles delivered"
        );
        assert_eq!(st.in_flight_len(), 0);
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let g = classic::complete(8).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_delay(1.0, 1));
        let mut st = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(17);
        TypedState::step(&mut st, &g, &mut rng);
        assert_eq!(st.in_flight_len(), 1, "second delayed pebble dropped");
    }

    #[test]
    fn faulty_run_is_deterministic_under_seed() {
        let g = grid::grid(&[5, 5]);
        let plan = FaultPlan::none()
            .with_pebble_loss(0.2)
            .with_delay(0.3, 16)
            .with_outage(7, 3, 9)
            .with_deletion_wave(5, vec![0, 1, 2]);
        let spec = FaultyCobraWalk::new(2, plan);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut st = spec.spawn_typed(&g, 12);
            let mut rng = StdRng::seed_from_u64(21);
            for _ in 0..40 {
                TypedState::step(&mut st, &g, &mut rng);
            }
            let mut occ = StateView::occupied(&st).to_vec();
            occ.sort_unstable();
            runs.push((occ, rng.next_u64(), st.in_flight_len()));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn respawn_matches_fresh_spawn() {
        let g = grid::grid(&[5, 5]);
        let plan = FaultPlan::none()
            .with_pebble_loss(0.1)
            .with_delay(0.2, 8)
            .with_outage(3, 2, 4);
        let spec = FaultyCobraWalk::new(2, plan);
        // Run a trial, respawn, run again; compare against two fresh
        // spawns on the same seeds.
        let mut reused = spec.spawn_typed(&g, 0);
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..25 {
            TypedState::step(&mut reused, &g, &mut rng);
        }
        spec.respawn_typed(&g, 4, &mut reused);
        let mut rng2 = StdRng::seed_from_u64(33);
        for _ in 0..25 {
            TypedState::step(&mut reused, &g, &mut rng2);
        }
        let mut fresh = spec.spawn_typed(&g, 4);
        let mut rng3 = StdRng::seed_from_u64(33);
        for _ in 0..25 {
            TypedState::step(&mut fresh, &g, &mut rng3);
        }
        assert_eq!(
            StateView::frontier(&reused).unwrap().to_sorted_vec(),
            StateView::frontier(&fresh).unwrap().to_sorted_vec()
        );
        assert_eq!(rng2.next_u64(), rng3.next_u64());
    }

    #[test]
    fn plan_validation_rejects_bad_probabilities_and_vertices() {
        assert!(std::panic::catch_unwind(|| FaultPlan::none().with_pebble_loss(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| FaultPlan::none().with_delay(-0.1, 4)).is_err());
        assert!(std::panic::catch_unwind(|| FaultPlan::none().with_outage(0, 3, 3)).is_err());
        let g = classic::cycle(4).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_outage(9, 1, 2));
        assert!(std::panic::catch_unwind(|| spec.spawn_typed(&g, 0)).is_err());
    }

    #[test]
    fn lossy_walk_still_covers_complete_graph() {
        use crate::measure::CoverDriver;
        let g = classic::complete(32).unwrap();
        let spec = FaultyCobraWalk::new(2, FaultPlan::none().with_pebble_loss(0.05));
        let mut rng = StdRng::seed_from_u64(41);
        let res = CoverDriver::new(&g)
            .run(&spec, 0, 100_000, &mut rng)
            .expect("lossy cobra still covers K_32");
        assert_eq!(res.covered, 32);
    }
}
