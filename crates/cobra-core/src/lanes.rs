//! Bit-sliced multi-trial cover kernel: 64 independent trials per pass.
//!
//! The dense-phase [`crate::frontier::Frontier`] is already a bitset whose
//! cobra step is word-parallel ORs. This module transposes that layout
//! across *trials* instead of vertices: one `u64` per vertex, where bit
//! `j` of `cur[v]` means "trial (lane) `j`'s frontier currently contains
//! `v`". One pass over the vertices then advances up to [`LANE_WIDTH`]
//! trials at once — the SIMD-across-instances trick of bit-parallel
//! BFS/reachability kernels — which is exactly the regime where the
//! per-trial scratch engine loses: small `n`, cheap covers, thousands of
//! trials, dispatch overhead per trial comparable to the cover itself.
//!
//! ## Draw sharing (and why it is statistically sound)
//!
//! Running 64 serial trials costs 64× the neighbor draws; the lane kernel
//! amortizes them. Two regimes per round `t`:
//!
//! * **Burn-in** (`t ≤ LANE_BURNIN`): every lane draws independently —
//!   for each set lane bit of `cur[v]`, `k` fresh draws. All lanes start
//!   at the same vertex, so *any* scheme that hands identical lane-sets
//!   identical draws would keep them identical forever (64 copies of one
//!   trial). Frontiers are tiny in these rounds, so full independence is
//!   cheap, and it decorrelates the lanes before sharing begins.
//! * **Pooled** (`t > LANE_BURNIN`): per active vertex the kernel draws
//!   `2k` neighbors once and splits the active lanes into two pool slots
//!   by the *parity of their rank* among the set bits of `cur[v] & alive`
//!   — even-rank lanes receive the first `k` draws, odd-rank lanes the
//!   second `k` (skipped when no odd-rank lane is present).
//!
//! Each lane's **marginal** law is exactly the `k`-cobra walk: the pool
//! draws are fresh iid uniform neighbors, and a lane's slot assignment is
//! a function of the *current* global state only (measurable w.r.t. the
//! past), so conditional on any lane's history its `k` draws per active
//! vertex are iid uniform. What sharing introduces is *cross-lane*
//! correlation within a batch — two lanes at the same vertex with equal
//! rank parity move together that round. Rank parity is the anti-glue:
//! whether two transiently identical lanes share a slot at `v` depends on
//! which *other* lanes are active at `v`, which varies per vertex and per
//! round, so collided lanes split again instead of forming a permanently
//! glued class. The serial engine therefore remains the oracle at the
//! *distribution* level (per-trial streams necessarily differ), which is
//! what `tests/lanes.rs` pins with a KS test against
//! [`crate::measure::CoverDriver::run_typed`].
//!
//! ## Retirement and censoring
//!
//! Coverage is transposed the same way (`cov[v]` bit `j` = lane `j` has
//! covered `v`) with a per-lane covered-count; a lane retires from the
//! `alive` mask the round its count reaches `n` (its cover step is
//! recorded), and lanes still alive after `max_steps` are censored. The
//! per-lane cover definition matches the serial drivers exactly: the
//! start vertex counts at step 0, each round's *new* frontier is unioned,
//! and the cover step is the first round at which coverage is complete.

use cobra_graph::{Graph, NeighborSampler, Vertex};
use cobra_obs::{NoopProbe, Probe};
use rand::Rng;

/// Number of trials one lane pass advances: the bits of a `u64`.
pub const LANE_WIDTH: usize = 64;

/// Rounds of fully independent per-lane draws before pooled sharing
/// begins. Three doubling rounds spread the lanes (which all start at the
/// same vertex) far enough apart that shared pool draws cannot collapse
/// the batch, while frontiers are still small enough that independence
/// costs almost nothing.
const LANE_BURNIN: usize = 3;

/// Reusable buffers for one lane batch: the transposed frontier pair and
/// coverage words, one `u64` per vertex each. Build once per worker (the
/// lane analogue of [`crate::TrialScratch`]) and reuse across batches;
/// [`run_lane_cover`] re-zeroes in O(n) words per batch, amortized over
/// the up-to-64 trials the batch carries.
#[derive(Clone, Debug)]
pub struct LaneScratch {
    /// Current frontier, transposed: bit `j` of `cur[v]` = lane `j` is at
    /// `v` this round.
    cur: Vec<u64>,
    /// Next frontier being built by the in-flight round.
    next: Vec<u64>,
    /// Transposed coverage: bit `j` of `cov[v]` = lane `j` has covered `v`.
    cov: Vec<u64>,
}

impl LaneScratch {
    /// Buffers sized for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        LaneScratch {
            cur: vec![0; n],
            next: vec![0; n],
            cov: vec![0; n],
        }
    }

    /// Vertex capacity the buffers are currently sized for.
    pub fn capacity(&self) -> usize {
        self.cur.len()
    }

    /// Resize (if the graph changed) and zero everything for a new batch.
    fn prepare(&mut self, n: usize) {
        if self.cur.len() != n {
            self.cur.resize(n, 0);
            self.next.resize(n, 0);
            self.cov.resize(n, 0);
        }
        self.cur.fill(0);
        self.next.fill(0);
        self.cov.fill(0);
    }
}

/// Outcome of one lane batch: which lanes ran, which completed, and each
/// lane's cover step (or the censoring budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneOutcome {
    /// The lanes that ran (the `lane_mask` argument).
    pub lane_mask: u64,
    /// Lanes that covered the graph within the budget (⊆ `lane_mask`).
    pub completed: u64,
    /// Per-lane cover step; `max_steps` for censored lanes, 0 for lanes
    /// outside `lane_mask`.
    pub steps: [u32; LANE_WIDTH],
}

impl LaneOutcome {
    /// Lane `j`'s measured cover time: `Some(steps)` if it completed,
    /// `None` if it was censored. Panics if `j` was not in the batch.
    pub fn cover_time(&self, lane: usize) -> Option<usize> {
        assert!(lane < LANE_WIDTH, "lane index out of range");
        assert!(
            self.lane_mask >> lane & 1 == 1,
            "lane {lane} was not in the batch"
        );
        (self.completed >> lane & 1 == 1).then_some(self.steps[lane] as usize)
    }
}

/// Bit `i` = parity of the number of set bits of `m` strictly below `i`
/// (a prefix-XOR scan: six shift-XORs, branch-free). Splitting a lane set
/// `m` into `m & !parity` / `m & parity` yields its even-rank and
/// odd-rank halves — the pool-slot assignment of the shared-draw phase.
#[inline]
fn rank_parity_mask(m: u64) -> u64 {
    let mut z = m << 1;
    z ^= z << 1;
    z ^= z << 2;
    z ^= z << 4;
    z ^= z << 8;
    z ^= z << 16;
    z ^= z << 32;
    z
}

/// Run up to 64 cover trials of the `k`-out-choice frontier process (the
/// `k`-cobra walk; `k = 1` is the non-lazy simple walk) simultaneously,
/// all starting at `start`, for the lanes set in `lane_mask`.
///
/// Draws come from `rng` in a fixed deterministic order (ascending vertex,
/// then lane/slot order — see the module docs), so the outcome is a pure
/// function of `(g, k, start, lane_mask, max_steps, rng seed)`. Note the
/// mask shapes the draw stream: callers wanting prefix-comparable batches
/// must run full-width masks and truncate at aggregation, which is what
/// `cobra_sim::run_cover_trials_lanes` does.
#[allow(clippy::too_many_arguments)] // mirrors run_typed_in's driver shape
pub fn run_lane_cover<R: Rng + ?Sized>(
    g: &Graph,
    sampler: &NeighborSampler,
    k: u32,
    start: Vertex,
    lane_mask: u64,
    max_steps: usize,
    scratch: &mut LaneScratch,
    rng: &mut R,
) -> LaneOutcome {
    run_lane_cover_probed(
        g,
        sampler,
        k,
        start,
        lane_mask,
        max_steps,
        scratch,
        rng,
        &mut NoopProbe,
    )
}

/// [`run_lane_cover`] with an observation seam. The probe's unit is the
/// whole 64-lane batch: per round it sees the live-lane count
/// ([`cobra_obs::Probe::on_round`]), the pooled draw total
/// ([`cobra_obs::Probe::on_draws`], merged count 0 — coalescing is
/// cross-lane here and not attributable to individual draws), and the
/// number of newly covered (vertex, lane) pairs
/// ([`cobra_obs::Probe::on_coverage`]). The probe never touches the RNG,
/// so `run_lane_cover_probed(.., &mut NoopProbe)` is bit-identical to
/// [`run_lane_cover`] — which is in fact how the unprobed entry point is
/// implemented.
#[allow(clippy::too_many_arguments)] // mirrors run_typed_in's driver shape
pub fn run_lane_cover_probed<R: Rng + ?Sized, Pb: Probe>(
    g: &Graph,
    sampler: &NeighborSampler,
    k: u32,
    start: Vertex,
    lane_mask: u64,
    max_steps: usize,
    scratch: &mut LaneScratch,
    rng: &mut R,
    probe: &mut Pb,
) -> LaneOutcome {
    let n = g.num_vertices();
    assert!(n > 0, "cover of the empty graph is undefined");
    assert!((start as usize) < n, "start vertex in range");
    assert!(lane_mask != 0, "need at least one lane");
    assert!(k >= 1, "branching factor must be >= 1");
    assert!(max_steps >= 1, "need a positive step budget");
    assert!(
        max_steps <= u32::MAX as usize,
        "step budget must fit in u32"
    );

    scratch.prepare(n);
    let LaneScratch { cur, next, cov } = scratch;

    let mut counts = [0u32; LANE_WIDTH];
    let mut steps = [0u32; LANE_WIDTH];
    let mut completed = 0u64;
    let mut alive = lane_mask;

    // Initial configuration: every lane's pebble (and coverage) at start.
    cur[start as usize] = lane_mask;
    cov[start as usize] = lane_mask;
    {
        let mut m = lane_mask;
        while m != 0 {
            counts[m.trailing_zeros() as usize] = 1;
            m &= m - 1;
        }
    }
    // Coverage is counted in (vertex, lane) pairs: the start vertex is
    // covered in every lane of the batch at step 0.
    let mut covered_pairs = u64::from(lane_mask.count_ones());
    probe.on_coverage(covered_pairs, covered_pairs);
    if n == 1 {
        // Covered at step 0, matching the serial drivers.
        probe.on_trial_end(0, true);
        return LaneOutcome {
            lane_mask,
            completed: lane_mask,
            steps,
        };
    }

    let n_u32 = n as u32;
    let mut last_round = 0u64;
    for t in 1..=max_steps {
        // Advance every live lane one round. The draw counter feeds only
        // the probe; under `NoopProbe` it is dead and optimized away.
        let mut round_draws = 0u64;
        for (v, &cur_v) in cur.iter().enumerate() {
            let lanes = cur_v & alive;
            if lanes == 0 {
                continue;
            }
            let bound = sampler.bind(g, v as Vertex);
            if t <= LANE_BURNIN {
                // Independent draws per lane, ascending lane order.
                let mut m = lanes;
                while m != 0 {
                    let bit = m & m.wrapping_neg();
                    for _ in 0..k {
                        next[bound.draw(rng) as usize] |= bit;
                    }
                    round_draws += u64::from(k);
                    m ^= bit;
                }
            } else {
                // Pooled draws: 2k draws split across the even-rank and
                // odd-rank halves of the lane set.
                let parity = rank_parity_mask(lanes);
                let even = lanes & !parity;
                let odd = lanes & parity;
                for _ in 0..k {
                    next[bound.draw(rng) as usize] |= even;
                }
                round_draws += u64::from(k);
                if odd != 0 {
                    for _ in 0..k {
                        next[bound.draw(rng) as usize] |= odd;
                    }
                    round_draws += u64::from(k);
                }
            }
        }

        // Union the new frontier into coverage and retire finished lanes.
        let mut finished = 0u64;
        let mut newly_pairs = 0u64;
        for v in 0..n {
            let newly = next[v] & alive & !cov[v];
            if newly != 0 {
                cov[v] |= newly;
                newly_pairs += u64::from(newly.count_ones());
                let mut m = newly;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    counts[j] += 1;
                    if counts[j] == n_u32 {
                        finished |= 1u64 << j;
                    }
                    m &= m - 1;
                }
            }
        }
        if finished != 0 {
            let mut m = finished;
            while m != 0 {
                steps[m.trailing_zeros() as usize] = t as u32;
                m &= m - 1;
            }
            completed |= finished;
            alive &= !finished;
        }

        covered_pairs += newly_pairs;
        last_round = t as u64;
        probe.on_draws(round_draws, 0);
        probe.on_round(t as u64, u64::from(alive.count_ones()));
        probe.on_coverage(newly_pairs, covered_pairs);

        std::mem::swap(cur, next);
        next.fill(0);
        if alive == 0 {
            break;
        }
    }
    probe.on_trial_end(last_round, alive == 0);

    // Censor whatever is still running.
    let mut m = alive;
    while m != 0 {
        steps[m.trailing_zeros() as usize] = max_steps as u32;
        m &= m - 1;
    }
    LaneOutcome {
        lane_mask,
        completed,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::CoverDriver;
    use crate::CobraWalk;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Naive rank-parity oracle: walk the set bits in ascending order.
    fn rank_parity_oracle(m: u64) -> u64 {
        let mut parity = 0u64;
        let mut rank = 0u32;
        for i in 0..64 {
            if m >> i & 1 == 1 {
                if rank % 2 == 1 {
                    parity |= 1 << i;
                }
                rank += 1;
            }
        }
        parity
    }

    #[test]
    fn rank_parity_matches_oracle() {
        let cases = [
            0u64,
            1,
            0b1010,
            0b1011,
            u64::MAX,
            1 << 63,
            0x8000_0000_0000_0001,
            0xDEAD_BEEF_CAFE_F00D,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
        ];
        for &m in &cases {
            assert_eq!(
                m & rank_parity_mask(m),
                rank_parity_oracle(m),
                "mask {m:#x}"
            );
        }
        // And a deterministic pseudo-random sweep.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..500 {
            x = x.wrapping_mul(0xD129_0918_2F91_2A3F).wrapping_add(1);
            assert_eq!(x & rank_parity_mask(x), rank_parity_oracle(x), "{x:#x}");
        }
    }

    #[test]
    fn single_vertex_completes_at_step_zero() {
        // A 1-vertex graph is covered by its start configuration; no draw
        // ever happens, so the isolated vertex never trips the sampler.
        let g1 = cobra_graph::Graph::empty(1);
        let sampler = NeighborSampler::new(&g1);
        let mut scratch = LaneScratch::new(&g1);
        let mut rng = StdRng::seed_from_u64(0);
        let out = run_lane_cover(&g1, &sampler, 2, 0, u64::MAX, 100, &mut scratch, &mut rng);
        assert_eq!(out.completed, u64::MAX);
        assert!(out.steps.iter().all(|&s| s == 0));
    }

    #[test]
    fn all_lanes_cover_a_complete_graph() {
        let g = classic::complete(16).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let out = run_lane_cover(
            &g,
            &sampler,
            2,
            0,
            u64::MAX,
            100_000,
            &mut scratch,
            &mut rng,
        );
        assert_eq!(out.completed, u64::MAX, "K16 must always cover");
        for j in 0..LANE_WIDTH {
            let s = out.cover_time(j).expect("completed");
            // Coverage after t rounds is at most 2^{t+1} - 1 with k = 2.
            assert!(s >= 4, "lane {j}: covered K16 in {s} < 4 rounds");
            assert!(s < 100_000);
        }
    }

    #[test]
    fn lanes_decorrelate_after_burn_in() {
        // The whole point of burn-in + rank-parity pooling: the batch must
        // not collapse into 64 copies of one trial. On K16 the probability
        // of even two independent trials tying their cover step is modest;
        // 64 distinct lanes sharing draws must still produce a spread.
        let g = classic::complete(16).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let out = run_lane_cover(
            &g,
            &sampler,
            2,
            0,
            u64::MAX,
            100_000,
            &mut scratch,
            &mut rng,
        );
        let distinct: std::collections::HashSet<u32> = out.steps.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "lane cover steps collapsed: {:?}",
            out.steps
        );
    }

    #[test]
    fn partial_mask_runs_only_those_lanes() {
        let g = classic::complete(12).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let mask = 0b1011u64;
        let out = run_lane_cover(&g, &sampler, 2, 0, mask, 100_000, &mut scratch, &mut rng);
        assert_eq!(out.lane_mask, mask);
        assert_eq!(out.completed, mask);
        for j in 0..LANE_WIDTH {
            if mask >> j & 1 == 1 {
                assert!(out.cover_time(j).is_some());
            } else {
                assert_eq!(out.steps[j], 0, "lane {j} outside the mask ran");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in the batch")]
    fn cover_time_rejects_lane_outside_mask() {
        let g = classic::complete(8).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_lane_cover(&g, &sampler, 2, 0, 0b1, 10_000, &mut scratch, &mut rng);
        out.cover_time(5);
    }

    #[test]
    fn tiny_budget_censors_every_lane() {
        let g = classic::path(64).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let out = run_lane_cover(&g, &sampler, 1, 0, u64::MAX, 3, &mut scratch, &mut rng);
        assert_eq!(out.completed, 0, "3 steps cannot cover a 64-path");
        assert!(out.steps.iter().all(|&s| s == 3));
        assert_eq!(out.cover_time(0), None);
    }

    #[test]
    fn deterministic_under_seed_and_scratch_reuse() {
        let g = classic::cycle(48).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(77);
        let a = run_lane_cover(
            &g,
            &sampler,
            2,
            0,
            u64::MAX,
            100_000,
            &mut scratch,
            &mut rng,
        );
        // Reuse the same scratch (dirty from run a) with a re-seeded RNG.
        let mut rng = StdRng::seed_from_u64(77);
        let b = run_lane_cover(
            &g,
            &sampler,
            2,
            0,
            u64::MAX,
            100_000,
            &mut scratch,
            &mut rng,
        );
        assert_eq!(a, b);
        // And a fresh scratch gives the same answer.
        let mut fresh = LaneScratch::new(&g);
        let mut rng = StdRng::seed_from_u64(77);
        let c = run_lane_cover(&g, &sampler, 2, 0, u64::MAX, 100_000, &mut fresh, &mut rng);
        assert_eq!(a, c);
    }

    #[test]
    fn scratch_resizes_across_graphs() {
        let small = classic::cycle(8).unwrap();
        let big = classic::cycle(200).unwrap();
        let mut scratch = LaneScratch::new(&small);
        assert_eq!(scratch.capacity(), 8);
        let sampler = NeighborSampler::new(&big);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_lane_cover(
            &big,
            &sampler,
            2,
            0,
            u64::MAX,
            1_000_000,
            &mut scratch,
            &mut rng,
        );
        assert_eq!(scratch.capacity(), 200);
        assert_eq!(out.completed, u64::MAX);
    }

    #[test]
    fn lane_mean_tracks_serial_mean() {
        // Coarse distribution sanity in-crate (the KS test lives in
        // tests/lanes.rs): the mean lane cover time over several batches
        // must land near the serial engine's mean over the same number of
        // trials. Deterministic seeds, generous tolerance.
        let g = classic::complete(32).unwrap();
        let sampler = NeighborSampler::new(&g);
        let mut scratch = LaneScratch::new(&g);
        let batches = 8;
        let mut lane_sum = 0.0;
        for b in 0..batches {
            let mut rng = StdRng::seed_from_u64(1000 + b);
            let out = run_lane_cover(
                &g,
                &sampler,
                2,
                0,
                u64::MAX,
                100_000,
                &mut scratch,
                &mut rng,
            );
            assert_eq!(out.completed, u64::MAX);
            lane_sum += out.steps.iter().map(|&s| s as f64).sum::<f64>();
        }
        let lane_mean = lane_sum / (batches as f64 * LANE_WIDTH as f64);

        let cobra = CobraWalk::standard();
        let driver = CoverDriver::new(&g);
        let serial_trials = 512;
        let mut serial_sum = 0.0;
        for i in 0..serial_trials {
            let mut rng = StdRng::seed_from_u64(50_000 + i);
            let res = driver.run_typed(&cobra, 0, 100_000, &mut rng).unwrap();
            serial_sum += res.steps as f64;
        }
        let serial_mean = serial_sum / serial_trials as f64;
        assert!(
            (lane_mean - serial_mean).abs() / serial_mean < 0.15,
            "lane mean {lane_mean:.2} vs serial mean {serial_mean:.2}"
        );
    }
}
