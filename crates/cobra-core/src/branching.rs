//! Pure branching random walks (Harris; Benjamini–Müller; paper §1.2).
//!
//! The "branching half" of the cobra dynamics: each walker spawns `k`
//! children who move to independent random neighbors, with **no**
//! coalescence. The population grows like `k^t`, so the process carries a
//! population cap: it is a reference *upper envelope* for how fast any
//! branching process can spread, used to quantify how much coalescence
//! costs the cobra walk (the gap between the two is the "time's arrow"
//! effect of §1.2).

use crate::process::{sample_index, Process, ProcessState};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Specification of a capped branching random walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchingWalk {
    branching_factor: u32,
    max_population: usize,
}

impl BranchingWalk {
    /// A branching walk with factor `k ≥ 1` and a population cap (children
    /// beyond the cap are dropped uniformly by truncation each round).
    pub fn new(branching_factor: u32, max_population: usize) -> Self {
        assert!(branching_factor >= 1, "branching factor must be >= 1");
        assert!(max_population >= 1, "population cap must be >= 1");
        BranchingWalk {
            branching_factor,
            max_population,
        }
    }

    /// The branching factor `k`.
    pub fn branching_factor(&self) -> u32 {
        self.branching_factor
    }

    /// The population cap.
    pub fn max_population(&self) -> usize {
        self.max_population
    }
}

impl Process for BranchingWalk {
    fn name(&self) -> String {
        format!(
            "branching-rw(k={},cap={})",
            self.branching_factor, self.max_population
        )
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        Box::new(BranchingState {
            k: self.branching_factor,
            cap: self.max_population,
            population: vec![start],
            next: Vec::new(),
        })
    }
}

struct BranchingState {
    k: u32,
    cap: usize,
    population: Vec<Vertex>,
    next: Vec<Vertex>,
}

impl ProcessState for BranchingState {
    fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
        self.next.clear();
        'outer: for &v in &self.population {
            let ns = g.neighbors(v);
            debug_assert!(!ns.is_empty(), "branching walk requires min degree >= 1");
            for _ in 0..self.k {
                self.next.push(ns[sample_index(ns.len(), rng)]);
                if self.next.len() >= self.cap {
                    break 'outer;
                }
            }
        }
        std::mem::swap(&mut self.population, &mut self.next);
    }

    fn occupied(&self) -> &[Vertex] {
        &self.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn population_grows_by_k_until_cap() {
        let g = classic::complete(50).unwrap();
        let spec = BranchingWalk::new(2, 1000);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut expected = 1usize;
        for _ in 0..8 {
            st.step(&g, &mut rng);
            expected = (expected * 2).min(1000);
            assert_eq!(st.occupied().len(), expected);
        }
    }

    #[test]
    fn population_respects_cap() {
        let g = classic::complete(10).unwrap();
        let spec = BranchingWalk::new(3, 25);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            st.step(&g, &mut rng);
            assert!(st.occupied().len() <= 25);
        }
        assert_eq!(st.occupied().len(), 25);
    }

    #[test]
    fn children_land_on_neighbors() {
        let g = classic::star(8).unwrap();
        let spec = BranchingWalk::new(2, 100);
        let mut st = spec.spawn(&g, 0); // hub
        let mut rng = StdRng::seed_from_u64(3);
        st.step(&g, &mut rng);
        for &v in st.occupied() {
            assert!(v >= 1, "children of the hub are leaves");
        }
        st.step(&g, &mut rng);
        for &v in st.occupied() {
            assert_eq!(v, 0, "grandchildren must be back at the hub");
        }
    }

    #[test]
    fn duplicates_are_allowed() {
        // With k=2 from a degree-1 vertex both children land on the same
        // neighbor — branching walks do NOT coalesce.
        let g = classic::path(3).unwrap();
        let spec = BranchingWalk::new(2, 100);
        let mut st = spec.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(4);
        st.step(&g, &mut rng);
        assert_eq!(st.occupied(), &[1, 1]);
    }

    #[test]
    fn accessors_and_name() {
        let spec = BranchingWalk::new(4, 7);
        assert_eq!(spec.branching_factor(), 4);
        assert_eq!(spec.max_population(), 7);
        assert_eq!(spec.name(), "branching-rw(k=4,cap=7)");
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_zero_cap() {
        BranchingWalk::new(2, 0);
    }
}
