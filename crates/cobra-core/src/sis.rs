//! A non-idealized SIS epidemic process.
//!
//! The paper motivates cobra walks as "an idealized process within the
//! Susceptible-Infected-Susceptible model" where transmission is certain.
//! This module provides the non-idealized version: each infected vertex
//! contacts `k` random neighbors per round and each contact transmits
//! independently with probability `p ≤ 1`; the vertex then recovers
//! (and can be reinfected immediately, as in the paper's description).
//!
//! * `p = 1` recovers exactly the `k`-cobra walk;
//! * `p·k ≤ 1` puts the branching factor at/below critical, so the
//!   infection can **die out** — `occupied()` may become empty, and
//!   drivers report never-completed coverage. This boundary is exercised
//!   by tests and gives the epidemic example its subcritical regime.

use crate::frontier::Frontier;
use crate::process::{
    bernoulli, BoundDraw, DrawOnTheFly, NeighborDraw, Process, ProcessState, TypedProcess,
    TypedState,
};
use cobra_graph::{Graph, Vertex};
use rand::Rng;

/// Specification of the SIS process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SisProcess {
    contacts: u32,
    transmit_prob: f64,
}

impl SisProcess {
    /// `contacts ≥ 1` contacts per round, each transmitting with
    /// probability `transmit_prob ∈ [0, 1]`.
    pub fn new(contacts: u32, transmit_prob: f64) -> Self {
        assert!(contacts >= 1, "need at least one contact per round");
        assert!(
            (0.0..=1.0).contains(&transmit_prob),
            "transmission probability in [0, 1]"
        );
        SisProcess {
            contacts,
            transmit_prob,
        }
    }

    /// Basic reproduction number proxy `R₀ = contacts · transmit_prob`
    /// (ignoring coalescence and graph structure).
    pub fn r0(&self) -> f64 {
        self.contacts as f64 * self.transmit_prob
    }
}

impl Process for SisProcess {
    fn name(&self) -> String {
        format!("sis(k={},p={})", self.contacts, self.transmit_prob)
    }

    fn spawn(&self, g: &Graph, start: Vertex) -> Box<dyn ProcessState> {
        Box::new(self.spawn_typed(g, start))
    }
}

impl TypedProcess for SisProcess {
    type State = SisState;

    fn spawn_typed(&self, g: &Graph, start: Vertex) -> SisState {
        assert!((start as usize) < g.num_vertices(), "start vertex in range");
        let mut cur = Frontier::new(g.num_vertices());
        cur.insert(start);
        SisState {
            contacts: self.contacts,
            transmit_prob: self.transmit_prob,
            cur,
            next: Frontier::new(g.num_vertices()),
            occ: vec![start],
        }
    }

    fn respawn_typed(&self, g: &Graph, start: Vertex, state: &mut SisState) {
        let n = g.num_vertices();
        if state.cur.capacity() != n {
            *state = self.spawn_typed(g, start);
            return;
        }
        assert!((start as usize) < n, "start vertex in range");
        state.contacts = self.contacts;
        state.transmit_prob = self.transmit_prob;
        crate::frontier::reinit_frontier_run(
            &mut state.cur,
            &mut state.next,
            &mut state.occ,
            start,
        );
    }
}

/// Mutable state of a running SIS epidemic: the infected set as a hybrid
/// sparse/dense [`Frontier`], stepped in the frontier's native
/// (deterministic) order exactly like [`crate::cobra::CobraState`] — so
/// `p = 1` reproduces the cobra walk draw-for-draw.
pub struct SisState {
    contacts: u32,
    transmit_prob: f64,
    cur: Frontier,
    next: Frontier,
    occ: Vec<Vertex>,
}

impl SisState {
    #[inline]
    fn advance<const MAINTAIN_OCC: bool, D: NeighborDraw, R: Rng + ?Sized>(
        &mut self,
        g: &Graph,
        draw: &D,
        rng: &mut R,
    ) {
        let SisState {
            contacts,
            transmit_prob,
            cur,
            next,
            occ,
        } = self;
        next.clear();
        cur.for_each(|v| {
            // Per-vertex draw state resolved once; the transmission coins
            // interleave with the draws without re-resolving it.
            let bound = draw.bind(g, v);
            for _ in 0..*contacts {
                if *transmit_prob < 1.0 && !bernoulli(*transmit_prob, rng) {
                    continue;
                }
                next.insert_quiet(bound.draw(rng));
            }
        });
        next.finalize_len();
        if MAINTAIN_OCC {
            occ.clear();
            next.for_each(|v| occ.push(v));
        }
        std::mem::swap(cur, next);
    }
}

impl TypedState for SisState {
    fn step<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        self.advance::<true, _, R>(g, &DrawOnTheFly, rng);
    }

    fn step_fast<R: Rng + ?Sized>(&mut self, g: &Graph, rng: &mut R) {
        self.advance::<false, _, R>(g, &DrawOnTheFly, rng);
    }

    fn step_sampled<D: NeighborDraw, R: Rng + ?Sized>(&mut self, g: &Graph, draw: &D, rng: &mut R) {
        self.advance::<false, D, R>(g, draw, rng);
    }
}

impl crate::process::StateView for SisState {
    fn occupied(&self) -> &[Vertex] {
        &self.occ
    }

    fn support_size(&self) -> usize {
        self.cur.len()
    }

    fn frontier(&self) -> Option<&Frontier> {
        Some(&self.cur)
    }
}

/// Outcome of an extinction probe: rounds survived and whether the
/// infection died before the horizon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtinctionProbe {
    /// Rounds until extinction (or the horizon).
    pub rounds: usize,
    /// Whether the infected set became empty.
    pub died_out: bool,
}

/// Run the SIS process until extinction or `horizon` rounds.
pub fn probe_extinction(
    g: &Graph,
    process: &SisProcess,
    start: Vertex,
    horizon: usize,
    rng: &mut dyn Rng,
) -> ExtinctionProbe {
    let mut st = process.spawn(g, start);
    for t in 1..=horizon {
        st.step(g, rng);
        if st.occupied().is_empty() {
            return ExtinctionProbe {
                rounds: t,
                died_out: true,
            };
        }
    }
    ExtinctionProbe {
        rounds: horizon,
        died_out: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators::classic;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_one_matches_cobra_walk_trajectory() {
        let g = classic::cycle(12).unwrap();
        let sis = SisProcess::new(2, 1.0);
        let cobra = crate::CobraWalk::new(2);
        let mut a = sis.spawn(&g, 0);
        let mut b = cobra.spawn(&g, 0);
        let mut ra = StdRng::seed_from_u64(3);
        let mut rb = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            a.step(&g, &mut ra);
            b.step(&g, &mut rb);
            assert_eq!(a.occupied(), b.occupied());
        }
    }

    #[test]
    fn subcritical_infection_dies_out() {
        // R0 = 2 * 0.3 = 0.6 < 1: extinction is near-certain quickly.
        let g = classic::complete(50).unwrap();
        let sis = SisProcess::new(2, 0.3);
        assert!((sis.r0() - 0.6).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(4);
        let mut extinctions = 0;
        for _ in 0..50 {
            let probe = probe_extinction(&g, &sis, 0, 10_000, &mut rng);
            if probe.died_out {
                extinctions += 1;
            }
        }
        assert!(
            extinctions >= 48,
            "only {extinctions}/50 subcritical runs died"
        );
    }

    #[test]
    fn supercritical_infection_usually_survives() {
        // R0 = 2 * 0.9 = 1.8 > 1 on a dense graph: most runs persist.
        let g = classic::complete(50).unwrap();
        let sis = SisProcess::new(2, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut survivals = 0;
        for _ in 0..50 {
            let probe = probe_extinction(&g, &sis, 0, 500, &mut rng);
            if !probe.died_out {
                survivals += 1;
            }
        }
        assert!(
            survivals >= 30,
            "only {survivals}/50 supercritical runs survived"
        );
    }

    #[test]
    fn empty_state_is_absorbing() {
        let g = classic::cycle(6).unwrap();
        let sis = SisProcess::new(1, 0.0); // never transmits
        let mut st = sis.spawn(&g, 0);
        let mut rng = StdRng::seed_from_u64(6);
        st.step(&g, &mut rng);
        assert!(st.occupied().is_empty());
        // Further steps are harmless no-ops.
        st.step(&g, &mut rng);
        assert!(st.occupied().is_empty());
        assert_eq!(st.support_size(), 0);
    }

    #[test]
    #[should_panic(expected = "transmission probability")]
    fn rejects_bad_probability() {
        SisProcess::new(2, 1.2);
    }

    #[test]
    fn name_and_r0() {
        let s = SisProcess::new(3, 0.5);
        assert_eq!(s.name(), "sis(k=3,p=0.5)");
        assert_eq!(s.r0(), 1.5);
    }
}
