//! The multi-dimensional drift chain from the proof of Theorem 3 (§3) —
//! what the paper calls "a discrete time queueing system, where customers
//! arrive and wait at a randomly chosen queue, where the arrival rate is
//! slightly smaller than the departure rate".
//!
//! The chain tracks, per grid dimension `i`, the distance `z_i ∈ [0, n]`
//! between a pessimistically-chosen single cobra pebble and the target
//! vertex. Each round two candidate moves are generated — each an
//! independent (uniform dimension, uniform ±1 direction) pair, modelling
//! the two pebbles spawned by the 2-cobra walk — and **one** is kept
//! according to the paper's selection rules:
//!
//! * both moves in the same dimension: keep a distance-decreasing one if
//!   it exists;
//! * moves in dimensions `i ≠ j` with `z_i = 0, z_j ≠ 0`: keep the `j`
//!   move;
//! * `z_i = z_j = 0`: keep either (uniformly);
//! * `z_i ≠ 0 ≠ z_j` and both moves decrease or both increase: keep
//!   either (uniformly); otherwise keep the decreasing one.
//!
//! Lemma 4's drift numbers fall out of these rules (e.g. conditioned on a
//! nonzero dimension changing in the worst case, it decreases with
//! probability `1/2 + 1/(8d−4)`), and Lemma 5's claim is that the chain
//! empties (all `z_i = 0`) within `O(d²n)` rounds w.h.p.

use crate::process::{coin, sample_index};
use rand::Rng;

/// The drift chain state: per-dimension distances with a reflecting
/// boundary at 0 (distance `|·|` can only grow to 1) and a cap at `n`
/// (the grid is finite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftChain {
    z: Vec<u32>,
    cap: u32,
}

/// One candidate move: dimension and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Move {
    dim: usize,
    /// `true` = the underlying pebble steps toward larger coordinate
    /// difference; applied through the distance dynamics below.
    away: bool,
}

impl DriftChain {
    /// Start with the given per-dimension distances, capped at `cap`.
    pub fn new(z: Vec<u32>, cap: u32) -> Self {
        assert!(!z.is_empty(), "need at least one dimension");
        assert!(
            z.iter().all(|&zi| zi <= cap),
            "initial distances exceed cap"
        );
        DriftChain { z, cap }
    }

    /// Start with every dimension at distance `z0` in `d` dimensions.
    pub fn uniform(d: usize, z0: u32, cap: u32) -> Self {
        Self::new(vec![z0; d], cap)
    }

    /// Current per-dimension distances.
    pub fn distances(&self) -> &[u32] {
        &self.z
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.z.len()
    }

    /// Whether all dimensions are at distance 0 (the "queue is empty" /
    /// target-reached state).
    pub fn is_empty(&self) -> bool {
        self.z.iter().all(|&zi| zi == 0)
    }

    /// Total distance `Σ z_i` (the Manhattan distance to the target).
    pub fn total(&self) -> u64 {
        self.z.iter().map(|&zi| zi as u64).sum()
    }

    fn sample_move(&self, rng: &mut dyn Rng) -> Move {
        Move {
            dim: sample_index(self.dims(), rng),
            away: coin(rng),
        }
    }

    /// The distance after applying `m` to the current state (the state is
    /// not modified).
    fn resulting_distance(&self, m: Move) -> u32 {
        let zi = self.z[m.dim];
        if zi == 0 {
            1 // reflecting: any move in a matched dimension opens distance 1
        } else if m.away {
            (zi + 1).min(self.cap)
        } else {
            zi - 1
        }
    }

    /// Whether `m` strictly decreases its dimension's distance.
    fn decreases(&self, m: Move) -> bool {
        self.resulting_distance(m) < self.z[m.dim]
    }

    /// Advance one round: sample two candidate moves and keep one per the
    /// paper's rules. Returns the dimension that changed (or `None` when
    /// the kept move was absorbed by the cap).
    pub fn step(&mut self, rng: &mut dyn Rng) -> Option<usize> {
        let a = self.sample_move(rng);
        let b = self.sample_move(rng);
        let chosen = self.choose(a, b, rng);
        let before = self.z[chosen.dim];
        let after = self.resulting_distance(chosen);
        self.z[chosen.dim] = after;
        (after != before).then_some(chosen.dim)
    }

    /// The paper's selection rule between two candidate moves.
    fn choose(&self, a: Move, b: Move, rng: &mut dyn Rng) -> Move {
        if a.dim == b.dim {
            // Same dimension: prefer a decreasing move if either is.
            return if self.decreases(a) {
                a
            } else if self.decreases(b) {
                b
            } else if coin(rng) {
                a
            } else {
                b
            };
        }
        let (za, zb) = (self.z[a.dim], self.z[b.dim]);
        match (za == 0, zb == 0) {
            (true, false) => b,
            (false, true) => a,
            (true, true) => {
                if coin(rng) {
                    a
                } else {
                    b
                }
            }
            (false, false) => {
                let (da, db) = (self.decreases(a), self.decreases(b));
                match (da, db) {
                    (true, false) => a,
                    (false, true) => b,
                    _ => {
                        if coin(rng) {
                            a
                        } else {
                            b
                        }
                    }
                }
            }
        }
    }

    /// Run until empty or `max_steps`; returns the emptying round if it
    /// happened.
    pub fn time_to_empty(&mut self, max_steps: usize, rng: &mut dyn Rng) -> Option<usize> {
        if self.is_empty() {
            return Some(0);
        }
        for t in 1..=max_steps {
            self.step(rng);
            if self.is_empty() {
                return Some(t);
            }
        }
        None
    }
}

/// One-step statistics of the drift chain from a fixed state, estimated by
/// Monte Carlo: for dimension `dim`, returns
/// `(P[z_dim changes], P[decrease | change])`.
///
/// Used by experiment E2 to check Lemma 4's bounds (change probability at
/// least `1/(2d−1)`; conditional decrease at least `1/2 + 1/(8d−4)`).
pub fn one_step_stats(
    state: &DriftChain,
    dim: usize,
    trials: usize,
    rng: &mut dyn Rng,
) -> (f64, f64) {
    let mut changed = 0usize;
    let mut decreased = 0usize;
    for _ in 0..trials {
        let mut chain = state.clone();
        let before = chain.z[dim];
        chain.step(rng);
        let after = chain.z[dim];
        if after != before {
            changed += 1;
            if after < before {
                decreased += 1;
            }
        }
    }
    let p_change = changed as f64 / trials as f64;
    let p_dec = if changed == 0 {
        0.0
    } else {
        decreased as f64 / changed as f64
    };
    (p_change, p_dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let c = DriftChain::uniform(3, 5, 10);
        assert_eq!(c.dims(), 3);
        assert_eq!(c.distances(), &[5, 5, 5]);
        assert_eq!(c.total(), 15);
        assert!(!c.is_empty());
        let empty = DriftChain::uniform(2, 0, 10);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed cap")]
    fn rejects_out_of_cap_start() {
        DriftChain::new(vec![11], 10);
    }

    #[test]
    fn step_changes_distance_by_at_most_one() {
        let mut c = DriftChain::uniform(3, 4, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let before = c.distances().to_vec();
            c.step(&mut rng);
            let after = c.distances();
            let mut delta_total = 0u32;
            for (b, a) in before.iter().zip(after) {
                delta_total += b.abs_diff(*a);
            }
            assert!(delta_total <= 1, "one round moves one dimension by one");
        }
    }

    #[test]
    fn cap_is_respected() {
        let mut c = DriftChain::uniform(2, 3, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            c.step(&mut rng);
            assert!(c.distances().iter().all(|&z| z <= 3));
        }
    }

    #[test]
    fn zero_state_bounces_to_one_sometimes() {
        let mut c = DriftChain::uniform(1, 0, 5);
        let mut rng = StdRng::seed_from_u64(3);
        c.step(&mut rng);
        // In 1 dimension both candidate moves are in dim 0 with z=0, so the
        // kept move must open distance 1.
        assert_eq!(c.distances(), &[1]);
    }

    #[test]
    fn drift_empties_chain_in_linear_time() {
        // Lemma 5: from z0 <= n, each dimension empties in O(d²n) steps whp.
        let d = 2;
        let n = 40u32;
        let mut rng = StdRng::seed_from_u64(4);
        let budget = 64 * (d * d) * n as usize;
        let mut successes = 0;
        let trials = 20;
        for _ in 0..trials {
            let mut c = DriftChain::uniform(d, n, n);
            if c.time_to_empty(budget, &mut rng).is_some() {
                successes += 1;
            }
        }
        assert!(
            successes >= trials - 2,
            "chain emptied only {successes}/{trials} times within O(d²n)"
        );
    }

    #[test]
    fn one_step_worst_case_matches_lemma4() {
        // Worst case for dimension 0: z_0 ≠ 0, all other dimensions 0.
        // Lemma 4 computes: conditioned on z_0 changing, it decreases with
        // probability exactly (d − 1/4)/(2d − 1) = 1/2 + 1/(8d−4), and the
        // change probability is (2d−1)/d² ≥ 1/(2d−1)… for the interior
        // (no cap/boundary effects).
        let d = 3;
        let mut z = vec![0u32; d];
        z[0] = 10; // far from both boundaries
        let state = DriftChain::new(z, 100);
        let mut rng = StdRng::seed_from_u64(5);
        let (p_change, p_dec) = one_step_stats(&state, 0, 200_000, &mut rng);

        let d_f = d as f64;
        let expect_change = (2.0 * d_f - 1.0) / (d_f * d_f);
        let expect_dec = (d_f - 0.25) / (2.0 * d_f - 1.0);
        assert!(
            (p_change - expect_change).abs() < 0.01,
            "P[change] = {p_change}, expected {expect_change}"
        );
        assert!(
            (p_dec - expect_dec).abs() < 0.01,
            "P[dec|change] = {p_dec}, expected {expect_dec}"
        );
    }

    #[test]
    fn one_step_all_nonzero_has_stronger_drift() {
        // When every dimension is nonzero the conditional decrease
        // probability is at least the worst-case bound.
        let d = 3;
        let state = DriftChain::uniform(d, 10, 100);
        let mut rng = StdRng::seed_from_u64(6);
        let (_, p_dec) = one_step_stats(&state, 0, 100_000, &mut rng);
        let floor = 0.5 + 1.0 / (8.0 * d as f64 - 4.0);
        assert!(
            p_dec >= floor - 0.02,
            "P[dec|change] = {p_dec} below {floor}"
        );
    }

    #[test]
    fn time_to_empty_zero_for_empty_start() {
        let mut c = DriftChain::uniform(4, 0, 10);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(c.time_to_empty(100, &mut rng), Some(0));
    }

    #[test]
    fn time_to_empty_none_when_budget_too_small() {
        let mut c = DriftChain::uniform(2, 50, 50);
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(c.time_to_empty(3, &mut rng), None);
    }
}
