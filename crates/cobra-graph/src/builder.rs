//! Edge-list builder producing validated CSR [`Graph`]s.

use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};

/// Accumulates undirected edges and produces a simple [`Graph`].
///
/// The builder symmetrizes edges (adding `(u, v)` also records `(v, u)`),
/// sorts adjacency lists, and by default **deduplicates** repeated edges
/// silently (generators of random multigraph-style constructions, e.g. the
/// pairing model, rely on this). Use [`GraphBuilder::strict`] to instead
/// fail on duplicates, which is useful when the edge list is supposed to be
/// duplicate-free by construction.
///
/// Self-loops are always rejected: every process in the paper is defined on
/// simple graphs (a pebble "chooses a neighbor").
///
/// # Example
///
/// ```
/// use cobra_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// b.add_edge(2, 3).unwrap();
/// b.add_edge(3, 0).unwrap();
/// let cycle = b.build().unwrap();
/// assert_eq!(cycle.num_edges(), 4);
/// assert_eq!(cycle.regularity(), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Directed half-edges; both directions pushed per added edge.
    half_edges: Vec<(Vertex, Vertex)>,
    strict: bool,
}

impl GraphBuilder {
    /// Create a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            half_edges: Vec::new(),
            strict: false,
        }
    }

    /// Create a builder that pre-allocates for `m` expected edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            half_edges: Vec::with_capacity(2 * m),
            strict: false,
        }
    }

    /// Make [`GraphBuilder::build`] fail with [`GraphError::DuplicateEdge`]
    /// if the same undirected edge was added more than once.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edge insertions so far (before dedup).
    pub fn num_added_edges(&self) -> usize {
        self.half_edges.len() / 2
    }

    /// Add the undirected edge `(u, v)`.
    ///
    /// Errors if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<()> {
        if (u as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u as u64,
                num_vertices: self.n,
            });
        }
        if (v as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.half_edges.push((u, v));
        self.half_edges.push((v, u));
        Ok(())
    }

    /// Add every edge from an iterator, stopping at the first error.
    pub fn add_edges<I: IntoIterator<Item = (Vertex, Vertex)>>(&mut self, it: I) -> Result<()> {
        for (u, v) in it {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Finalize into a CSR [`Graph`].
    ///
    /// Cost: O(m log m) for the sort; memory: the half-edge list plus the
    /// CSR arrays.
    pub fn build(self) -> Result<Graph> {
        if self.n > u32::MAX as usize {
            return Err(GraphError::TooManyVertices {
                requested: self.n as u64,
            });
        }
        let mut half = self.half_edges;
        half.sort_unstable();

        // Detect duplicates before dedup if strict.
        if self.strict {
            if let Some(w) = half.windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::DuplicateEdge {
                    u: w[0].0,
                    v: w[0].1,
                });
            }
        }
        half.dedup();

        let mut offsets = vec![0usize; self.n + 1];
        for &(u, _) in &half {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<Vertex> = half.iter().map(|&(_, v)| v).collect();
        Graph::from_csr(offsets, neighbors)
    }
}

/// Convenience: build a graph directly from an edge list.
///
/// ```
/// let g = cobra_graph::builder::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Graph> {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.add_edges(edges.iter().copied())?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(0, 2).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 2,
                num_vertices: 2
            }
        );
        let err = b.add_edge(7, 0).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 7,
                num_vertices: 2
            }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(1, 1).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        );
    }

    #[test]
    fn dedups_by_default() {
        let g = from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn strict_rejects_duplicates() {
        let mut b = GraphBuilder::new(2).strict();
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 1).unwrap();
        let err = b.build().unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn strict_accepts_unique_edges() {
        let mut b = GraphBuilder::new(3).strict();
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = from_edges(5, &[(3, 1), (4, 0), (2, 4), (1, 0)]).unwrap();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &u in ns {
                assert!(g.has_edge(u, v), "symmetric");
            }
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.num_added_edges(), 1);
        assert_eq!(b.num_vertices(), 3);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
