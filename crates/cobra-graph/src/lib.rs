//! # cobra-graph
//!
//! Static graph substrate for the reproduction of *Better Bounds for
//! Coalescing-Branching Random Walks* (Mitzenmacher, Rajaraman, Roche,
//! SPAA 2016).
//!
//! The paper studies cobra walks on a zoo of graph families: `d`-dimensional
//! grids `[0,n]^d`, `d`-regular expanders, hypercubes, power-law graphs,
//! random geometric graphs, `k`-ary trees, the star graph, and the
//! worst-case families for simple random walks (lollipop). This crate
//! provides:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR (compressed sparse row)
//!   undirected graph with `u32` vertex ids and zero-allocation neighbor
//!   access, the representation every walk kernel in `cobra-core` runs on;
//! * [`GraphBuilder`] — edge-list accumulation with symmetrization,
//!   deduplication, and validation;
//! * [`generators`] — deterministic and random constructions for every
//!   family the paper mentions;
//! * [`metrics`] — structural measurements (degrees, BFS distances,
//!   diameter, connected components, conductance) used both by tests and by
//!   the experiment harness to parameterize the paper's bounds (e.g. the
//!   `Φ_G^{-2} log² n` bound of Theorem 8 needs the conductance `Φ_G`);
//! * [`sampler`] — a per-graph [`NeighborSampler`] table that makes the
//!   kernels' uniform-neighbor draws table-driven (precomputed Lemire
//!   thresholds, regular-graph fast path) while consuming the exact same
//!   RNG stream as the recompute-per-draw route.
//!
//! ## Example
//!
//! ```
//! use cobra_graph::generators::grid;
//! use cobra_graph::metrics;
//!
//! // The paper's Section 3 object: the 2-dimensional grid [0,8]^2.
//! let g = grid::grid(&[8, 8]);
//! assert_eq!(g.num_vertices(), 81);
//! assert!(metrics::is_connected(&g));
//! // Corner vertices have degree 2.
//! assert_eq!(g.degree(0), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
mod csr;
mod error;
pub mod generators;
pub mod implicit;
pub mod io;
pub mod metrics;
pub mod sampler;

pub use builder::GraphBuilder;
pub use csr::{Graph, NeighborIter, Vertex};
pub use error::{check_vertex_count, GraphError, Result};
pub use implicit::{
    ImplicitComplete, ImplicitGraph, ImplicitGrid, ImplicitHypercube, ImplicitKaryTree,
    ImplicitTorus,
};
pub use sampler::{BoundSample, NeighborSampler};
