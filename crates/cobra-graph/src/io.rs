//! Plain-text edge-list serialization.
//!
//! Format: optional comment lines starting with `#`, then a header line
//! `n m`, then `m` lines `u v` with `u < v`. This is the lowest common
//! denominator for exchanging instances with plotting scripts and other
//! tools, and lets experiments pin exact graphs to disk.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};

/// Serialize `g` as an edge list.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# cobra-graph edge list")?;
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Serialize `g` to a string.
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_edge_list(g, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("edge list is ASCII")
}

/// Parse an edge list produced by [`write_edge_list`] (or by hand).
///
/// Rejects malformed headers, out-of-range vertices, self-loops, and
/// edge-count mismatches.
pub fn read_edge_list<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().filter_map(|l| match l {
        Ok(s) => {
            let t = s.trim().to_string();
            if t.is_empty() || t.starts_with('#') {
                None
            } else {
                Some(Ok(t))
            }
        }
        Err(e) => Some(Err(e)),
    });

    let parse_err = |what: &str| GraphError::InvalidParameter {
        reason: what.to_string(),
    };

    let header = lines
        .next()
        .ok_or_else(|| parse_err("missing header line"))?
        .map_err(|e| parse_err(&format!("io error: {e}")))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err("header must be 'n m'"))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err("header must be 'n m'"))?;
    if parts.next().is_some() {
        return Err(parse_err("header must be exactly 'n m'"));
    }

    let mut b = GraphBuilder::with_capacity(n, m);
    let mut count = 0usize;
    for line in lines {
        let line = line.map_err(|e| parse_err(&format!("io error: {e}")))?;
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(&format!("bad edge line: {line}")))?;
        let v: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(&format!("bad edge line: {line}")))?;
        if it.next().is_some() {
            return Err(parse_err(&format!("edge line has extra tokens: {line}")));
        }
        b.add_edge(u, v)?;
        count += 1;
    }
    if count != m {
        return Err(parse_err(&format!(
            "header declared {m} edges, found {count}"
        )));
    }
    b.build()
}

/// Parse from a string.
pub fn from_edge_list_str(s: &str) -> Result<Graph> {
    read_edge_list(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, hypercube};

    #[test]
    fn roundtrip_preserves_graph() {
        let g = hypercube::hypercube(4);
        let text = to_edge_list_string(&g);
        let back = from_edge_list_str(&text).unwrap();
        assert_eq!(g.num_vertices(), back.num_vertices());
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            back.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn roundtrip_star() {
        let g = classic::star(7).unwrap();
        let back = from_edge_list_str(&to_edge_list_string(&g)).unwrap();
        assert_eq!(back.degree(0), 6);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\n3 2\n# mid comment\n0 1\n\n1 2\n";
        let g = from_edge_list_str(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_edge_list_str("").is_err());
        assert!(from_edge_list_str("3\n0 1\n").is_err());
        assert!(from_edge_list_str("3 2 9\n0 1\n1 2\n").is_err());
        assert!(from_edge_list_str("3 1\n0 x\n").is_err());
        assert!(from_edge_list_str("3 1\n0 1 2\n").is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        assert!(from_edge_list_str("3 2\n0 1\n").is_err());
        assert!(from_edge_list_str("3 1\n0 1\n1 2\n").is_err());
    }

    #[test]
    fn rejects_bad_edges() {
        // Out of range.
        assert!(from_edge_list_str("2 1\n0 5\n").is_err());
        // Self loop.
        assert!(from_edge_list_str("2 1\n1 1\n").is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = crate::Graph::empty(4);
        let back = from_edge_list_str(&to_edge_list_string(&g)).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_edges(), 0);
    }
}
