//! Erdős–Rényi `G(n, p)` random graphs.
//!
//! Used in the general-graph experiments (E8/E9 context) as a "typical"
//! non-structured input, and above the connectivity threshold
//! `p = (1+ε)·ln n / n` as an expander-like family.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};
use rand::{Rng, RngExt};

/// Sample `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes), so the cost is
/// `O(n + m)` rather than `O(n²)` for sparse `p`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability p = {p} must be in [0, 1]"),
        });
    }
    crate::error::check_vertex_count(n as u64)?;
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u as Vertex, v as Vertex)?;
            }
        }
        return b.build();
    }

    // Batagelj–Brandes: walk the strictly-upper-triangular cells in
    // row-major order, skipping ahead by geometric(p) jumps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.random();
        // Geometric skip; r in [0,1), guard against ln(0).
        let skip = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            b.add_edge(w as Vertex, v as Vertex)?;
        }
    }
    b.build()
}

/// Sample `G(n, p)` repeatedly until the sample is connected (up to
/// `attempts` tries). Convenient for walk experiments, which are defined on
/// connected graphs.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, attempts: usize, rng: &mut R) -> Result<Graph> {
    for _ in 0..attempts {
        let g = gnp(n, p, rng)?;
        if crate::metrics::is_connected(&g) {
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed {
        what: format!("connected G({n}, {p})"),
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_zero_gives_empty_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = gnp(50, 0.0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn rejects_invalid_p() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(gnp(10, -0.1, &mut rng).is_err());
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn edge_count_concentrates_around_mean() {
        let n = 400;
        let p = 0.05;
        let mut rng = StdRng::seed_from_u64(11);
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 6.0 * sd,
            "edge count {m} too far from mean {expected}"
        );
    }

    #[test]
    fn small_graphs_ok() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gnp(1, 0.5, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 1);
        let g = gnp(0, 0.5, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let g = gnp(2, 0.5, &mut rng).unwrap();
        assert!(g.num_edges() <= 1);
    }

    #[test]
    fn connected_variant_is_connected() {
        let mut rng = StdRng::seed_from_u64(17);
        // Well above the connectivity threshold.
        let g = gnp_connected(100, 0.1, 50, &mut rng).unwrap();
        assert!(crate::metrics::is_connected(&g));
    }

    #[test]
    fn connected_variant_gives_up() {
        let mut rng = StdRng::seed_from_u64(17);
        // p = 0 can never be connected for n >= 2.
        assert!(gnp_connected(10, 0.0, 3, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gnp(100, 0.05, &mut StdRng::seed_from_u64(3)).unwrap();
        let g2 = gnp(100, 0.05, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
