//! Complete `k`-ary trees.
//!
//! The paper's §3 closes with a remark that the multi-step drift analysis of
//! Lemma 2 shows 2-cobra walks on `k`-ary trees have cover time proportional
//! to the tree's diameter for `k ∈ {2, 3}`, and conjectures this for every
//! constant `k`. Experiment E10 tests exactly that, sweeping depth for
//! `k ∈ {2, 3, 4, 5}`.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};

/// Number of vertices of the complete `k`-ary tree of the given `depth`
/// (a single root is depth 0): `(k^{depth+1} - 1) / (k - 1)` for `k ≥ 2`,
/// `depth + 1` for `k = 1`.
pub fn kary_tree_size(k: usize, depth: u32) -> u64 {
    if k == 1 {
        depth as u64 + 1
    } else {
        let mut total: u64 = 0;
        let mut level: u64 = 1;
        for _ in 0..=depth {
            total = total.saturating_add(level);
            level = level.saturating_mul(k as u64);
        }
        total
    }
}

/// The complete `k`-ary tree of the given `depth`.
///
/// Vertices are numbered level by level: the root is 0 and the children of
/// `v` are `k·v + 1, …, k·v + k`. The diameter is `2·depth`.
///
/// ```
/// let t = cobra_graph::generators::kary_tree(2, 3).unwrap();
/// assert_eq!(t.num_vertices(), 15);
/// assert_eq!(t.degree(0), 2);   // root
/// assert_eq!(t.degree(14), 1);  // leaf
/// ```
pub fn kary_tree(k: usize, depth: u32) -> Result<Graph> {
    if k == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "k-ary tree needs k >= 1".into(),
        });
    }
    let n64 = kary_tree_size(k, depth);
    crate::error::check_vertex_count(n64)?;
    let n = n64 as usize;
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 0..n {
        for c in 1..=k {
            let child = v * k + c;
            if child < n {
                b.add_edge(v as Vertex, child as Vertex)?;
            } else {
                break;
            }
        }
    }
    b.build()
}

/// Parent of vertex `v` in the level-order numbering of a `k`-ary tree
/// (`None` for the root).
pub fn kary_parent(k: usize, v: Vertex) -> Option<Vertex> {
    if v == 0 {
        None
    } else {
        Some(((v as usize - 1) / k) as Vertex)
    }
}

/// Depth of vertex `v` in a complete `k`-ary tree (root has depth 0).
pub fn kary_depth(k: usize, mut v: Vertex) -> u32 {
    let mut d = 0;
    while let Some(p) = kary_parent(k, v) {
        v = p;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn sizes() {
        assert_eq!(kary_tree_size(2, 0), 1);
        assert_eq!(kary_tree_size(2, 1), 3);
        assert_eq!(kary_tree_size(2, 3), 15);
        assert_eq!(kary_tree_size(3, 2), 13);
        assert_eq!(kary_tree_size(1, 5), 6);
    }

    #[test]
    fn binary_tree_depth3() {
        let t = kary_tree(2, 3).unwrap();
        assert_eq!(t.num_vertices(), 15);
        assert_eq!(t.num_edges(), 14);
        assert!(metrics::is_connected(&t));
        assert_eq!(t.degree(0), 2);
        // internal non-root: degree 3
        assert_eq!(t.degree(1), 3);
        // leaves: degree 1
        for v in 7..15u32 {
            assert_eq!(t.degree(v), 1);
        }
    }

    #[test]
    fn unary_tree_is_path() {
        let t = kary_tree(1, 4).unwrap();
        assert_eq!(t.num_vertices(), 5);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(2), 2);
    }

    #[test]
    fn singleton_tree() {
        let t = kary_tree(3, 0).unwrap();
        assert_eq!(t.num_vertices(), 1);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn parent_child_consistency() {
        let k = 3;
        let t = kary_tree(k, 3).unwrap();
        for v in t.vertices().skip(1) {
            let p = kary_parent(k, v).unwrap();
            assert!(t.has_edge(v, p), "vertex {v} should link to parent {p}");
        }
    }

    #[test]
    fn depth_function() {
        assert_eq!(kary_depth(2, 0), 0);
        assert_eq!(kary_depth(2, 1), 1);
        assert_eq!(kary_depth(2, 2), 1);
        assert_eq!(kary_depth(2, 3), 2);
        assert_eq!(kary_depth(2, 14), 3);
    }

    #[test]
    fn diameter_is_twice_depth() {
        for (k, depth) in [(2usize, 3u32), (3, 2), (4, 2)] {
            let t = kary_tree(k, depth).unwrap();
            let diam = metrics::diameter(&t).unwrap();
            assert_eq!(diam, 2 * depth as usize);
        }
    }

    #[test]
    fn rejects_k_zero() {
        assert!(kary_tree(0, 2).is_err());
    }
}
