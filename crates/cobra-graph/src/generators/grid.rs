//! `d`-dimensional grids `[0,n]^d` and tori — the objects of the paper's §3.
//!
//! The paper works over `[0, n]^d`, i.e. each coordinate ranges over the
//! `n + 1` integers `0..=n`, so the 2-dimensional grid `[0,8]^2` has 81
//! vertices. [`grid`] follows that convention: `extents[i]` is the **maximum
//! coordinate** in dimension `i`.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};

/// Mixed-radix coordinate addressing for grid-like graphs.
///
/// Vertices are numbered row-major: coordinate `(c_0, .., c_{d-1})` maps to
/// `Σ c_i · stride_i` where `stride_{d-1} = 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridShape {
    /// Number of points per dimension (extent + 1).
    points: Vec<usize>,
    strides: Vec<usize>,
}

impl GridShape {
    /// Shape of `[0, extents[i]]` per dimension. Errors on empty dims or
    /// overflow of the `u32` id space.
    pub fn new(extents: &[usize]) -> Result<Self> {
        if extents.is_empty() {
            return Err(GraphError::InvalidParameter {
                reason: "grid must have at least one dimension".into(),
            });
        }
        let points: Vec<usize> = extents.iter().map(|&e| e + 1).collect();
        let mut total: u64 = 1;
        for &p in &points {
            total = total.saturating_mul(p as u64);
        }
        crate::error::check_vertex_count(total)?;
        let d = points.len();
        let mut strides = vec![1usize; d];
        for i in (0..d - 1).rev() {
            strides[i] = strides[i + 1] * points[i + 1];
        }
        Ok(GridShape { points, strides })
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.points.len()
    }

    /// Total number of vertices `Π (extents[i] + 1)`.
    pub fn num_vertices(&self) -> usize {
        self.points.iter().product()
    }

    /// Number of points (extent + 1) in dimension `i`.
    pub fn points_in_dim(&self, i: usize) -> usize {
        self.points[i]
    }

    /// Row-major stride of dimension `i`: moving one point along dimension
    /// `i` changes the vertex id by exactly this amount.
    pub fn stride_in_dim(&self, i: usize) -> usize {
        self.strides[i]
    }

    /// Map coordinates to a vertex id. Panics if out of range in debug.
    pub fn index_of(&self, coords: &[usize]) -> Vertex {
        debug_assert_eq!(coords.len(), self.dims());
        let mut idx = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.points[i], "coordinate out of range");
            idx += c * self.strides[i];
        }
        idx as Vertex
    }

    /// Map a vertex id back to coordinates.
    pub fn coords_of(&self, v: Vertex) -> Vec<usize> {
        let mut rem = v as usize;
        self.strides
            .iter()
            .map(|&s| {
                let c = rem / s;
                rem %= s;
                c
            })
            .collect()
    }
}

/// The `d`-dimensional grid `[0, extents[0]] × … × [0, extents[d-1]]`.
///
/// `grid(&[n; d])` is exactly the paper's `[0,n]^d`. Vertices are connected
/// when they differ by 1 in exactly one coordinate.
///
/// ```
/// let g = cobra_graph::generators::grid(&[4, 4]);
/// assert_eq!(g.num_vertices(), 25);
/// assert_eq!(g.degree(0), 2);      // corner
/// assert_eq!(g.degree(12), 4);     // interior
/// ```
pub fn grid(extents: &[usize]) -> Graph {
    try_grid(extents).expect("valid grid parameters")
}

/// Fallible version of [`grid`].
pub fn try_grid(extents: &[usize]) -> Result<Graph> {
    let shape = GridShape::new(extents)?;
    let n = shape.num_vertices();
    let d = shape.dims();
    // Each vertex links "forward" in each dimension when not at the boundary.
    let mut b = GraphBuilder::with_capacity(n, n * d);
    let mut coords = vec![0usize; d];
    for v in 0..n {
        for (i, &c) in coords.iter().enumerate() {
            if c + 1 < shape.points_in_dim(i) {
                let u = v + shape.strides[i];
                b.add_edge(v as Vertex, u as Vertex)?;
            }
        }
        // Increment mixed-radix counter (last dimension fastest).
        for i in (0..d).rev() {
            coords[i] += 1;
            if coords[i] < shape.points_in_dim(i) {
                break;
            }
            coords[i] = 0;
        }
    }
    b.build()
}

/// The `d`-dimensional torus with `extents[i] + 1` points per dimension
/// (wrap-around grid). Regular of degree `2d`, which makes it a convenient
/// `d`-regular family for Theorem 8 experiments with conductance
/// `Θ(1/side)`.
///
/// Requires at least 3 points per dimension (wrap edges would duplicate
/// grid edges otherwise).
pub fn torus(extents: &[usize]) -> Graph {
    try_torus(extents).expect("valid torus parameters")
}

/// Fallible version of [`torus`].
pub fn try_torus(extents: &[usize]) -> Result<Graph> {
    let shape = GridShape::new(extents)?;
    for i in 0..shape.dims() {
        if shape.points_in_dim(i) < 3 {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "torus dimension {i} has {} points; need >= 3",
                    shape.points_in_dim(i)
                ),
            });
        }
    }
    let n = shape.num_vertices();
    let d = shape.dims();
    let mut b = GraphBuilder::with_capacity(n, n * d);
    let mut coords = vec![0usize; d];
    for v in 0..n {
        for (i, &c) in coords.iter().enumerate() {
            let pts = shape.points_in_dim(i);
            let next_c = (c + 1) % pts;
            let u = v - c * shape.strides[i] + next_c * shape.strides[i];
            b.add_edge(v as Vertex, u as Vertex)?;
        }
        for i in (0..d).rev() {
            coords[i] += 1;
            if coords[i] < shape.points_in_dim(i) {
                break;
            }
            coords[i] = 0;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn shape_roundtrip() {
        let s = GridShape::new(&[3, 4, 5]).unwrap();
        assert_eq!(s.num_vertices(), 4 * 5 * 6);
        for v in 0..s.num_vertices() as u32 {
            let c = s.coords_of(v);
            assert_eq!(s.index_of(&c), v);
        }
    }

    #[test]
    fn shape_rejects_empty_and_huge() {
        assert!(GridShape::new(&[]).is_err());
        assert!(GridShape::new(&[1 << 20, 1 << 20]).is_err());
    }

    #[test]
    fn path_is_one_dimensional_grid() {
        let g = grid(&[9]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn grid_2d_structure() {
        // [0,2]^2: 3x3 grid.
        let g = grid(&[2, 2]);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 12);
        // center vertex (1,1) = index 4 has degree 4
        assert_eq!(g.degree(4), 4);
        // corners have degree 2
        for &c in &[0u32, 2, 6, 8] {
            assert_eq!(g.degree(c), 2);
        }
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn grid_3d_degrees() {
        let g = grid(&[2, 2, 2]);
        assert_eq!(g.num_vertices(), 27);
        // interior vertex (1,1,1): degree 6
        let s = GridShape::new(&[2, 2, 2]).unwrap();
        assert_eq!(g.degree(s.index_of(&[1, 1, 1])), 6);
        assert_eq!(g.degree(s.index_of(&[0, 0, 0])), 3);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn grid_edge_count_formula() {
        // d-dim grid with p_i points: edges = Σ_i (p_i - 1) * Π_{j≠i} p_j
        let g = grid(&[3, 4]);
        let expected = 3 * 5 + 4 * 4; // (4-1)*5 + (5-1)*4
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(&[3, 3]); // 4x4 torus
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.regularity(), Some(4));
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn torus_3d_regularity() {
        let g = torus(&[2, 2, 2]); // 3^3 torus
        assert_eq!(g.num_vertices(), 27);
        assert_eq!(g.regularity(), Some(6));
    }

    #[test]
    fn torus_rejects_tiny_dimensions() {
        assert!(try_torus(&[1, 3]).is_err());
        assert!(try_torus(&[3, 1]).is_err());
    }

    #[test]
    fn cycle_is_one_dimensional_torus() {
        let g = torus(&[5]); // 6-cycle
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.regularity(), Some(2));
    }

    #[test]
    fn grid_neighbors_differ_in_one_coordinate() {
        let s = GridShape::new(&[3, 3]).unwrap();
        let g = grid(&[3, 3]);
        for v in g.vertices() {
            let cv = s.coords_of(v);
            for u in g.neighbor_iter(v) {
                let cu = s.coords_of(u);
                let diffs: Vec<_> = cv.iter().zip(&cu).filter(|(a, b)| a != b).collect();
                assert_eq!(diffs.len(), 1);
                let (a, b) = diffs[0];
                assert_eq!(a.abs_diff(*b), 1);
            }
        }
    }
}
