//! Chung–Lu power-law random graphs — named in the paper's §4 as a family
//! to which the conductance bound (Theorem 8) applies.
//!
//! In the Chung–Lu model each vertex `i` carries a weight `w_i` and edge
//! `(i, j)` appears independently with probability
//! `min(1, w_i·w_j / W)` where `W = Σ w_k`. Power-law weights
//! `w_i ∝ (i + i₀)^{-1/(β-1)}` give a degree distribution with exponent `β`.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::{GraphError, Result};
use rand::{Rng, RngExt};

/// Power-law weight sequence with exponent `beta > 2`, average degree
/// target `avg_degree`, and maximum expected degree capped at `√W` so the
/// edge probabilities stay below 1 (the "erased" regime).
pub fn powerlaw_weights(n: usize, beta: f64, avg_degree: f64) -> Result<Vec<f64>> {
    if beta <= 2.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("power-law exponent beta = {beta} must be > 2"),
        });
    }
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: "average degree must be positive".into(),
        });
    }
    let gamma = 1.0 / (beta - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum: f64 = raw.iter().sum();
    if sum == 0.0 {
        return Ok(vec![]);
    }
    let scale = avg_degree * n as f64 / sum;
    Ok(raw.into_iter().map(|w| w * scale).collect())
}

/// Sample a Chung–Lu graph from an explicit weight sequence.
///
/// Uses the Miller–Hagberg efficient algorithm: weights are processed in
/// non-increasing order and, for each `i`, candidate partners `j > i` are
/// visited with geometric skips calibrated to the *upper bound* probability
/// `p = min(1, w_i w_j / W)` at the current position, then accepted with the
/// exact ratio. Expected cost `O(n + m)`.
pub fn chung_lu_from_weights<R: Rng>(weights: &[f64], rng: &mut R) -> Result<Graph> {
    let n = weights.len();
    crate::error::check_vertex_count(n as u64)?;
    if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(GraphError::InvalidParameter {
            reason: "weights must be non-negative and finite".into(),
        });
    }
    // Sort descending, remembering original ids.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let sorted: Vec<f64> = order.iter().map(|&i| weights[i as usize]).collect();
    let total: f64 = sorted.iter().sum();
    let mut b = GraphBuilder::new(n);
    if total <= 0.0 {
        return b.build();
    }

    for i in 0..n {
        let wi = sorted[i];
        if wi <= 0.0 {
            break; // descending order: all remaining weights are 0
        }
        let mut j = i + 1;
        // Upper-bound probability at the current j (weights descending, so
        // p is non-increasing in j; freeze q at each accept/skip step).
        let mut p = (wi * sorted.get(j).copied().unwrap_or(0.0) / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.random();
                let skip = ((1.0 - r).ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            let q = (wi * sorted[j] / total).min(1.0);
            // Accept with exact probability q / p (q <= p).
            if rng.random::<f64>() < q / p {
                b.add_edge(order[i], order[j])?;
            }
            p = q;
            j += 1;
        }
    }
    b.build()
}

/// Sample a power-law Chung–Lu graph with degree exponent `beta` and target
/// average degree `avg_degree`.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = cobra_graph::generators::chung_lu(500, 2.5, 6.0, &mut rng).unwrap();
/// assert!(g.num_edges() > 0);
/// ```
pub fn chung_lu<R: Rng>(n: usize, beta: f64, avg_degree: f64, rng: &mut R) -> Result<Graph> {
    let weights = powerlaw_weights(n, beta, avg_degree)?;
    chung_lu_from_weights(&weights, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_decreasing_and_scaled() {
        let w = powerlaw_weights(100, 2.5, 8.0).unwrap();
        assert_eq!(w.len(), 100);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(powerlaw_weights(10, 2.0, 4.0).is_err());
        assert!(powerlaw_weights(10, 1.5, 4.0).is_err());
        assert!(powerlaw_weights(10, 2.5, 0.0).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(chung_lu_from_weights(&[1.0, f64::NAN], &mut rng).is_err());
        assert!(chung_lu_from_weights(&[1.0, -2.0], &mut rng).is_err());
    }

    #[test]
    fn zero_weights_give_empty_graph() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = chung_lu_from_weights(&[0.0; 20], &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn average_degree_roughly_matches_target() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let target = 10.0;
        let g = chung_lu(n, 2.8, target, &mut rng).unwrap();
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        // min(1, ·) capping and sampling noise allow some slack.
        assert!(
            (avg - target).abs() < 0.2 * target,
            "average degree {avg} too far from target {target}"
        );
    }

    #[test]
    fn heavy_tail_exists() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 3000;
        let g = chung_lu(n, 2.2, 6.0, &mut rng).unwrap();
        // With beta = 2.2 the max degree should far exceed the average.
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(g.max_degree() as f64 > 5.0 * avg);
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = chung_lu(300, 2.5, 6.0, &mut StdRng::seed_from_u64(5)).unwrap();
        let g2 = chung_lu(300, 2.5, 6.0, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_small_weights_match_gnp_density() {
        // With all weights equal to w, edge probability is w^2 / (n w) = w/n.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 800;
        let w = 8.0; // expect p = 0.01, about n*(n-1)/2 * 0.01 edges
        let g = chung_lu_from_weights(&vec![w; n], &mut rng).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * (w / n as f64);
        let m = g.num_edges() as f64;
        let sd = expected.sqrt();
        assert!(
            (m - expected).abs() < 6.0 * sd,
            "edge count {m} vs expected {expected}"
        );
    }
}
