//! The Boolean hypercube — the paper's §4 names it as a prime example of a
//! non-expander family with conductance good enough for Theorem 8 to give
//! polylogarithmic cover time (`Φ = 1/d`, so the bound is `O(d^6 log² n)`).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};

/// The `dim`-dimensional Boolean hypercube on `2^dim` vertices.
///
/// Vertex ids are bit strings; `u ~ v` iff they differ in exactly one bit.
/// The graph is `dim`-regular with conductance exactly `1/dim` (an isoperimetric
/// fact used by the Theorem 8 experiment to pin `Φ_G` without estimation).
///
/// ```
/// let q3 = cobra_graph::generators::hypercube(3);
/// assert_eq!(q3.num_vertices(), 8);
/// assert_eq!(q3.regularity(), Some(3));
/// ```
pub fn hypercube(dim: u32) -> Graph {
    try_hypercube(dim).expect("valid hypercube dimension")
}

/// Fallible version of [`hypercube`]. Errors if `2^dim` exceeds the `u32`
/// id space or `dim == 0`.
pub fn try_hypercube(dim: u32) -> Result<Graph> {
    if dim == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "hypercube dimension must be >= 1".into(),
        });
    }
    if dim >= 31 {
        return Err(GraphError::TooManyVertices {
            requested: 1u64 << dim,
        });
    }
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_capacity(n, n * dim as usize / 2);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1usize << bit);
            if u > v {
                b.add_edge(v as Vertex, u as Vertex)?;
            }
        }
    }
    b.build()
}

/// The exact conductance of the `dim`-dimensional hypercube, `1/dim`
/// (achieved by a subcube cut). Exposed so experiments can use the exact
/// value instead of estimating it.
pub fn hypercube_conductance(dim: u32) -> f64 {
    1.0 / dim as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn q1_is_an_edge() {
        let g = hypercube(1);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn q3_structure() {
        let g = hypercube(3);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.regularity(), Some(3));
        assert!(metrics::is_connected(&g));
        // 0b000 is adjacent to 0b001, 0b010, 0b100.
        assert_eq!(g.neighbors(0), &[1, 2, 4]);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let g = hypercube(5);
        for v in g.vertices() {
            for u in g.neighbor_iter(v) {
                assert_eq!((u ^ v).count_ones(), 1);
            }
        }
    }

    #[test]
    fn edge_count_formula() {
        for dim in 1..10u32 {
            let g = hypercube(dim);
            let n = 1usize << dim;
            assert_eq!(g.num_edges(), n * dim as usize / 2);
        }
    }

    #[test]
    fn subcube_cut_matches_declared_conductance() {
        // Cut on the top bit: S = {v : top bit 0}. |∂S| = 2^{d-1},
        // vol(S) = d·2^{d-1}, so φ(S) = 1/d.
        let dim = 6u32;
        let g = hypercube(dim);
        let n = g.num_vertices();
        let in_s = |v: u32| (v as usize) < n / 2;
        let boundary = g.edges().filter(|&(u, v)| in_s(u) != in_s(v)).count();
        let vol: usize = (0..n as u32)
            .filter(|&v| in_s(v))
            .map(|v| g.degree(v))
            .sum();
        let phi = boundary as f64 / vol as f64;
        assert!((phi - hypercube_conductance(dim)).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_dims() {
        assert!(try_hypercube(0).is_err());
        assert!(try_hypercube(31).is_err());
        assert!(try_hypercube(40).is_err());
    }
}
