//! Classic deterministic families: path, cycle, complete, star, lollipop,
//! barbell, and ring of cliques.
//!
//! Roles in the paper:
//!
//! * **star** — the §6 conclusion notes the star shows the worst-case cobra
//!   cover time is Ω(n log n) (every round covers leaves coupon-collector
//!   style from the hub);
//! * **lollipop** — the standard witness that simple random walks have
//!   Θ(n³) worst-case cover time (Feige), the benchmark Theorem 20's
//!   O(n^{11/4} log n) cobra bound is measured against;
//! * **ring of cliques / barbell** — low-conductance `≈d`-regular families
//!   used to stress the Φ⁻² dependence of Theorem 8;
//! * **complete** — sanity baseline (coupon collector: Θ(n log n) for the
//!   simple walk, Θ(log n) active-set doubling for the cobra walk);
//! * **path / cycle** — 1-dimensional grid/torus baselines.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};

/// The path on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Result<Graph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "path needs n >= 1".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge((v - 1) as Vertex, v as Vertex)?;
    }
    b.build()
}

/// The cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "cycle needs n >= 3".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 0..n {
        b.add_edge(v as Vertex, ((v + 1) % n) as Vertex)?;
    }
    b.build()
}

/// The complete graph on `n ≥ 2` vertices.
pub fn complete(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "complete graph needs n >= 2".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as Vertex, v as Vertex)?;
        }
    }
    b.build()
}

/// The star with one hub (vertex 0) and `n - 1` leaves.
///
/// The §6 lower-bound witness: from the hub, a 2-cobra walk can inform at
/// most 2 fresh leaves every 2 rounds, and coupon-collector effects make
/// covering all leaves take Ω(n log n).
pub fn star(n: usize) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "star needs n >= 2".into(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n {
        b.add_edge(0, v as Vertex)?;
    }
    b.build()
}

/// The lollipop graph: a clique on `⌈n/2⌉` vertices with a path of
/// `⌊n/2⌋` additional vertices attached to clique vertex 0.
///
/// For the **simple** random walk this family achieves the Θ(n³) worst-case
/// cover time; Theorem 20 shows the 2-cobra walk does strictly better
/// (O(n^{11/4} log n)). Experiment E8 measures both.
///
/// Vertices `0..⌈n/2⌉` form the clique; `⌈n/2⌉..n` form the path hanging
/// off vertex 0.
pub fn lollipop(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "lollipop needs n >= 3".into(),
        });
    }
    let clique = n.div_ceil(2);
    let mut b = GraphBuilder::with_capacity(n, clique * (clique - 1) / 2 + n - clique);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b.add_edge(u as Vertex, v as Vertex)?;
        }
    }
    // Path: 0 - clique - clique+1 - ... - n-1
    let mut prev = 0usize;
    for v in clique..n {
        b.add_edge(prev as Vertex, v as Vertex)?;
        prev = v;
    }
    b.build()
}

/// The barbell graph: two cliques of size `clique` joined by a path of
/// `bridge` intermediate vertices (`bridge = 0` joins them by a single
/// edge). Total `2·clique + bridge` vertices.
///
/// A classic low-conductance family: `Φ = Θ(1/clique²)` when `bridge` is
/// small, stressing the `Φ⁻²` factor of Theorem 8.
pub fn barbell(clique: usize, bridge: usize) -> Result<Graph> {
    if clique < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "barbell needs clique >= 2".into(),
        });
    }
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::with_capacity(n, clique * (clique - 1) + bridge + 1);
    // Left clique: 0..clique. Right clique: clique..2*clique.
    for side in 0..2 {
        let base = side * clique;
        for u in 0..clique {
            for v in (u + 1)..clique {
                b.add_edge((base + u) as Vertex, (base + v) as Vertex)?;
            }
        }
    }
    // Bridge path from vertex 0 (left) to vertex `clique` (right).
    let mut prev = 0usize;
    for i in 0..bridge {
        let w = 2 * clique + i;
        b.add_edge(prev as Vertex, w as Vertex)?;
        prev = w;
    }
    b.add_edge(prev as Vertex, clique as Vertex)?;
    b.build()
}

/// A ring of `cliques` cliques, each of size `size ≥ 3`, where consecutive
/// cliques around the ring are joined by a single edge.
///
/// Nearly regular (degrees `size-1` or `size+1`... precisely: two vertices
/// per clique carry ring edges, so degrees are `size - 1` or `size`), with
/// conductance `Θ(1/(cliques · size²))·size` — a tunable low-conductance
/// family for Theorem 8 (E3).
pub fn ring_of_cliques(cliques: usize, size: usize) -> Result<Graph> {
    if cliques < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "ring needs >= 3 cliques".into(),
        });
    }
    if size < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "cliques need size >= 3".into(),
        });
    }
    let n = cliques * size;
    let mut b = GraphBuilder::with_capacity(n, cliques * (size * (size - 1) / 2 + 1));
    for c in 0..cliques {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                b.add_edge((base + u) as Vertex, (base + v) as Vertex)?;
            }
        }
        // Connector: vertex 1 of clique c to vertex 0 of clique c+1.
        let next_base = ((c + 1) % cliques) * size;
        b.add_edge((base + 1) as Vertex, next_base as Vertex)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn path_structure() {
        let g = path(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(metrics::is_connected(&g));
        assert_eq!(metrics::diameter(&g).unwrap(), 4);
    }

    #[test]
    fn path_singleton() {
        let g = path(1).unwrap();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.regularity(), Some(2));
        assert_eq!(metrics::diameter(&g).unwrap(), 3);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn complete_structure() {
        let g = complete(6).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.regularity(), Some(5));
        assert_eq!(metrics::diameter(&g).unwrap(), 1);
        assert!(complete(1).is_err());
    }

    #[test]
    fn star_structure() {
        let g = star(10).unwrap();
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        for v in 1..10u32 {
            assert_eq!(g.degree(v), 1);
        }
        assert_eq!(metrics::diameter(&g).unwrap(), 2);
        assert!(star(1).is_err());
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(10).unwrap(); // clique of 5, path of 5
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 5 * 4 / 2 + 5);
        assert!(metrics::is_connected(&g));
        // Clique-interior vertices have degree 4; vertex 0 carries the path.
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(1), 4);
        // Path end is a leaf.
        assert_eq!(g.degree(9), 1);
        assert!(lollipop(2).is_err());
    }

    #[test]
    fn lollipop_odd_n() {
        let g = lollipop(7).unwrap(); // clique of 4, path of 3
        assert_eq!(g.num_vertices(), 7);
        assert!(metrics::is_connected(&g));
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(4, 2).unwrap();
        assert_eq!(g.num_vertices(), 10);
        // 2 cliques of 6 edges + 3 bridge edges
        assert_eq!(g.num_edges(), 15);
        assert!(metrics::is_connected(&g));
        assert!(barbell(1, 0).is_err());
    }

    #[test]
    fn barbell_direct_bridge() {
        let g = barbell(3, 0).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(0, 3));
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 5).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * (10 + 1));
        assert!(metrics::is_connected(&g));
        // Degrees are size-1 = 4 (plain) or 5 (connector endpoints).
        let mut counts = [0usize; 2];
        for v in g.vertices() {
            match g.degree(v) {
                4 => counts[0] += 1,
                5 => counts[1] += 1,
                d => panic!("unexpected degree {d}"),
            }
        }
        assert_eq!(counts[1], 8); // two connector endpoints per clique
        assert!(ring_of_cliques(2, 5).is_err());
        assert!(ring_of_cliques(5, 2).is_err());
    }
}
