//! Graph generators for every family the paper mentions.
//!
//! | Module | Families | Where the paper uses them |
//! |--------|----------|---------------------------|
//! | [`mod@grid`] | `d`-dimensional grid `[0,n]^d`, torus | §3 (Theorem 3: cover time O(n)) |
//! | [`mod@hypercube`] | Boolean hypercube | §4 (example of non-expander with good conductance) |
//! | [`mod@trees`] | complete `k`-ary trees | §3 closing remark / conjecture |
//! | [`mod@classic`] | path, cycle, complete, star, lollipop, barbell, ring of cliques | star: Ω(n log n) lower bound (§6); lollipop: Θ(n³) simple-walk worst case (§1, §5) |
//! | [`mod@random_regular`] | pairing-model random `d`-regular graphs | §4 (expanders, Corollary 9) |
//! | [`mod@gnp`] | Erdős–Rényi G(n, p) | general-graph experiments (§5) |
//! | [`mod@geometric`] | random geometric graphs | §4 (named as conductance application) |
//! | [`mod@powerlaw`] | Chung–Lu power-law graphs | §4 (named as conductance application) |

pub mod classic;
pub mod geometric;
pub mod gnp;
pub mod grid;
pub mod hypercube;
pub mod powerlaw;
pub mod random_regular;
pub mod trees;

pub use classic::{barbell, complete, cycle, lollipop, path, ring_of_cliques, star};
pub use geometric::random_geometric;
pub use gnp::{gnp, gnp_connected};
pub use grid::{grid, torus};
pub use hypercube::hypercube;
pub use powerlaw::chung_lu;
pub use random_regular::random_regular;
pub use trees::kary_tree;
