//! Random `d`-regular graphs via the pairing (configuration) model.
//!
//! The paper's Corollary 9 covers bounded-degree `d`-regular ε-expanders;
//! random `d`-regular graphs are the canonical such family (and the one the
//! paper names as satisfying the old, stricter expansion requirement of
//! prior work). For fixed `d ≥ 3` a random `d`-regular graph is an expander
//! with high probability, with conductance bounded below by a constant.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Maximum full restarts before giving up. With Steger–Wormald local
/// retries each restart almost always succeeds for the constant degrees
/// used in the paper, so this budget is generous.
const MAX_RESTARTS: usize = 200;

/// Sample a random simple `d`-regular graph on `n` vertices using the
/// Steger–Wormald variant of the pairing (configuration) model.
///
/// Each vertex contributes `d` stubs. Pairs of remaining stubs are drawn
/// uniformly; a pair is accepted only if it creates neither a self-loop nor
/// a parallel edge. If the process dead-ends (only invalid pairs remain) it
/// restarts. For constant `d` the output distribution is asymptotically
/// uniform over simple `d`-regular graphs, which is all the expander
/// experiments need.
///
/// Errors if `n·d` is odd, `d ≥ n`, or the restart budget is exhausted.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = cobra_graph::generators::random_regular(100, 3, &mut rng).unwrap();
/// assert_eq!(g.regularity(), Some(3));
/// ```
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "degree d must be >= 1".into(),
        });
    }
    if d >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree d = {d} must be < n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("n*d = {} must be even", n * d),
        });
    }

    for _ in 0..MAX_RESTARTS {
        if let Some(graph) = try_steger_wormald(n, d, rng) {
            return Ok(graph);
        }
    }
    Err(GraphError::GenerationFailed {
        what: format!("{d}-regular graph on {n} vertices"),
        attempts: MAX_RESTARTS,
    })
}

/// One Steger–Wormald pass. Returns `None` on a dead end (forcing restart).
fn try_steger_wormald<R: Rng>(n: usize, d: usize, rng: &mut R) -> Option<Graph> {
    let mut stubs: Vec<Vertex> = Vec::with_capacity(n * d);
    for v in 0..n {
        for _ in 0..d {
            stubs.push(v as Vertex);
        }
    }
    stubs.shuffle(rng);

    let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
    let mut b = GraphBuilder::with_capacity(n, n * d / 2);
    // The number of consecutive failed draws before we declare a dead end;
    // generous because near the end few valid pairs may remain.
    let mut budget_left;
    while stubs.len() >= 2 {
        budget_left = 50 + 10 * stubs.len();
        loop {
            let i = rng.random_range(0..stubs.len());
            let mut j = rng.random_range(0..stubs.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (stubs[i], stubs[j]);
            let key = if u < v { (u, v) } else { (v, u) };
            if u != v && !seen.contains(&key) {
                seen.insert(key);
                b.add_edge(u, v).ok()?;
                // Remove both stubs (order-safe: remove the larger index first).
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
                break;
            }
            budget_left -= 1;
            if budget_left == 0 {
                return None; // dead end: restart from scratch
            }
        }
    }
    b.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_regular_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [2usize, 3, 4, 6] {
            let g = random_regular(60, d, &mut rng).unwrap();
            assert_eq!(g.num_vertices(), 60);
            assert_eq!(g.regularity(), Some(d), "degree {d}");
            assert_eq!(g.num_edges(), 60 * d / 2);
        }
    }

    #[test]
    fn three_regular_is_usually_connected() {
        // d>=3 random regular graphs are connected whp; with a fixed seed
        // this is deterministic.
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_regular(200, 3, &mut rng).unwrap();
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_regular(5, 3, &mut rng).is_err()); // n*d odd
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
        assert!(random_regular(10, 0, &mut rng).is_err()); // d = 0
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let g1 = random_regular(50, 3, &mut StdRng::seed_from_u64(1)).unwrap();
        let g2 = random_regular(50, 3, &mut StdRng::seed_from_u64(2)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let g1 = random_regular(50, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = random_regular(50, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular(100, 5, &mut rng).unwrap();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(!ns.contains(&v));
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn two_regular_graph_is_union_of_cycles() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_regular(30, 2, &mut rng).unwrap();
        assert_eq!(g.regularity(), Some(2));
        // every component of a 2-regular graph is a cycle: #edges == #vertices
        assert_eq!(g.num_edges(), 30);
    }
}
