//! Random geometric graphs — named in the paper's §4 as a family whose
//! conductance makes Theorem 8 give rapid coverage.
//!
//! `n` points are dropped uniformly in the unit square and two points are
//! adjacent when their Euclidean distance is at most `radius`. Above the
//! connectivity threshold `radius = Θ(√(ln n / n))` the graph is connected
//! w.h.p. and has conductance `Θ(radius)`.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};
use rand::{Rng, RngExt};

/// Sample a random geometric graph on `n` points in `[0,1]²` with
/// connection radius `radius`.
///
/// Implementation buckets points into a grid of cell side `radius`, so
/// expected cost is `O(n + m)` instead of `O(n²)`.
///
/// Returns the graph and the sampled points (useful for plotting and for
/// reproducing the instance).
pub fn random_geometric<R: Rng>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> Result<(Graph, Vec<(f64, f64)>)> {
    if radius.is_nan() || radius <= 0.0 || radius > 2.0_f64.sqrt() {
        return Err(GraphError::InvalidParameter {
            reason: format!("radius {radius} must be in (0, sqrt(2)]"),
        });
    }
    crate::error::check_vertex_count(n as u64)?;
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.random(), rng.random())).collect();

    // Bucket grid with cell side >= radius; neighbors only in 3x3 cells.
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64| bucket_cell(x, cells);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }

    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &buckets[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = points[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        b.add_edge(i as Vertex, j)?;
                    }
                }
            }
        }
    }
    Ok((b.build()?, points))
}

/// Bucket index of coordinate `x` in a grid of `cells` cells spanning
/// `[0, 1]`.
///
/// Boundary behaviour (pinned by unit tests below):
///
/// * `x == 1.0` lands exactly on `cells`, which the `.min(cells - 1)` clamp
///   folds back into the last cell — without it the bucket write would be
///   out of bounds.
/// * Negative `x` saturates to 0: `f64 as usize` in Rust is a saturating
///   cast (negative values become 0, not a wrap), so sub-zero coordinates
///   fall into cell 0 rather than panicking or aliasing a high cell.
/// * `x > 1.0` (and `NAN`, which casts to 0) likewise clamp into range.
///
/// Sampled coordinates are always in `[0, 1)`, so the clamps only matter
/// for the closed upper boundary and for future callers feeding external
/// point sets.
fn bucket_cell(x: f64, cells: usize) -> usize {
    ((x * cells as f64) as usize).min(cells - 1)
}

/// The connectivity-threshold radius `√(c · ln n / n)` for random geometric
/// graphs; `c = 2` is comfortably supercritical.
pub fn supercritical_radius(n: usize) -> f64 {
    let n = n.max(2) as f64;
    (2.0 * n.ln() / n).sqrt().min(2.0_f64.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_radius() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_geometric(10, 0.0, &mut rng).is_err());
        assert!(random_geometric(10, -1.0, &mut rng).is_err());
        assert!(random_geometric(10, 3.0, &mut rng).is_err());
        assert!(random_geometric(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn full_radius_gives_complete_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, pts) = random_geometric(15, 2.0_f64.sqrt(), &mut rng).unwrap();
        assert_eq!(pts.len(), 15);
        assert_eq!(g.num_edges(), 15 * 14 / 2);
    }

    #[test]
    fn edges_match_naive_distance_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = 0.25;
        let (g, pts) = random_geometric(80, r, &mut rng).unwrap();
        let mut expected = 0usize;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                let within = dx * dx + dy * dy <= r * r;
                assert_eq!(
                    g.has_edge(i as u32, j as u32),
                    within,
                    "pair ({i},{j}) mismatch"
                );
                expected += within as usize;
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn supercritical_radius_connects() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300;
        let (g, _) = random_geometric(n, supercritical_radius(n), &mut rng).unwrap();
        // Supercritical RGGs are connected whp; pinned seed makes this stable.
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn deterministic_under_seed() {
        let (g1, p1) = random_geometric(50, 0.2, &mut StdRng::seed_from_u64(5)).unwrap();
        let (g2, p2) = random_geometric(50, 0.2, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bucket_cell_boundaries() {
        for cells in [1usize, 2, 7, 4096] {
            // Interior of [0, 1): proportional bucketing.
            assert_eq!(bucket_cell(0.0, cells), 0);
            assert_eq!(bucket_cell(0.5, cells), (cells / 2).min(cells - 1));
            // x just below 1.0 must land in the last cell, not overflow it.
            let below_one = 1.0 - f64::EPSILON;
            assert_eq!(bucket_cell(below_one, cells), cells - 1);
            // The closed boundary x == 1.0 clamps into the last cell.
            assert_eq!(bucket_cell(1.0, cells), cells - 1);
            // Out-of-domain inputs stay in range: negative rounding
            // saturates to 0, overshoot clamps to the last cell.
            assert_eq!(bucket_cell(-0.25, cells), 0);
            assert_eq!(bucket_cell(-f64::EPSILON, cells), 0);
            assert_eq!(bucket_cell(1.5, cells), cells - 1);
            assert_eq!(bucket_cell(f64::NAN, cells), 0);
        }
    }

    #[test]
    fn boundary_point_buckets_do_not_panic() {
        // A point at exactly (1.0, 1.0) exercises the clamp through the
        // public API: build a tiny instance by hand via the same bucketing.
        let cells = 4usize;
        let idx = bucket_cell(1.0, cells) * cells + bucket_cell(1.0, cells);
        assert_eq!(idx, cells * cells - 1);
    }

    #[test]
    fn tiny_instances() {
        let mut rng = StdRng::seed_from_u64(6);
        let (g, _) = random_geometric(0, 0.5, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 0);
        let (g, _) = random_geometric(1, 0.5, &mut rng).unwrap();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
