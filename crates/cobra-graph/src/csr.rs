//! Immutable CSR (compressed sparse row) graph representation.
//!
//! Every walk kernel in the reproduction is a tight loop of the form
//! "pick a uniformly random neighbor of `v`", so the representation is
//! optimized for exactly that: `neighbors(v)` is a contiguous `&[u32]`
//! slice, obtained with two loads and no branching beyond a bounds check.

use crate::error::{GraphError, Result};

/// Dense vertex identifier. Graphs in this reproduction comfortably fit in
/// the `u32` id space (the paper's experiments are `n ≤ 10^6`-scale).
pub type Vertex = u32;

/// An immutable undirected graph in CSR form.
///
/// Invariants (enforced by [`crate::GraphBuilder`] and checked by
/// `debug_assert`s):
///
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, non-decreasing;
/// * `neighbors[offsets[v]..offsets[v+1]]` lists the neighbors of `v` in
///   ascending order;
/// * the adjacency is symmetric: `u ∈ N(v) ⇔ v ∈ N(u)`;
/// * no self-loops and no duplicate edges (simple graph), matching the
///   paper's setting.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<Vertex>,
}

impl Graph {
    /// Construct directly from CSR arrays. Used by the builder; validates
    /// structural invariants and returns an error on malformed input.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<Vertex>) -> Result<Self> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(GraphError::InvalidParameter {
                reason: "CSR offsets must start with 0".into(),
            });
        }
        let last = *offsets
            .last()
            .expect("offsets verified non-empty by the check above");
        if last != neighbors.len() {
            return Err(GraphError::InvalidParameter {
                reason: "CSR offsets must end at neighbors.len()".into(),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidParameter {
                reason: "CSR offsets must be non-decreasing".into(),
            });
        }
        let n = offsets.len() - 1;
        crate::error::check_vertex_count(n as u64)?;
        for &u in &neighbors {
            if (u as usize) >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    num_vertices: n,
                });
            }
        }
        Ok(Graph { offsets, neighbors })
    }

    /// The empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of `v` as a sorted slice. This is the hot accessor for all
    /// walk kernels: no allocation, contiguous memory.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `i`-th neighbor of `v` (unchecked in release builds beyond slice
    /// bounds). Walk kernels use `neighbors(v)[i]` with `i` drawn uniformly.
    #[inline]
    pub fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        self.neighbors(v)[i]
    }

    /// Whether edge `(u, v)` exists. O(log deg(u)) via binary search on the
    /// sorted adjacency slice.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`. Counts in `u64` so the
    /// boundary graph on `n = 2³²` vertices (max id `u32::MAX`) yields
    /// every id instead of truncating the cast to an empty range.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        (0..self.num_vertices() as u64).map(|v| v as Vertex)
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over the neighbors of `v` (by value).
    pub fn neighbor_iter(&self, v: Vertex) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.neighbors(v).iter(),
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Whether every vertex has the same degree (the paper's Theorems 8 and
    /// 15 are stated for `d`-regular graphs). Returns that degree if so.
    pub fn regularity(&self) -> Option<usize> {
        let n = self.num_vertices();
        if n == 0 {
            return Some(0);
        }
        let d = self.degree(0);
        if self.vertices().all(|v| self.degree(v) == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Sum of degrees (`2m`), i.e. the volume of the whole vertex set.
    #[inline]
    pub fn total_degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Volume of a vertex subset: `vol(S) = Σ_{u∈S} deg(u)` (paper, §2).
    pub fn volume<I: IntoIterator<Item = Vertex>>(&self, set: I) -> usize {
        set.into_iter().map(|v| self.degree(v)).sum()
    }

    /// Internal CSR views for `cobra-spectral` (kept crate-public via this
    /// accessor so downstream crates can build matrices without re-walking
    /// the adjacency).
    pub fn csr_parts(&self) -> (&[usize], &[Vertex]) {
        (&self.offsets, &self.neighbors)
    }
}

/// Iterator over the neighbors of a vertex, yielded by value.
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, Vertex>,
}

impl Iterator for NeighborIter<'_> {
    type Item = Vertex;

    #[inline]
    fn next(&mut self) -> Option<Vertex> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(0, 2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.regularity(), Some(0));
        for v in g.vertices() {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.regularity(), Some(0));
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.regularity(), Some(2));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn neighbor_iter_matches_slice() {
        let g = triangle();
        let via_iter: Vec<_> = g.neighbor_iter(1).collect();
        assert_eq!(via_iter, g.neighbors(1).to_vec());
        assert_eq!(g.neighbor_iter(1).len(), 2);
    }

    #[test]
    fn volume_of_subsets() {
        let g = triangle();
        assert_eq!(g.volume([0]), 2);
        assert_eq!(g.volume([0, 1, 2]), 6);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn from_csr_rejects_malformed() {
        // offsets not starting at 0
        assert!(Graph::from_csr(vec![1, 2], vec![0]).is_err());
        // offsets not matching neighbors length
        assert!(Graph::from_csr(vec![0, 2], vec![0]).is_err());
        // decreasing offsets
        assert!(Graph::from_csr(vec![0, 2, 1, 3], vec![1, 2, 0]).is_err());
        // out-of-range neighbor
        assert!(Graph::from_csr(vec![0, 1], vec![5]).is_err());
        // empty offsets
        assert!(Graph::from_csr(vec![], vec![]).is_err());
    }

    #[test]
    fn from_csr_accepts_valid() {
        // path 0-1-2
        let g = Graph::from_csr(vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbor(1, 0), 0);
        assert_eq!(g.neighbor(1, 1), 2);
    }

    #[test]
    fn regularity_detects_irregular() {
        // path 0-1-2: degrees 1,2,1
        let g = Graph::from_csr(vec![0, 1, 3, 4], vec![1, 0, 2, 1]).unwrap();
        assert_eq!(g.regularity(), None);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }
}
