//! Degree statistics.

use crate::csr::Graph;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
    /// Degree shared by all vertices, when the graph is regular.
    pub regular: Option<usize>,
}

impl DegreeStats {
    /// Compute degree statistics for `g`. For the empty vertex set all
    /// fields are zero and `regular = Some(0)`.
    pub fn of(g: &Graph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                variance: 0.0,
                regular: Some(0),
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut sum_sq = 0u128;
        for v in g.vertices() {
            let d = g.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            sum_sq += (d as u128) * (d as u128);
        }
        let mean = sum as f64 / n as f64;
        let variance = sum_sq as f64 / n as f64 - mean * mean;
        DegreeStats {
            min,
            max,
            mean,
            variance: variance.max(0.0),
            regular: if min == max { Some(min) } else { None },
        }
    }

    /// The full degree histogram: `hist[d]` = number of vertices of degree
    /// `d`, indexed up to the maximum degree.
    pub fn histogram(g: &Graph) -> Vec<usize> {
        let mut hist = vec![0usize; g.max_degree() + 1];
        for v in g.vertices() {
            hist[g.degree(v)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn regular_graph_stats() {
        let g = classic::cycle(6).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.regular, Some(2));
    }

    #[test]
    fn star_stats() {
        let g = classic::star(5).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.regular, None);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn histogram_counts() {
        let g = classic::star(5).unwrap();
        let h = DegreeStats::histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::empty(0);
        let s = DegreeStats::of(&g);
        assert_eq!(s.regular, Some(0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn isolated_vertices_stats() {
        let g = crate::Graph::empty(3);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.regular, Some(0));
        assert_eq!(DegreeStats::histogram(&g), vec![3]);
    }
}
