//! Connected components and largest-component extraction.
//!
//! Random families (G(n,p), geometric, Chung–Lu) can be disconnected; walk
//! experiments restrict to the largest component via
//! [`largest_component`].

use crate::builder::GraphBuilder;
use crate::csr::{Graph, Vertex};

/// Label each vertex with a component id in `0..k`; returns `(labels, k)`.
/// Component ids are assigned in order of discovery from vertex 0 upward.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    const UNVISITED: u32 = u32::MAX;
    let mut label = vec![UNVISITED; n];
    let mut k = 0u32;
    let mut stack = Vec::new();
    for s in g.vertices() {
        if label[s as usize] != UNVISITED {
            continue;
        }
        label[s as usize] = k;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for u in g.neighbor_iter(v) {
                if label[u as usize] == UNVISITED {
                    label[u as usize] = k;
                    stack.push(u);
                }
            }
        }
        k += 1;
    }
    (label, k as usize)
}

/// Whether the graph is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    let (_, k) = connected_components(g);
    k <= 1
}

/// Extract the largest connected component as a new graph with dense ids.
///
/// Returns `(subgraph, mapping)` where `mapping[new_id] = old_id`.
pub fn largest_component(g: &Graph) -> (Graph, Vec<Vertex>) {
    let (label, k) = connected_components(g);
    if k <= 1 {
        return (g.clone(), g.vertices().collect());
    }
    let mut sizes = vec![0usize; k];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);

    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    let mut mapping = Vec::new();
    for v in g.vertices() {
        if label[v as usize] == biggest {
            old_to_new[v as usize] = mapping.len() as u32;
            mapping.push(v);
        }
    }
    let mut b = GraphBuilder::new(mapping.len());
    for &old in &mapping {
        for u in g.neighbor_iter(old) {
            if label[u as usize] == biggest && old < u {
                b.add_edge(old_to_new[old as usize], old_to_new[u as usize])
                    .expect("mapped ids are in range");
            }
        }
    }
    (b.build().expect("sub-edges are valid"), mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::classic;

    #[test]
    fn single_component() {
        let g = classic::cycle(5).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components() {
        let g = from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3); // {0,1}, {2,3}, {4}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn largest_component_extraction() {
        // Components: triangle {0,1,2}, edge {3,4}, isolated {5}.
        let g = from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let (sub, mapping) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert!(is_connected(&sub));
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = classic::path(4).unwrap();
        let (sub, mapping) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(mapping, vec![0, 1, 2, 3]);
        assert_eq!(sub.num_edges(), g.num_edges());
    }

    #[test]
    fn largest_component_preserves_adjacency() {
        let g = from_edges(7, &[(2, 4), (4, 6), (2, 6), (6, 1), (0, 3)]).unwrap();
        let (sub, mapping) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 4);
        for v_new in sub.vertices() {
            for u_new in sub.neighbor_iter(v_new) {
                assert!(g.has_edge(mapping[v_new as usize], mapping[u_new as usize]));
            }
        }
    }
}
