//! Breadth-first distances, eccentricities, and diameters.
//!
//! The k-ary-tree experiment (E10) compares cover times against the
//! diameter, and the grid experiments use hop distances to pick far-apart
//! start/target pairs for hitting-time measurements.

use crate::csr::{Graph, Vertex};
use std::collections::VecDeque;

/// Hop distance marker for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances. `result[v] == UNREACHABLE` when `v` is not
/// reachable from `src`.
pub fn bfs_distances(g: &Graph, src: Vertex) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for u in g.neighbor_iter(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of `src`: the maximum finite BFS distance from `src`.
/// Returns `None` if some vertex is unreachable (disconnected graph).
pub fn eccentricity(g: &Graph, src: Vertex) -> Option<usize> {
    let dist = bfs_distances(g, src);
    let mut max = 0u32;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max as usize)
}

/// Exact diameter via all-sources BFS — `O(n·m)`; fine for the experiment
/// scales here (the harness only calls this on graphs small enough for the
/// walk simulations themselves to dominate). Returns `None` when
/// disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.num_vertices() == 0 {
        return None;
    }
    let mut best = 0usize;
    for v in g.vertices() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// A vertex at maximum BFS distance from `src`, with that distance.
/// Useful for choosing adversarial start/target pairs in hitting-time
/// experiments (e.g. opposite grid corners, far end of a lollipop handle).
pub fn farthest_vertex(g: &Graph, src: Vertex) -> (Vertex, u32) {
    let dist = bfs_distances(g, src);
    let mut best = (src, 0u32);
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d > best.1 {
            best = (v as Vertex, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, grid};

    #[test]
    fn path_distances() {
        let g = classic::path(5).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn path_eccentricity_and_diameter() {
        let g = classic::path(6).unwrap();
        assert_eq!(eccentricity(&g, 0), Some(5));
        assert_eq!(eccentricity(&g, 2), Some(3));
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn cycle_diameter() {
        let g = classic::cycle(8).unwrap();
        assert_eq!(diameter(&g), Some(4));
        let g = classic::cycle(9).unwrap();
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = grid::grid(&[3, 4]);
        assert_eq!(diameter(&g), Some(7));
    }

    #[test]
    fn disconnected_reports_none() {
        let g = crate::builder::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(diameter(&g), None);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn farthest_vertex_on_path() {
        let g = classic::path(7).unwrap();
        assert_eq!(farthest_vertex(&g, 0), (6, 6));
        let (v, d) = farthest_vertex(&g, 3);
        assert!(v == 0 || v == 6);
        assert_eq!(d, 3);
    }

    #[test]
    fn empty_graph_diameter() {
        let g = crate::Graph::empty(0);
        assert_eq!(diameter(&g), None);
        let g1 = crate::Graph::empty(1);
        assert_eq!(diameter(&g1), Some(0));
    }
}
