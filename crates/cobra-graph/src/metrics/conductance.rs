//! Conductance `Φ_G` — the parameter of the paper's Theorem 8.
//!
//! Following §2 of the paper: for `S ⊆ V` with `vol(S) = Σ_{u∈S} d(u)`,
//! `φ(S) = |∂(S)| / vol(S)` where `∂(S)` counts edges leaving `S`, and
//! `Φ_G = min { φ(S) : vol(S) ≤ vol(V)/2 }`.
//!
//! Exact minimization is NP-hard in general; we provide:
//!
//! * [`conductance_exact`] — brute-force over all subsets, for `n ≤ 24`
//!   (used by tests and to validate the estimators);
//! * [`sweep_conductance`] — the standard sweep-cut upper bound along a
//!   vertex ordering (the spectral ordering from `cobra-spectral` gives the
//!   Cheeger-quality bound; any ordering gives a valid upper bound).

use crate::csr::{Graph, Vertex};

/// `φ(S) = |∂S| / min(vol(S), vol(V∖S))` for an explicit subset.
///
/// Returns `None` if `S` is empty, is everything, or has zero volume.
/// Using the `min` of the two volumes (rather than requiring
/// `vol(S) ≤ vol(V)/2`) makes the function symmetric and total; on sets
/// satisfying the paper's volume constraint it agrees with the paper's
/// `φ(S)`.
pub fn conductance_of_set(g: &Graph, in_set: &[bool]) -> Option<f64> {
    assert_eq!(in_set.len(), g.num_vertices());
    let mut boundary = 0usize;
    let mut vol_s = 0usize;
    for v in g.vertices() {
        if in_set[v as usize] {
            vol_s += g.degree(v);
            for u in g.neighbor_iter(v) {
                if !in_set[u as usize] {
                    boundary += 1;
                }
            }
        }
    }
    let vol_rest = g.total_degree() - vol_s;
    let denom = vol_s.min(vol_rest);
    if denom == 0 {
        None
    } else {
        Some(boundary as f64 / denom as f64)
    }
}

/// Exact conductance by enumerating all `2^n` subsets. Panics if `n > 24`.
/// Returns `None` for graphs where no valid cut exists (n < 2 or no edges).
pub fn conductance_exact(g: &Graph) -> Option<f64> {
    let n = g.num_vertices();
    assert!(n <= 24, "exact conductance is exponential; n = {n} > 24");
    if n < 2 || g.num_edges() == 0 {
        return None;
    }
    let mut best: Option<f64> = None;
    let mut in_set = vec![false; n];
    // Fix vertex 0 out of S to halve the enumeration (complement symmetry).
    for mask in 1u64..(1u64 << (n - 1)) {
        for (i, flag) in in_set.iter_mut().enumerate().take(n - 1) {
            *flag = (mask >> i) & 1 == 1;
        }
        in_set[n - 1] = false;
        if let Some(phi) = conductance_of_set(g, &in_set) {
            best = Some(best.map_or(phi, |b: f64| b.min(phi)));
        }
    }
    best
}

/// Sweep-cut conductance upper bound: prefix sets of the given vertex
/// `ordering` are scored with [`conductance_of_set`]'s criterion
/// incrementally, and the best prefix value is returned.
///
/// With a Fiedler-vector ordering this is the classic spectral partitioning
/// heuristic whose result `φ̂` satisfies `Φ_G ≤ φ̂ ≤ √(2·Φ_G)` (Cheeger);
/// with any other ordering it is still a valid upper bound on `Φ_G`.
pub fn sweep_conductance(g: &Graph, ordering: &[Vertex]) -> Option<f64> {
    let n = g.num_vertices();
    assert_eq!(ordering.len(), n);
    if n < 2 || g.num_edges() == 0 {
        return None;
    }
    let total_vol = g.total_degree();
    let mut in_set = vec![false; n];
    let mut vol_s = 0usize;
    let mut boundary = 0isize;
    let mut best: Option<f64> = None;
    // Add vertices one at a time; maintain boundary incrementally.
    for &v in &ordering[..n - 1] {
        in_set[v as usize] = true;
        vol_s += g.degree(v);
        for u in g.neighbor_iter(v) {
            if in_set[u as usize] {
                boundary -= 1; // edge became internal
            } else {
                boundary += 1; // new boundary edge
            }
        }
        let denom = vol_s.min(total_vol - vol_s);
        if denom > 0 {
            let phi = boundary as f64 / denom as f64;
            best = Some(best.map_or(phi, |b: f64| b.min(phi)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, grid, hypercube};

    #[test]
    fn complete_graph_conductance() {
        // K_n: the minimizing cut is the balanced one. For K_4, S of size 2:
        // boundary 4, vol(S) = 6, φ = 2/3.
        let g = classic::complete(4).unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_conductance() {
        // C_n: best cut is a half-arc: boundary 2, vol = n (for even n),
        // φ = 2/n.
        let g = classic::cycle(8).unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn hypercube_conductance_exact_matches_formula() {
        let g = hypercube::hypercube(4); // 16 vertices, OK for exact
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 0.25).abs() < 1e-12);
    }

    #[test]
    fn path_conductance() {
        // P_4 (3 edges, total vol 6): cutting the middle edge gives
        // boundary 1, min vol = 3, φ = 1/3. Cutting off one leaf gives
        // 1/1 = 1. So Φ = 1/3.
        let g = classic::path(4).unwrap();
        let phi = conductance_exact(&g).unwrap();
        assert!((phi - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn barbell_has_low_conductance() {
        let g = classic::barbell(5, 0).unwrap(); // 10 vertices
        let phi = conductance_exact(&g).unwrap();
        // One clique (with the bridge endpoint) vs the other: boundary 1,
        // vol(S) = 5*4 + 1 = 21, φ = 1/21.
        assert!((phi - 1.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn set_conductance_degenerate_cases() {
        let g = classic::cycle(4).unwrap();
        assert_eq!(conductance_of_set(&g, &[false; 4]), None);
        assert_eq!(conductance_of_set(&g, &[true; 4]), None);
        let phi = conductance_of_set(&g, &[true, false, false, false]).unwrap();
        assert!((phi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_conductance_is_complement_symmetric() {
        let g = grid::grid(&[2, 2]);
        let in_set: Vec<bool> = (0..9).map(|i| i < 4).collect();
        let comp: Vec<bool> = in_set.iter().map(|&b| !b).collect();
        let a = conductance_of_set(&g, &in_set).unwrap();
        let b = conductance_of_set(&g, &comp).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sweep_upper_bounds_exact() {
        let g = classic::barbell(4, 0).unwrap();
        let exact = conductance_exact(&g).unwrap();
        // Natural ordering puts the left clique first — optimal here.
        let ordering: Vec<u32> = g.vertices().collect();
        let sweep = sweep_conductance(&g, &ordering).unwrap();
        assert!(sweep >= exact - 1e-12);
        assert!((sweep - exact).abs() < 1e-9, "natural order finds the cut");
    }

    #[test]
    fn sweep_on_cycle_natural_order_is_exact() {
        let g = classic::cycle(10).unwrap();
        let ordering: Vec<u32> = g.vertices().collect();
        let sweep = sweep_conductance(&g, &ordering).unwrap();
        assert!((sweep - 2.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_none_for_edgeless() {
        let g = Graph::empty(3);
        assert_eq!(sweep_conductance(&g, &[0, 1, 2]), None);
        assert_eq!(conductance_exact(&g), None);
    }

    use crate::csr::Graph;
}
