//! Structural graph metrics used by tests and by the experiment harness.
//!
//! * [`bfs`] — single-source distances, eccentricity, diameter;
//! * [`components`] — connectivity and largest-component extraction;
//! * [`conductance`] — exact (small-n) and sweep-estimated conductance,
//!   the `Φ_G` parameter of the paper's Theorem 8;
//! * [`degree`] — degree statistics.

pub mod bfs;
pub mod components;
pub mod conductance;
pub mod degree;

pub use bfs::{bfs_distances, diameter, eccentricity, farthest_vertex};
pub use components::{connected_components, is_connected, largest_component};
pub use conductance::{conductance_exact, conductance_of_set, sweep_conductance};
pub use degree::DegreeStats;
