//! Implicit (arithmetic) graph families — adjacency computed, never stored.
//!
//! The paper's structured families (§3 grids, hypercubes, trees; §4's
//! regular examples) all have closed-form adjacency: the `i`-th neighbor of
//! vertex `v` is an arithmetic function of `(v, i)`. Materializing them as
//! CSR costs `Θ(Σ deg)` memory — 14.5 GB for the 27-dimensional Boolean
//! hypercube — while the walk kernels only ever ask two questions per
//! draw: `degree(v)` and `neighbor(v, i)`. [`ImplicitGraph`] abstracts
//! exactly those two questions (plus the vertex count), so the typed walk
//! engine in `cobra-core` can run on either representation through one
//! generic seam.
//!
//! **Order contract.** Every implementation enumerates neighbors in
//! *strictly ascending vertex order*, matching the sorted-CSR invariant of
//! [`Graph`]. This is what makes the CSR and implicit routes bit-for-bit
//! identical on a shared seed: the `i`-th draw resolves to the same vertex
//! whichever representation serves it (pinned per family by the unit tests
//! here and end-to-end by `tests/engine_equivalence.rs`).

use crate::csr::{Graph, Vertex};
use crate::error::{GraphError, Result};
use crate::generators::grid::GridShape;
use crate::generators::trees::kary_tree_size;

/// A graph whose adjacency is computed on demand instead of stored.
///
/// Implementations must describe a simple undirected graph on the dense id
/// space `0..num_vertices()` and must enumerate each vertex's neighbors in
/// strictly ascending order (the CSR order), so that index-addressed
/// neighbor draws agree bit-for-bit with the materialized representation.
///
/// `Sync` is required so the Monte-Carlo engine can share one instance
/// across rayon workers, exactly as it shares a [`Graph`].
pub trait ImplicitGraph: Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Degree of vertex `v`.
    fn degree(&self, v: Vertex) -> usize;

    /// The `i`-th neighbor of `v` in ascending vertex order,
    /// `i < degree(v)`.
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex;
}

/// A materialized CSR graph is trivially an implicit graph: the two
/// accessors are the same two loads the walk kernels already do.
impl ImplicitGraph for Graph {
    #[inline]
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    #[inline]
    fn degree(&self, v: Vertex) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        Graph::neighbor(self, v, i)
    }
}

/// References delegate, so drivers can hold `&G` without re-wrapping.
impl<T: ImplicitGraph + ?Sized> ImplicitGraph for &T {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn degree(&self, v: Vertex) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        (**self).neighbor(v, i)
    }
}

/// The paper's `[0, extents[0]] × … × [0, extents[d-1]]` grid (§3), with
/// adjacency computed from the mixed-radix coordinates.
///
/// Neighbor order: the "minus" moves in dimension order `0..d` come first
/// (strides decrease with the dimension index, so subtracting them yields
/// ascending ids), then the "plus" moves in dimension order `d-1..0` —
/// exactly the sorted order the CSR builder produces.
#[derive(Clone, Debug)]
pub struct ImplicitGrid {
    shape: GridShape,
}

impl ImplicitGrid {
    /// The grid `[0, extents[i]]` per dimension; same validation as the
    /// materialized [`crate::generators::grid::try_grid`].
    pub fn new(extents: &[usize]) -> Result<Self> {
        Ok(ImplicitGrid {
            shape: GridShape::new(extents)?,
        })
    }

    /// The coordinate addressing of this grid.
    pub fn shape(&self) -> &GridShape {
        &self.shape
    }
}

impl ImplicitGraph for ImplicitGrid {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.shape.num_vertices()
    }

    fn degree(&self, v: Vertex) -> usize {
        let vu = v as usize;
        let mut deg = 0;
        for dim in 0..self.shape.dims() {
            let pts = self.shape.points_in_dim(dim);
            let c = (vu / self.shape.stride_in_dim(dim)) % pts;
            deg += (c > 0) as usize + (c + 1 < pts) as usize;
        }
        deg
    }

    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        let vu = v as usize;
        let d = self.shape.dims();
        let mut k = i;
        for dim in 0..d {
            let s = self.shape.stride_in_dim(dim);
            if !(vu / s).is_multiple_of(self.shape.points_in_dim(dim)) {
                if k == 0 {
                    return (vu - s) as Vertex;
                }
                k -= 1;
            }
        }
        for dim in (0..d).rev() {
            let s = self.shape.stride_in_dim(dim);
            let pts = self.shape.points_in_dim(dim);
            if (vu / s) % pts + 1 < pts {
                if k == 0 {
                    return (vu + s) as Vertex;
                }
                k -= 1;
            }
        }
        panic!("neighbor index {i} out of range for grid vertex {v}");
    }
}

/// Dimension cap for [`ImplicitTorus`], sized so neighbor candidates fit a
/// stack array (`2 × 16` ids). Tori beyond 16 dimensions are outside every
/// experiment in the reproduction.
pub const MAX_TORUS_DIMS: usize = 16;

/// The wrap-around grid (torus) with `extents[i] + 1` points per dimension,
/// `2d`-regular; the paper's convenient `d`-regular family for Theorem 8.
///
/// Wrap-around breaks the stride monotonicity that lets the plain grid
/// enumerate in order directly, so each query materializes the `2d`
/// candidate ids into a stack array and sorts it — `d ≤ 16` keeps that
/// array at 32 words.
#[derive(Clone, Debug)]
pub struct ImplicitTorus {
    shape: GridShape,
}

impl ImplicitTorus {
    /// The torus over `[0, extents[i]]` per dimension. Requires at least
    /// 3 points per dimension (as [`crate::generators::grid::try_torus`]:
    /// wrap edges would duplicate grid edges otherwise, and with ≥ 3 the
    /// degree is exactly `2d`) and at most [`MAX_TORUS_DIMS`] dimensions.
    pub fn new(extents: &[usize]) -> Result<Self> {
        let shape = GridShape::new(extents)?;
        if shape.dims() > MAX_TORUS_DIMS {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "implicit torus supports at most {MAX_TORUS_DIMS} dimensions, got {}",
                    shape.dims()
                ),
            });
        }
        for i in 0..shape.dims() {
            if shape.points_in_dim(i) < 3 {
                return Err(GraphError::InvalidParameter {
                    reason: format!(
                        "torus dimension {i} has {} points; need >= 3",
                        shape.points_in_dim(i)
                    ),
                });
            }
        }
        Ok(ImplicitTorus { shape })
    }

    /// The coordinate addressing of this torus.
    pub fn shape(&self) -> &GridShape {
        &self.shape
    }

    #[inline]
    fn candidates(&self, v: Vertex, out: &mut [Vertex]) -> usize {
        let vu = v as usize;
        let d = self.shape.dims();
        for dim in 0..d {
            let s = self.shape.stride_in_dim(dim);
            let pts = self.shape.points_in_dim(dim);
            let c = (vu / s) % pts;
            let down = if c == 0 { pts - 1 } else { c - 1 };
            let up = if c + 1 == pts { 0 } else { c + 1 };
            let base = vu - c * s;
            out[2 * dim] = (base + down * s) as Vertex;
            out[2 * dim + 1] = (base + up * s) as Vertex;
        }
        2 * d
    }
}

impl ImplicitGraph for ImplicitTorus {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.shape.num_vertices()
    }

    #[inline]
    fn degree(&self, _v: Vertex) -> usize {
        2 * self.shape.dims()
    }

    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        let mut cand = [0 as Vertex; 2 * MAX_TORUS_DIMS];
        let len = self.candidates(v, &mut cand);
        let cand = &mut cand[..len];
        cand.sort_unstable();
        cand[i]
    }
}

/// The Boolean hypercube `Q_dim` on `2^dim` vertices — the paper's §3
/// headline expander-adjacent family, and (as the grid `[0,1]^dim`) the
/// shape of the large-scale implicit cover runs.
///
/// Unlike the materialized [`crate::generators::hypercube::hypercube`]
/// (which caps `dim ≤ 30` because CSR adjacency is `dim·2^dim` words),
/// this form allows `dim` up to 32 — `dim = 32` is the `n = 2³²` boundary
/// graph whose max id is exactly `u32::MAX`.
///
/// Neighbor order: flipping a *set* bit decreases the id, flipping an
/// *unset* bit increases it, so ascending order is "set bits from highest
/// to lowest, then unset bits from lowest to highest".
#[derive(Clone, Copy, Debug)]
pub struct ImplicitHypercube {
    dim: u32,
    mask: u64,
}

impl ImplicitHypercube {
    /// The hypercube `Q_dim`; `1 ≤ dim ≤ 32`.
    pub fn new(dim: u32) -> Result<Self> {
        if dim == 0 || dim > 32 {
            return Err(GraphError::InvalidParameter {
                reason: format!("implicit hypercube dimension {dim} must be in 1..=32"),
            });
        }
        Ok(ImplicitHypercube {
            dim,
            mask: (1u64 << dim) - 1,
        })
    }

    /// The dimension `dim` (`= log₂ n =` the regular degree).
    pub fn dim(&self) -> u32 {
        self.dim
    }
}

/// Lowest set bit of `x` after clearing the `skip` lowest set bits.
/// `x` must have more than `skip` set bits.
#[inline]
fn select_low_bit(mut x: u64, skip: usize) -> u64 {
    for _ in 0..skip {
        x &= x - 1;
    }
    x & x.wrapping_neg()
}

impl ImplicitGraph for ImplicitHypercube {
    #[inline]
    fn num_vertices(&self) -> usize {
        1usize << self.dim
    }

    #[inline]
    fn degree(&self, _v: Vertex) -> usize {
        self.dim as usize
    }

    #[inline]
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        debug_assert!(i < self.dim as usize);
        let vv = v as u64;
        let set = vv.count_ones() as usize;
        if i < set {
            // i-th neighbor below v: flip the i-th *highest* set bit,
            // i.e. the (set-1-i)-th lowest.
            (vv ^ select_low_bit(vv, set - 1 - i)) as Vertex
        } else {
            // Then neighbors above v: flip unset bits from the lowest up.
            (vv | select_low_bit(!vv & self.mask, i - set)) as Vertex
        }
    }
}

/// The complete graph `K_n` — the degenerate "everything is one hop away"
/// family; useful as a closed-form oracle and for the `n = 2³²` id-space
/// boundary without any per-vertex storage.
#[derive(Clone, Copy, Debug)]
pub struct ImplicitComplete {
    n: usize,
}

impl ImplicitComplete {
    /// `K_n` for `n ≥ 2` (as [`crate::generators::classic::complete`]),
    /// accepting the full `u32` id space up to `n = 2³²`.
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 {
            return Err(GraphError::InvalidParameter {
                reason: format!("complete graph needs n >= 2, got {n}"),
            });
        }
        crate::error::check_vertex_count(n as u64)?;
        Ok(ImplicitComplete { n })
    }
}

impl ImplicitGraph for ImplicitComplete {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn degree(&self, _v: Vertex) -> usize {
        self.n - 1
    }

    #[inline]
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        // Everyone but v, in ascending order: 0..v then v+1..n.
        if i < v as usize {
            i as Vertex
        } else {
            (i + 1) as Vertex
        }
    }
}

/// The complete `k`-ary tree in level order (root 0, children of `v` at
/// `k·v + 1 ..= k·v + k`), matching
/// [`crate::generators::trees::kary_tree`]. The §3 remark's
/// diameter-proportional cover family.
#[derive(Clone, Copy, Debug)]
pub struct ImplicitKaryTree {
    k: u64,
    n: u64,
}

impl ImplicitKaryTree {
    /// The complete `k`-ary tree of the given `depth` (`k ≥ 1`); same
    /// shape and numbering as the materialized generator.
    pub fn new(k: usize, depth: u32) -> Result<Self> {
        if k == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "k-ary tree needs k >= 1".into(),
            });
        }
        let n = kary_tree_size(k, depth);
        crate::error::check_vertex_count(n)?;
        Ok(ImplicitKaryTree { k: k as u64, n })
    }

    /// Number of children of `v` (`k` for internal vertices, fewer on the
    /// boundary level, 0 for leaves).
    #[inline]
    fn child_count(&self, v: Vertex) -> usize {
        let first = v as u64 * self.k + 1;
        if first >= self.n {
            0
        } else {
            (self.n - first).min(self.k) as usize
        }
    }
}

impl ImplicitGraph for ImplicitKaryTree {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n as usize
    }

    #[inline]
    fn degree(&self, v: Vertex) -> usize {
        (v != 0) as usize + self.child_count(v)
    }

    #[inline]
    fn neighbor(&self, v: Vertex, i: usize) -> Vertex {
        // Parent first (its id is always below v), then children ascending.
        if v != 0 && i == 0 {
            return ((v as u64 - 1) / self.k) as Vertex;
        }
        let child = i - (v != 0) as usize;
        debug_assert!(child < self.child_count(v));
        (v as u64 * self.k + 1 + child as u64) as Vertex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, grid, hypercube, trees};

    /// Assert an implicit family agrees with its CSR counterpart on vertex
    /// count, every degree, and every neighbor *in order* — the contract
    /// that makes the two engine routes bit-for-bit identical.
    fn assert_matches_csr<G: ImplicitGraph>(implicit: &G, csr: &Graph, label: &str) {
        assert_eq!(implicit.num_vertices(), csr.num_vertices(), "{label}: n");
        for v in csr.vertices() {
            let deg = csr.degree(v);
            assert_eq!(implicit.degree(v), deg, "{label}: degree({v})");
            for i in 0..deg {
                assert_eq!(
                    implicit.neighbor(v, i),
                    csr.neighbor(v, i),
                    "{label}: neighbor({v}, {i})"
                );
            }
        }
    }

    /// Neighbor lists must be strictly ascending even where no CSR
    /// counterpart exists to compare against.
    fn assert_ascending<G: ImplicitGraph>(g: &G, v: Vertex, label: &str) {
        let deg = g.degree(v);
        for i in 1..deg {
            assert!(
                g.neighbor(v, i - 1) < g.neighbor(v, i),
                "{label}: neighbors of {v} not ascending at {i}"
            );
        }
    }

    #[test]
    fn grid_matches_csr() {
        for extents in [&[9][..], &[2, 2], &[7, 7], &[3, 4, 5], &[1, 1, 1, 1]] {
            let implicit = ImplicitGrid::new(extents).unwrap();
            let csr = grid::try_grid(extents).unwrap();
            assert_matches_csr(&implicit, &csr, &format!("grid {extents:?}"));
        }
    }

    #[test]
    fn torus_matches_csr() {
        for extents in [&[4][..], &[47], &[2, 2], &[4, 3, 2]] {
            let implicit = ImplicitTorus::new(extents).unwrap();
            let csr = grid::try_torus(extents).unwrap();
            assert_matches_csr(&implicit, &csr, &format!("torus {extents:?}"));
        }
    }

    #[test]
    fn torus_rejects_what_csr_rejects() {
        assert!(ImplicitTorus::new(&[1, 3]).is_err());
        assert!(ImplicitTorus::new(&[]).is_err());
        assert!(ImplicitTorus::new(&[2; MAX_TORUS_DIMS + 1]).is_err());
    }

    #[test]
    fn hypercube_matches_csr() {
        for dim in 1..=6u32 {
            let implicit = ImplicitHypercube::new(dim).unwrap();
            let csr = hypercube::hypercube(dim);
            assert_matches_csr(&implicit, &csr, &format!("Q{dim}"));
        }
    }

    #[test]
    fn hypercube_accepts_the_id_space_boundary() {
        // dim = 32 is the n = 2³² graph: max id exactly u32::MAX. The CSR
        // route cannot build it; the implicit route must address it fully.
        let q = ImplicitHypercube::new(32).unwrap();
        assert_eq!(q.num_vertices(), 1usize << 32);
        assert_eq!(q.degree(0), 32);
        assert_eq!(q.neighbor(0, 0), 1);
        assert_eq!(q.neighbor(0, 31), 1 << 31);
        // The all-ones vertex: every neighbor clears one bit, descending
        // magnitude as the flipped bit gets lower — ascending id order.
        let top = u32::MAX;
        assert_eq!(q.neighbor(top, 0), !(1u32 << 31));
        assert_eq!(q.neighbor(top, 31), top - 1);
        assert_ascending(&q, top, "Q32");
        assert_ascending(&q, 0x8000_0001, "Q32");
        assert!(ImplicitHypercube::new(0).is_err());
        assert!(ImplicitHypercube::new(33).is_err());
    }

    #[test]
    fn complete_matches_csr() {
        for n in [2usize, 3, 5, 8] {
            let implicit = ImplicitComplete::new(n).unwrap();
            let csr = classic::complete(n).unwrap();
            assert_matches_csr(&implicit, &csr, &format!("K{n}"));
        }
        assert!(ImplicitComplete::new(1).is_err());
    }

    #[test]
    fn complete_at_the_id_space_boundary() {
        let n = u32::MAX as usize + 1;
        let k = ImplicitComplete::new(n).unwrap();
        assert_eq!(k.num_vertices(), n);
        assert_eq!(k.degree(0), n - 1);
        // Neighbors of 0 are 1..=u32::MAX; of u32::MAX are 0..u32::MAX.
        assert_eq!(k.neighbor(0, n - 2), u32::MAX);
        assert_eq!(k.neighbor(u32::MAX, 0), 0);
        assert_eq!(k.neighbor(u32::MAX, n - 2), u32::MAX - 1);
        assert!(ImplicitComplete::new(n + 1).is_err());
    }

    #[test]
    fn kary_tree_matches_csr() {
        for (k, depth) in [(1usize, 4u32), (2, 3), (3, 2), (5, 1), (3, 0)] {
            let implicit = ImplicitKaryTree::new(k, depth).unwrap();
            let csr = trees::kary_tree(k, depth).unwrap();
            assert_matches_csr(&implicit, &csr, &format!("{k}-ary depth {depth}"));
        }
        assert!(ImplicitKaryTree::new(0, 2).is_err());
    }

    #[test]
    fn csr_graph_is_its_own_implicit_form() {
        let g = grid::grid(&[3, 3]);
        assert_matches_csr(&&g, &g, "CSR-as-implicit");
    }

    #[test]
    fn reference_delegation() {
        let q = ImplicitHypercube::new(3).unwrap();
        let by_ref: &ImplicitHypercube = &q;
        assert_eq!(ImplicitGraph::num_vertices(&by_ref), 8);
        assert_eq!(ImplicitGraph::degree(&by_ref, 5), 3);
        assert_eq!(ImplicitGraph::neighbor(&by_ref, 0, 2), 4);
    }
}
