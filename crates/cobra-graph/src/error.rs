//! Error types for graph construction and validation.

use std::fmt;

/// Result alias used throughout `cobra-graph`.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph being built.
        num_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied to a builder configured to reject
    /// them. Walk processes in the paper are defined on simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// A duplicate edge was supplied to a builder configured to reject them.
    DuplicateEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Graph parameters were invalid (e.g. a `d`-regular graph with `n*d`
    /// odd, or a grid with zero dimensions).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The number of vertices would exceed the `u32` id space.
    TooManyVertices {
        /// The requested vertex count.
        requested: u64,
    },
    /// A random construction failed to produce a valid instance within its
    /// retry budget (e.g. pairing-model regular graph rejection sampling).
    GenerationFailed {
        /// Description of the construction that failed.
        what: String,
        /// Number of attempts made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} not allowed")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v}) not allowed")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid graph parameter: {reason}")
            }
            GraphError::TooManyVertices { requested } => write!(
                f,
                "requested {requested} vertices, exceeding the u32 id space"
            ),
            GraphError::GenerationFailed { what, attempts } => write!(
                f,
                "random generation of {what} failed after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));

        let e = GraphError::InvalidParameter {
            reason: "n*d must be even".into(),
        };
        assert!(e.to_string().contains("n*d must be even"));

        let e = GraphError::TooManyVertices {
            requested: u64::MAX,
        };
        assert!(e.to_string().contains("u32"));

        let e = GraphError::GenerationFailed {
            what: "3-regular graph".into(),
            attempts: 7,
        };
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 2 }
        );
    }
}
