//! Error types for graph construction and validation.

use std::fmt;

/// Result alias used throughout `cobra-graph`.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors raised while building or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph being built.
        num_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied to a builder configured to reject
    /// them. Walk processes in the paper are defined on simple graphs.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: u32,
    },
    /// A duplicate edge was supplied to a builder configured to reject them.
    DuplicateEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Graph parameters were invalid (e.g. a `d`-regular graph with `n*d`
    /// odd, or a grid with zero dimensions).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The number of vertices would exceed the `u32` id space.
    TooManyVertices {
        /// The requested vertex count.
        requested: u64,
    },
    /// A random construction failed to produce a valid instance within its
    /// retry budget (e.g. pairing-model regular graph rejection sampling).
    GenerationFailed {
        /// Description of the construction that failed.
        what: String,
        /// Number of attempts made.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} not allowed")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v}) not allowed")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid graph parameter: {reason}")
            }
            GraphError::TooManyVertices { requested } => write!(
                f,
                "requested {requested} vertices, exceeding the u32 id space"
            ),
            GraphError::GenerationFailed { what, attempts } => write!(
                f,
                "random generation of {what} failed after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Validate a requested vertex count against the `u32` id space.
///
/// Vertex ids are [`crate::Vertex`] (`u32`), so a graph may hold up to
/// `2³²` vertices — ids `0 ..= u32::MAX`. This is the single shared guard
/// every generator (and the CSR constructor) routes through; it replaces
/// five hand-rolled `n > u32::MAX` copies that each rejected the
/// representable boundary `n = 2³²` off by one. Counts strictly beyond
/// `2³²` get a consistent [`GraphError::TooManyVertices`].
#[inline]
pub fn check_vertex_count(requested: u64) -> Result<()> {
    const MAX_VERTICES: u64 = u32::MAX as u64 + 1; // ids 0..=u32::MAX
    if requested > MAX_VERTICES {
        Err(GraphError::TooManyVertices { requested })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("duplicate"));

        let e = GraphError::InvalidParameter {
            reason: "n*d must be even".into(),
        };
        assert!(e.to_string().contains("n*d must be even"));

        let e = GraphError::TooManyVertices {
            requested: u64::MAX,
        };
        assert!(e.to_string().contains("u32"));

        let e = GraphError::GenerationFailed {
            what: "3-regular graph".into(),
            attempts: 7,
        };
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn vertex_count_boundary_is_inclusive() {
        // The representable boundary: n = 2³² vertices means the maximum
        // id is exactly u32::MAX — accepted. One past that is rejected.
        assert!(check_vertex_count(0).is_ok());
        assert!(check_vertex_count(u32::MAX as u64).is_ok());
        assert!(check_vertex_count(u32::MAX as u64 + 1).is_ok());
        assert_eq!(
            check_vertex_count(u32::MAX as u64 + 2),
            Err(GraphError::TooManyVertices {
                requested: u32::MAX as u64 + 2
            })
        );
        assert!(check_vertex_count(u64::MAX).is_err());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { vertex: 1 },
            GraphError::SelfLoop { vertex: 2 }
        );
    }
}
