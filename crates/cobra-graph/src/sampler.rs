//! Precomputed uniform-neighbor sampling.
//!
//! Every walk kernel's inner loop is "pick a uniformly random neighbor of
//! `v`". The naive route recomputes, per draw, the CSR slice bounds (two
//! offset loads) and — on the Lemire rejection path — the threshold
//! `(2⁶⁴ − d) mod d` from the degree. A [`NeighborSampler`] is built once
//! per graph and amortizes all of that across every draw of every trial:
//!
//! * a packed per-vertex table of `(offset, degree, threshold)`, one load
//!   per draw instead of two offset loads plus a mod;
//! * a **regular-graph fast path**: when every vertex has the same degree
//!   `d`, the adjacency run of `v` starts at exactly `v·d`, so the table
//!   collapses to a single shared `(degree, threshold)` pair and the
//!   per-draw table load disappears entirely.
//!
//! **Stream compatibility.** [`NeighborSampler::sample`] consumes exactly
//! the same `u64` stream as `cobra_core::process::sample_index` and
//! `rand::RngExt::random_range` (all three are the same widening-multiply
//! rejection sampler; precomputing the threshold changes *when* it is
//! computed, never *which* draws are rejected). This is what lets the
//! scratch-engine trial runners swap the sampler in while staying
//! bit-for-bit identical to the allocating path — pinned by
//! `tests/engine_equivalence.rs` and the proptests below.

use crate::{Graph, Vertex};
use rand::Rng;

/// Packed sampling metadata for one vertex.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Start of the vertex's adjacency run in the CSR neighbor array.
    offset: usize,
    /// Degree of the vertex.
    degree: u32,
    /// Lemire rejection threshold `(2⁶⁴ − degree) mod degree` (0 for
    /// isolated vertices, which can never be sampled from anyway).
    threshold: u32,
}

/// The table behind a [`NeighborSampler`]: collapsed to one shared slot
/// for regular graphs, per-vertex otherwise.
#[derive(Clone, Debug)]
enum Table {
    /// All vertices share degree `degree`; vertex `v`'s run starts at
    /// `v · degree`.
    Regular {
        /// The shared degree.
        degree: u32,
        /// The shared rejection threshold.
        threshold: u32,
    },
    /// One [`Slot`] per vertex.
    PerVertex(Vec<Slot>),
}

/// Lemire rejection threshold `(2⁶⁴ − d) mod d` for span `d` (callers
/// guarantee the span of an actual draw is nonzero; isolated vertices get
/// a placeholder 0). Public so generic draw strategies outside this crate
/// (e.g. implicit-graph draws in `cobra-core`) can precompute the exact
/// threshold this crate's table stores — the proptests below pin it
/// against the lazy recompute-per-draw route at the boundary degrees
/// `d = 1`, `d = 2`, and `d` near `u32::MAX`.
#[inline]
pub fn threshold_for(d: u32) -> u32 {
    if d == 0 {
        0
    } else {
        ((d as u64).wrapping_neg() % d as u64) as u32
    }
}

/// Widening-multiply rejection sampling with a precomputed threshold:
/// uniform in `0..span`, consuming exactly the same `u64` stream as the
/// recompute-per-draw variants (`sample_index`, `random_range`). A redraw
/// happens iff the low 64 bits of `x·span` fall below `threshold`; since
/// `threshold < span`, that is precisely the condition the lazy variants
/// reject on.
#[inline]
pub fn lemire_draw<R: Rng + ?Sized>(span: u64, threshold: u64, rng: &mut R) -> usize {
    debug_assert!(span > 0);
    debug_assert_eq!(threshold, span.wrapping_neg() % span);
    let x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    while (m as u64) < threshold {
        m = (rng.next_u64() as u128).wrapping_mul(span as u128);
    }
    (m >> 64) as usize
}

/// A per-graph table for drawing uniformly random neighbors with one
/// packed-slot load (or none, on regular graphs) and no per-draw threshold
/// recomputation. Build once per graph, share read-only across workers.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    table: Table,
    n: usize,
}

impl NeighborSampler {
    /// Build the sampling table for `g`: O(n) time and, for irregular
    /// graphs, 16 bytes per vertex (nothing at all for regular ones).
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let table = match g.regularity() {
            Some(d) if d > 0 => Table::Regular {
                degree: d as u32,
                threshold: threshold_for(d as u32),
            },
            _ => {
                let (offsets, _) = g.csr_parts();
                Table::PerVertex(
                    (0..n)
                        .map(|v| {
                            let degree = (offsets[v + 1] - offsets[v]) as u32;
                            Slot {
                                offset: offsets[v],
                                degree,
                                threshold: threshold_for(degree),
                            }
                        })
                        .collect(),
                )
            }
        };
        NeighborSampler { table, n }
    }

    /// Number of vertices the table was built for.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Whether the regular-graph fast path (single shared slot) is active.
    pub fn is_regular(&self) -> bool {
        matches!(self.table, Table::Regular { .. })
    }

    /// The packed slot for `v`.
    #[inline]
    fn slot(&self, v: Vertex) -> (usize, u32, u32) {
        match &self.table {
            Table::Regular { degree, threshold } => {
                ((v as usize) * (*degree as usize), *degree, *threshold)
            }
            Table::PerVertex(slots) => {
                let s = slots[v as usize];
                (s.offset, s.degree, s.threshold)
            }
        }
    }

    /// Resolve the per-vertex draw state for `v` once: the neighbor run
    /// and the precomputed rejection threshold, ready for repeated
    /// [`BoundSample::draw`]s with no per-draw slot loads. Panics if `v`
    /// is isolated, mirroring `random_neighbor`.
    #[inline]
    pub fn bind<'g>(&self, g: &'g Graph, v: Vertex) -> BoundSample<'g> {
        let (offset, degree, threshold) = self.slot(v);
        assert!(degree > 0, "vertex {v} has no neighbors");
        BoundSample {
            neighbors: &g.csr_parts().1[offset..offset + degree as usize],
            threshold: threshold as u64,
        }
    }

    /// Draw one uniformly random neighbor of `v`. Panics if `v` is
    /// isolated, mirroring `random_neighbor`. Consumes the same RNG stream
    /// as `ns[sample_index(ns.len(), rng)]` on the same state. Burst
    /// draws should [`NeighborSampler::bind`] once and draw repeatedly.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, g: &Graph, v: Vertex, rng: &mut R) -> Vertex {
        self.bind(g, v).draw(rng)
    }
}

/// A [`NeighborSampler`] resolved to one vertex: the neighbor run and the
/// precomputed Lemire threshold, borrowed from the graph's CSR arrays.
#[derive(Clone, Copy, Debug)]
pub struct BoundSample<'g> {
    neighbors: &'g [Vertex],
    threshold: u64,
}

impl BoundSample<'_> {
    /// Draw one uniformly random neighbor of the bound vertex, consuming
    /// the same RNG stream as the recompute-per-draw route.
    #[inline]
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Vertex {
        let i = lemire_draw(self.neighbors.len() as u64, self.threshold, rng);
        self.neighbors[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, gnp, grid, random_regular};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Reference draw: the recompute-per-draw route every kernel used
    /// before the sampler existed.
    fn reference_draw(g: &Graph, v: Vertex, rng: &mut StdRng) -> Vertex {
        let ns = g.neighbors(v);
        ns[rng.random_range(0usize..ns.len())]
    }

    fn zoo() -> Vec<(&'static str, Graph)> {
        vec![
            ("cycle-97", classic::cycle(97).unwrap()),
            ("star-40", classic::star(40).unwrap()),
            ("grid-9x9", grid::grid(&[8, 8])),
            (
                "rr-d3-64",
                random_regular::random_regular(64, 3, &mut StdRng::seed_from_u64(9)).unwrap(),
            ),
            (
                "gnp-120",
                gnp::gnp_connected(120, 0.08, 200, &mut StdRng::seed_from_u64(10)).unwrap(),
            ),
        ]
    }

    #[test]
    fn regular_families_use_the_shared_slot() {
        assert!(NeighborSampler::new(&classic::cycle(12).unwrap()).is_regular());
        assert!(NeighborSampler::new(
            &random_regular::random_regular(32, 4, &mut StdRng::seed_from_u64(1)).unwrap()
        )
        .is_regular());
        // Grids have corner/edge/interior degree classes.
        assert!(!NeighborSampler::new(&grid::grid(&[5, 5])).is_regular());
        assert!(!NeighborSampler::new(&classic::star(9).unwrap()).is_regular());
    }

    #[test]
    fn threshold_matches_definition() {
        for d in 1u32..200 {
            assert_eq!(
                threshold_for(d) as u64,
                (d as u64).wrapping_neg() % d as u64
            );
            assert!((threshold_for(d)) < d);
        }
    }

    #[test]
    fn threshold_boundary_degrees() {
        // d = 1: 2⁶⁴ mod 1 = 0 — a degree-1 draw never rejects.
        assert_eq!(threshold_for(1), 0);
        // d = 2: 2⁶⁴ is even, so again no rejection region.
        assert_eq!(threshold_for(2), 0);
        // d = 3: 2⁶⁴ ≡ 1 (mod 3).
        assert_eq!(threshold_for(3), 1);
        // Powers of two always divide 2⁶⁴ exactly.
        assert_eq!(threshold_for(1 << 31), 0);
        // d = u32::MAX: 2³² ≡ 1 (mod 2³²−1) ⇒ 2⁶⁴ ≡ 1. The single-u64
        // rejection region at the largest representable degree.
        assert_eq!(threshold_for(u32::MAX), 1);
        // d = u32::MAX − 1: 2³² ≡ 2 (mod 2³²−2) ⇒ 2⁶⁴ ≡ 4.
        assert_eq!(threshold_for(u32::MAX - 1), 4);
    }

    #[test]
    fn lemire_draw_boundary_degrees_match_reference() {
        // Eager-threshold draws must consume the identical u64 stream as
        // the lazy `random_range` route at the degrees where the rejection
        // arithmetic is most delicate: trivial spans and spans within a
        // few of the u32 ceiling.
        for span in [1u64, 2, 3, (1 << 31), u32::MAX as u64 - 1, u32::MAX as u64] {
            let threshold = threshold_for(span as u32) as u64;
            let mut a = StdRng::seed_from_u64(span ^ 0xB0A7);
            let mut b = StdRng::seed_from_u64(span ^ 0xB0A7);
            for round in 0..500u32 {
                let eager = lemire_draw(span, threshold, &mut a);
                let lazy = b.random_range(0u64..span) as usize;
                assert_eq!(eager, lazy, "span {span} round {round}");
                assert!(eager < span as usize);
            }
            assert_eq!(a.next_u64(), b.next_u64(), "span {span}: streams diverged");
        }
    }

    #[test]
    fn draws_match_reference_on_shared_seeds() {
        // Same seed, same vertex sequence ⇒ identical draws AND identical
        // RNG positions afterwards (stream compatibility, not just
        // distributional agreement).
        for (name, g) in zoo() {
            let sampler = NeighborSampler::new(&g);
            let mut a = StdRng::seed_from_u64(0xFEED);
            let mut b = StdRng::seed_from_u64(0xFEED);
            for round in 0..2000u32 {
                let v = (round as usize * 31) % g.num_vertices();
                let via_sampler = sampler.sample(&g, v as Vertex, &mut a);
                let via_reference = reference_draw(&g, v as Vertex, &mut b);
                assert_eq!(via_sampler, via_reference, "{name} round {round}");
            }
            assert_eq!(
                a.next_u64(),
                b.next_u64(),
                "{name}: RNG streams diverged (different u64 consumption)"
            );
        }
    }

    #[test]
    fn bound_draws_match_repeated_sample() {
        let g = grid::grid(&[6, 6]);
        let sampler = NeighborSampler::new(&g);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for v in 0..g.num_vertices() as Vertex {
            let bound = sampler.bind(&g, v);
            let burst: Vec<Vertex> = (0..3).map(|_| bound.draw(&mut a)).collect();
            let singles: Vec<Vertex> = (0..3).map(|_| sampler.sample(&g, v, &mut b)).collect();
            assert_eq!(burst, singles);
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "no neighbors")]
    fn isolated_vertex_panics() {
        let g = Graph::empty(3);
        let sampler = NeighborSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(0);
        sampler.sample(&g, 1, &mut rng);
    }

    #[test]
    fn chi_square_uniform_per_degree_class() {
        // For each degree class present in the zoo, pool draws from one
        // representative vertex and check the empirical neighbor histogram
        // against uniform with a chi-square statistic. Threshold: mean +
        // 6σ of χ²(d−1), i.e. (d−1) + 6·√(2(d−1)) — loose enough to be
        // deterministic-stable, tight enough to catch a biased table.
        for (name, g) in zoo() {
            let sampler = NeighborSampler::new(&g);
            let mut rng = StdRng::seed_from_u64(0xC0FFEE);
            let mut seen_degrees = std::collections::HashSet::new();
            for v in 0..g.num_vertices() as Vertex {
                let d = g.degree(v);
                if d < 2 || !seen_degrees.insert(d) {
                    continue;
                }
                let draws = 2000 * d;
                let mut counts = vec![0usize; d];
                let ns = g.neighbors(v);
                for _ in 0..draws {
                    let u = sampler.sample(&g, v, &mut rng);
                    let slot = ns.binary_search(&u).expect("draw must be adjacent");
                    counts[slot] += 1;
                }
                let expect = draws as f64 / d as f64;
                let chi2: f64 = counts
                    .iter()
                    .map(|&c| {
                        let diff = c as f64 - expect;
                        diff * diff / expect
                    })
                    .sum();
                let df = (d - 1) as f64;
                let bound = df + 6.0 * (2.0 * df).sqrt();
                assert!(
                    chi2 <= bound,
                    "{name} degree {d}: χ² = {chi2:.1} > {bound:.1}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Draws are always adjacent to the queried vertex, on random
        /// connected G(n,p) instances and random vertex/seed choices.
        #[test]
        fn draws_are_always_adjacent(
            graph_seed in 0u64..1000,
            rng_seed in 0u64..1000,
            n in 10usize..80,
        ) {
            let mut grng = StdRng::seed_from_u64(graph_seed);
            let g = gnp::gnp_connected(n, 0.15, 200, &mut grng).unwrap();
            let sampler = NeighborSampler::new(&g);
            let mut rng = StdRng::seed_from_u64(rng_seed);
            for i in 0..200usize {
                let v = (i * 17 + rng_seed as usize) % g.num_vertices();
                let u = sampler.sample(&g, v as Vertex, &mut rng);
                prop_assert!(g.has_edge(v as Vertex, u), "{v} -> {u} not an edge");
            }
        }

        /// Eager (precomputed-threshold) and lazy (recompute-on-demand)
        /// Lemire rejection stay stream-identical for arbitrary spans,
        /// including spans drawn from the top of the u32 range where the
        /// rejection region is a handful of u64s out of 2⁶⁴.
        #[test]
        fn lemire_streams_agree_for_arbitrary_spans(
            small in 1u32..64,
            huge in (u32::MAX - 64)..u32::MAX,
            rng_seed in 0u64..1000,
        ) {
            for span in [small as u64, huge as u64] {
                let threshold = threshold_for(span as u32) as u64;
                let mut a = StdRng::seed_from_u64(rng_seed);
                let mut b = StdRng::seed_from_u64(rng_seed);
                for _ in 0..64 {
                    let eager = lemire_draw(span, threshold, &mut a);
                    let lazy = b.random_range(0u64..span) as usize;
                    prop_assert_eq!(eager, lazy);
                }
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        /// Stream compatibility on random graphs: the sampler and the
        /// `random_range` reference make identical draws from identical
        /// seeds and leave the RNG at the same position.
        #[test]
        fn stream_compatible_with_random_range(
            graph_seed in 0u64..1000,
            rng_seed in 0u64..1000,
        ) {
            let mut grng = StdRng::seed_from_u64(graph_seed);
            let g = gnp::gnp_connected(40, 0.2, 200, &mut grng).unwrap();
            let sampler = NeighborSampler::new(&g);
            let mut a = StdRng::seed_from_u64(rng_seed);
            let mut b = StdRng::seed_from_u64(rng_seed);
            for v in 0..g.num_vertices() as Vertex {
                for _ in 0..4 {
                    prop_assert_eq!(
                        sampler.sample(&g, v, &mut a),
                        reference_draw(&g, v, &mut b)
                    );
                }
            }
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
