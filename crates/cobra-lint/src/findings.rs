//! Finding representation, human rendering, and the machine-readable
//! JSON report.

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation of this specific violation.
    pub message: String,
}

impl Finding {
    /// `path:line:col: [rule] message` — the grep-able diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// The result of linting one file or a whole tree: surviving findings
/// plus the suppressed ones (reported in JSON so suppression debt stays
/// visible).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived suppression — these fail `--deny`.
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `lint:allow`, with their reasons.
    pub suppressed: Vec<(Finding, String)>,
    /// Number of files linted.
    pub files: usize,
}

impl Report {
    /// Merge another report (for aggregating per-file results).
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.files += other.files;
    }

    /// Stable output order: path, then line, then rule.
    pub fn sort(&mut self) {
        let key = |f: &Finding| (f.path.clone(), f.line, f.col, f.rule);
        self.findings.sort_by_key(key);
        self.suppressed.sort_by_key(|(f, _)| key(f));
    }

    /// The machine-readable report (`cobra-lint/findings-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"cobra-lint/findings-v1\",\n");
        s.push_str(&format!("  \"files_linted\": {},\n", self.files));
        s.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        s.push_str(&format!(
            "  \"suppressed_count\": {},\n",
            self.suppressed.len()
        ));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&render_json_finding(f, None));
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"suppressed\": [\n");
        for (i, (f, reason)) in self.suppressed.iter().enumerate() {
            s.push_str(&render_json_finding(f, Some(reason)));
            s.push_str(if i + 1 < self.suppressed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn render_json_finding(f: &Finding, reason: Option<&str>) -> String {
    let mut s = format!(
        "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"",
        escape(f.rule),
        escape(&f.path),
        f.line,
        f.col,
        escape(&f.message)
    );
    if let Some(r) = reason {
        s.push_str(&format!(", \"reason\": \"{}\"", escape(r)));
    }
    s.push('}');
    s
}

/// Minimal JSON string escaping (the linter is dependency-free, so this
/// mirrors cobra-bench's `escape_str` rather than importing it).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            message: "msg with \"quotes\"".to_string(),
        }
    }

    #[test]
    fn render_is_grepable() {
        assert_eq!(
            f("float-eq", "a/b.rs", 3).render(),
            "a/b.rs:3:1: [float-eq] msg with \"quotes\""
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            findings: vec![f("float-eq", "a.rs", 1)],
            suppressed: vec![(f("no-unwrap-in-lib", "b.rs", 2), "why".to_string())],
            files: 2,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\"suppressed_count\": 1"));
        assert!(j.contains("msg with \\\"quotes\\\""));
        assert!(j.contains("\"reason\": \"why\""));
    }

    #[test]
    fn sort_orders_by_path_then_line() {
        let mut r = Report {
            findings: vec![f("float-eq", "b.rs", 1), f("float-eq", "a.rs", 9)],
            suppressed: vec![],
            files: 2,
        };
        r.sort();
        assert_eq!(r.findings[0].path, "a.rs");
    }
}
