//! Rule scoping: which invariants apply to which workspace paths.
//!
//! The scoping is *part of the contract*, not configuration — it
//! encodes where each invariant is load-bearing (wall-clock reads are
//! fine in the bench harness, fatal in an engine crate), so it lives in
//! code next to the rules rather than in a config file someone can
//! drift.

/// Path-derived facts about one source file.
#[derive(Clone, Copy, Debug)]
pub struct PathScope<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Crate name for `crates/<name>/…` paths; `None` for the umbrella
    /// crate's `src/`, `tests/`, `examples/`.
    pub krate: Option<&'a str>,
    /// Inside some `src/bin/` directory (experiment/bench binaries).
    pub is_bin: bool,
    /// An integration test, bench, or example — code whose panics and
    /// timing cannot affect recorded experiment outcomes.
    pub is_test_code: bool,
    /// The file's basename.
    pub file_name: &'a str,
}

impl<'a> PathScope<'a> {
    /// Classify a workspace-relative path.
    pub fn of(path: &'a str) -> PathScope<'a> {
        let krate = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next());
        let is_bin = path.contains("/src/bin/");
        let is_test_code = path.starts_with("tests/")
            || path.contains("/tests/")
            || path.starts_with("examples/")
            || path.contains("/examples/")
            || path.contains("/benches/");
        let file_name = path.rsplit('/').next().unwrap_or(path);
        PathScope {
            path,
            krate,
            is_bin,
            is_test_code,
            file_name,
        }
    }

    /// Library source: under some crate's `src/` (not `src/bin/`) or the
    /// umbrella `src/`.
    fn is_lib_src(&self) -> bool {
        !self.is_bin
            && !self.is_test_code
            && (self.path.contains("/src/") || self.path.starts_with("src/"))
    }

    /// The crates whose outputs are experiment outcomes: any wall-clock
    /// read there is a determinism hazard. The bench harness
    /// (`cobra-bench`) and the linter itself are excluded — timing is
    /// their job.
    fn is_outcome_crate(&self) -> bool {
        matches!(
            self.krate,
            Some(
                "cobra-core"
                    | "cobra-graph"
                    | "cobra-sim"
                    | "cobra-analysis"
                    | "cobra-spectral"
                    | "cobra-obs"
            )
        ) || (self.krate.is_none() && self.path.starts_with("src/"))
    }

    /// seed-discipline: experiment and bench binaries must derive every
    /// seed through `cobra_bench::stages` / `SeedSequence`.
    pub fn check_seed_discipline(&self) -> bool {
        self.path.starts_with("crates/cobra-bench/src/bin/")
    }

    /// ordered-iteration: engine and simulation crates must not iterate
    /// hash containers in outcome-affecting (non-test) code.
    pub fn check_ordered_iteration(&self) -> bool {
        matches!(self.krate, Some("cobra-core" | "cobra-sim")) && !self.is_test_code
    }

    /// atomic-artifacts: artifact writes go through an `fsio.rs`
    /// (write-temp-fsync-rename); raw `fs::write` / `File::create` are
    /// banned everywhere else outside test code.
    pub fn check_atomic_artifacts(&self) -> bool {
        !self.is_test_code && self.file_name != "fsio.rs"
    }

    /// no-wall-clock: `Instant::now` / `SystemTime::now` are banned in
    /// outcome-affecting crates.
    pub fn check_no_wall_clock(&self) -> bool {
        self.is_outcome_crate() && !self.is_test_code
    }

    /// unsafe-safety-comment applies everywhere first-party.
    pub fn check_unsafe_safety(&self) -> bool {
        true
    }

    /// no-unwrap-in-lib: library crates surface errors as `Result` or
    /// `expect` with a message; bare `unwrap` is confined to tests,
    /// benches, examples, and binaries.
    pub fn check_no_unwrap(&self) -> bool {
        self.is_lib_src()
    }

    /// probe-discipline: the engine crates (and the probe crate itself)
    /// report events through the `cobra_obs::Probe` seam — no ad-hoc
    /// console telemetry or global Atomic counters in library code.
    /// Bench binaries print their reports; tests assert however they
    /// like.
    pub fn check_probe_discipline(&self) -> bool {
        matches!(self.krate, Some("cobra-core" | "cobra-sim" | "cobra-obs")) && self.is_lib_src()
    }

    /// float-eq: exact float comparison is banned in the statistics
    /// paths (`cobra-analysis`, plus `cobra-sim`'s stats module).
    pub fn check_float_eq(&self) -> bool {
        (matches!(self.krate, Some("cobra-analysis")) && !self.is_test_code)
            || self.path == "crates/cobra-sim/src/stats.rs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let s = PathScope::of("crates/cobra-bench/src/bin/e8_lollipop.rs");
        assert_eq!(s.krate, Some("cobra-bench"));
        assert!(s.is_bin);
        assert!(s.check_seed_discipline());
        assert!(!s.check_no_unwrap());
        assert!(!s.check_no_wall_clock());
        assert!(s.check_atomic_artifacts());

        let s = PathScope::of("crates/cobra-core/src/lanes.rs");
        assert!(s.check_ordered_iteration());
        assert!(s.check_no_wall_clock());
        assert!(s.check_no_unwrap());
        assert!(!s.check_seed_discipline());

        let s = PathScope::of("crates/cobra-sim/src/fsio.rs");
        assert!(!s.check_atomic_artifacts());
        assert!(s.check_no_unwrap());

        let s = PathScope::of("tests/zero_alloc.rs");
        assert!(s.is_test_code);
        assert!(!s.check_no_unwrap());
        assert!(s.check_unsafe_safety());
        assert!(!s.check_atomic_artifacts());

        let s = PathScope::of("crates/cobra-analysis/src/fit.rs");
        assert!(s.check_float_eq());
        let s = PathScope::of("crates/cobra-sim/src/stats.rs");
        assert!(s.check_float_eq());
        let s = PathScope::of("crates/cobra-sim/src/runner.rs");
        assert!(!s.check_float_eq());

        let s = PathScope::of("src/lib.rs");
        assert_eq!(s.krate, None);
        assert!(s.check_no_wall_clock());
        assert!(s.check_no_unwrap());

        let s = PathScope::of("crates/cobra-bench/src/orchestrator.rs");
        assert!(!s.check_no_wall_clock());
        assert!(s.check_no_unwrap());
        assert!(!s.check_probe_discipline());

        let s = PathScope::of("crates/cobra-obs/src/lib.rs");
        assert!(s.check_no_wall_clock());
        assert!(s.check_probe_discipline());
        let s = PathScope::of("crates/cobra-core/src/cobra.rs");
        assert!(s.check_probe_discipline());
        let s = PathScope::of("crates/cobra-core/tests/walks.rs");
        assert!(!s.check_probe_discipline());
    }
}
