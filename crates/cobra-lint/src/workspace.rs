//! Workspace discovery: find the root and enumerate the first-party
//! `.rs` files the invariants apply to.

use std::path::{Path, PathBuf};

/// Directory names that are never first-party source: vendored stand-in
/// crates, build output, and the linter's own deliberately-violating
/// fixture corpus.
const EXCLUDED_DIRS: &[&str] = &["vendor", "target", "fixtures", ".git"];

/// Top-level entries that contain first-party Rust source.
const SOURCE_ROOTS: &[&str] = &["src", "crates", "tests", "examples", "benches"];

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Enumerate every first-party `.rs` file under `root`, as sorted
/// workspace-relative `/`-separated paths.
pub fn first_party_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in SOURCE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_excludes_vendor_and_fixtures() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root above the crate dir");
        let files = first_party_files(&root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/cobra-lint/src/lib.rs"));
        assert!(files.iter().any(|f| f.starts_with("src/")));
        assert!(!files.iter().any(|f| f.contains("vendor/")));
        assert!(!files.iter().any(|f| f.contains("/fixtures/")));
        assert!(!files.iter().any(|f| f.contains("target/")));
    }
}
