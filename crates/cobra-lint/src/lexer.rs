//! A hand-rolled Rust lexer: just enough of the language to drive
//! token-pattern invariant rules.
//!
//! The lexer's contract is *conservative fidelity*: every rule in this
//! crate matches sequences of real code tokens, so the lexer must never
//! leak the inside of a string literal, comment, or char literal into
//! the token stream (a rule fixture mentioning `fs::write` inside a
//! string must not trip the atomic-artifacts rule). It handles the
//! constructs that make Rust tricky to tokenize naively:
//!
//! * nested block comments (`/* /* */ */`);
//! * raw strings with arbitrary hash fences (`r##"…"##`), byte strings,
//!   and raw byte strings;
//! * the lifetime/char-literal ambiguity (`'a` vs `'a'` vs `'\n'`);
//! * raw identifiers (`r#type`);
//! * numeric literals with underscores, radix prefixes, exponents, and
//!   type suffixes — classified into [`TokKind::Int`] vs
//!   [`TokKind::Float`] so the float-eq rule can anchor on them;
//! * multi-character operators (`==`, `!=`, `<<`, `::`, …) grouped into
//!   single punct tokens so rules can match them as units.
//!
//! Comments are not discarded: they come back in a side channel
//! ([`Comment`]) because two rules live entirely in comments —
//! `// SAFETY:` justifications and `// lint:allow(rule, reason)`
//! suppressions.

/// Token classification. Rules mostly match on [`TokKind::Ident`] text
/// and [`TokKind::Punct`] text; literals exist so rules can anchor on
/// them (float-eq) or skip them (everything else).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (including `'_`).
    Lifetime,
    /// An integer literal, including radix-prefixed forms.
    Int,
    /// A floating-point literal (has a fractional part, an exponent, or
    /// an `f32`/`f64` suffix).
    Float,
    /// Any string-like literal: `"…"`, `r"…"`, `b"…"`, `br#"…"#`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// An operator or delimiter, multi-character forms pre-grouped.
    Punct,
}

/// One lexed token with its source position (1-based line and column,
/// both in bytes).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// The token's source text. For raw identifiers the `r#` prefix is
    /// stripped so rules see the plain name.
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

/// One comment (line or block), with its line extent. Doc comments
/// (`///`, `//!`) are included — a `SAFETY:` note in a doc comment
/// still counts as a justification.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//`).
    pub end_line: u32,
}

/// The output of [`lex`]: the token stream plus the comment side
/// channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens and comments. The lexer is total: malformed
/// input (unterminated string, stray byte) never panics — it consumes
/// what it can and moves on, because a linter must degrade gracefully
/// on code that rustc itself would reject.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts (for column math).
    line_start: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.newline();
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.lifetime_or_char(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    // Byte literal b'x'.
                    let (line, col) = self.here();
                    self.pos += 1;
                    self.char_body();
                    self.push_at(TokKind::Char, "b'…'", line, col);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    let (line, col) = self.here();
                    self.pos += 1;
                    self.string_body(line, col);
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_fence_at(2) => {
                    let (line, col) = self.here();
                    self.pos += 2;
                    self.raw_string_body(line, col);
                }
                b'r' if self.raw_fence_at(1) => {
                    let (line, col) = self.here();
                    self.pos += 1;
                    self.raw_string_body(line, col);
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#type: strip the prefix so rules
                    // see the plain name.
                    let (line, col) = self.here();
                    self.pos += 2;
                    let start = self.pos;
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    let text = self.slice(start, self.pos);
                    self.push_at(TokKind::Ident, &text, line, col);
                }
                b if is_ident_start(b) => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Is there a raw-string fence (zero or more `#` then `"`) starting
    /// `off` bytes ahead? Distinguishes `r"…"`/`r##"…"##` from the raw
    /// identifier `r#name`.
    fn raw_fence_at(&self, off: usize) -> bool {
        let mut k = off;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        self.peek(k) == Some(b'"')
    }

    fn newline(&mut self) {
        self.line += 1;
        self.line_start = self.pos;
    }

    fn here(&self) -> (u32, u32) {
        (self.line, (self.pos - self.line_start) as u32 + 1)
    }

    fn slice(&self, start: usize, end: usize) -> String {
        String::from_utf8_lossy(&self.bytes[start..end]).into_owned()
    }

    fn push_at(&mut self, kind: TokKind, text: &str, line: u32, col: u32) {
        self.out.toks.push(Tok {
            kind,
            text: text.to_string(),
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: self.slice(start, self.pos),
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'\n' {
                self.pos += 1;
                self.newline();
            } else if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            text: self.slice(start, self.pos),
            line,
            end_line: self.line,
        });
    }

    /// A `"…"` string starting at the current `"`; emits one Str token.
    fn string(&mut self) {
        let (line, col) = self.here();
        self.string_body(line, col);
    }

    /// Consume from the opening `"` through the closing `"`, honoring
    /// backslash escapes and embedded newlines.
    fn string_body(&mut self, line: u32, col: u32) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 2;
                }
                b'\n' => {
                    self.pos += 1;
                    self.newline();
                }
                _ => self.pos += 1,
            }
        }
        self.push_at(TokKind::Str, "\"…\"", line, col);
    }

    /// Consume `#*"…"#*` (cursor at the first `#` or the `"`); the hash
    /// fence length determines the terminator.
    fn raw_string_body(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'scan: while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.pos += 1;
                self.newline();
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                // A candidate terminator: needs `hashes` hashes after it.
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push_at(TokKind::Str, "r\"…\"", line, col);
    }

    /// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` (char literal),
    /// cursor on the `'`.
    fn lifetime_or_char(&mut self) {
        let (line, col) = self.here();
        match self.peek(1) {
            Some(b'\\') => {
                self.char_body();
                self.push_at(TokKind::Char, "'…'", line, col);
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // `'x'` is a char; `'x` followed by anything else is a
                // lifetime. Scan the ident run and check for a quote.
                let mut end = self.pos + 2;
                while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    self.push_at(TokKind::Char, "'…'", line, col);
                } else {
                    let text = self.slice(self.pos, end);
                    self.pos = end;
                    self.push_at(TokKind::Lifetime, &text, line, col);
                }
            }
            _ => {
                // `'(' '` etc: a char literal of a single punct char.
                self.char_body();
                self.push_at(TokKind::Char, "'…'", line, col);
            }
        }
    }

    /// Consume a char/byte literal body, cursor on the opening `'`.
    fn char_body(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\\' => self.pos += 2,
                b'\n' => return, // malformed; don't eat the file
                _ => self.pos += 1,
            }
        }
    }

    fn ident(&mut self) {
        let (line, col) = self.here();
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        let text = self.slice(start, self.pos);
        self.push_at(TokKind::Ident, &text, line, col);
    }

    fn number(&mut self) {
        let (line, col) = self.here();
        let start = self.pos;
        let mut float = false;
        if self.bytes[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
            // A `.` continues the number only when it is not `..` (range)
            // and not a method/field access like `1.max(2)`.
            if self.peek(0) == Some(b'.')
                && self.peek(1) != Some(b'.')
                && !self.peek(1).is_some_and(is_ident_start)
            {
                float = true;
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                    || (matches!(self.peek(1), Some(b'+' | b'-'))
                        && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
            {
                float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self.peek(0).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            // Type suffix: `1f64` is a float, `1u64` an int.
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            let suffix = self.slice(suffix_start, self.pos);
            if suffix.starts_with('f') {
                float = true;
            }
        }
        let text = self.slice(start, self.pos);
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push_at(kind, &text, line, col);
    }

    fn punct(&mut self) {
        let (line, col) = self.here();
        let rest = &self.bytes[self.pos..];
        for m in MULTI_PUNCTS {
            if rest.starts_with(m.as_bytes()) {
                self.pos += m.len();
                self.push_at(TokKind::Punct, m, line, col);
                return;
            }
        }
        // Single byte (or, for a stray non-ASCII byte, just consume the
        // whole UTF-8 scalar to keep columns sane).
        let mut end = self.pos + 1;
        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
            end += 1;
        }
        let text = self.slice(self.pos, end);
        self.pos = end;
        self.push_at(TokKind::Punct, &text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed = lex("let a = \"fs::write // not code\"; // fs::write\n/* fs::write */");
        let idents: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "a"]);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks[0].text, "fn");
    }

    #[test]
    fn raw_strings_with_fences() {
        let lexed = lex(r####"let s = r##"quote " and "# inside"##; y"####);
        let last = lexed.toks.last().expect("tokens");
        assert_eq!(last.text, "y");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let lexed = lex(r##"let a = b"bytes"; let b = br#"raw"# ; end"##);
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
        assert_eq!(lexed.toks.last().map(|t| t.text.as_str()), Some("end"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let u = '_'; }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            3
        );
    }

    #[test]
    fn number_classification() {
        let lexed = lex("1 1.5 1e3 1_000 0xFF 2f64 3usize 1..2 1.max(2) 7.");
        let kinds: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text.as_str(), t.kind))
            .collect();
        assert_eq!(
            kinds,
            [
                ("1", TokKind::Int),
                ("1.5", TokKind::Float),
                ("1e3", TokKind::Float),
                ("1_000", TokKind::Int),
                ("0xFF", TokKind::Int),
                ("2f64", TokKind::Float),
                ("3usize", TokKind::Int),
                ("1", TokKind::Int),
                ("2", TokKind::Int),
                ("1", TokKind::Int),
                ("2", TokKind::Int),
                ("7.", TokKind::Float),
            ]
        );
    }

    #[test]
    fn multi_char_puncts_group() {
        assert_eq!(
            texts("a == b != c << d :: e .. f ..= g"),
            ["a", "==", "b", "!=", "c", "<<", "d", "::", "e", "..", "f", "..=", "g"]
        );
    }

    #[test]
    fn raw_identifiers_lose_prefix() {
        assert_eq!(texts("let r#type = 1;"), ["let", "type", "=", "1", ";"]);
    }

    #[test]
    fn positions_are_one_based_and_line_accurate() {
        let lexed = lex("a\n  b\n/* c\nd */ e");
        assert_eq!((lexed.toks[0].line, lexed.toks[0].col), (1, 1));
        assert_eq!((lexed.toks[1].line, lexed.toks[1].col), (2, 3));
        assert_eq!(lexed.toks[2].text, "e");
        assert_eq!(lexed.toks[2].line, 4);
        let c = &lexed.comments[0];
        assert_eq!((c.line, c.end_line), (3, 4));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("let c = '");
        lex("r#\"unterminated");
    }
}
