//! Per-file analysis context shared by every rule: brace matching,
//! `#[cfg(test)]` / `#[test]` region detection, suppression comments,
//! and `// SAFETY:` attachment.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// Sentinel for "no matching bracket" in [`FileCtx::brace_match`].
pub const NO_MATCH: usize = usize::MAX;

/// Everything a rule needs to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// The comment side channel.
    pub comments: Vec<Comment>,
    /// Per-token flag: the token lives inside a `#[cfg(test)]` module or
    /// a `#[test]` function body.
    pub in_test: Vec<bool>,
    /// For each `{`/`}` token index, the index of its partner (or
    /// [`NO_MATCH`] when unbalanced).
    pub brace_match: Vec<usize>,
    /// Parsed `lint:allow` suppressions.
    pub suppressions: Vec<Suppression>,
}

/// One parsed `// lint:allow(rule, reason)` comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The free-text reason after the first comma (may be empty, which
    /// the bad-suppression rule reports).
    pub reason: String,
    /// Line of the comment.
    pub line: u32,
    /// Source lines this suppression covers: its own line span plus the
    /// next line holding a code token.
    pub covers: (u32, u32),
}

impl Suppression {
    /// Whether a finding on `line` is covered.
    pub fn covers_line(&self, line: u32) -> bool {
        line >= self.covers.0 && line <= self.covers.1
    }
}

impl FileCtx {
    /// Build the context for one lexed file.
    pub fn new(path: &str, lexed: Lexed) -> FileCtx {
        let Lexed { toks, comments } = lexed;
        let brace_match = match_braces(&toks);
        let in_test = mark_test_regions(&toks, &brace_match);
        let suppressions = parse_suppressions(&comments, &toks);
        FileCtx {
            path: path.to_string(),
            toks,
            comments,
            in_test,
            brace_match,
            suppressions,
        }
    }

    /// The next token index at or after `i` (skipping nothing — tokens
    /// are already comment-free), or `None` at the end.
    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Is token `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// Is token `i` a punct with exactly this text?
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    /// Whether an `unsafe` at token `i` carries a `SAFETY:` comment in
    /// one of the accepted positions: the contiguous comment block
    /// directly above, the same line, or the head of the block/body it
    /// opens (before the first inner token).
    pub fn has_safety_comment(&self, i: usize) -> bool {
        let uline = self.toks[i].line;
        // Same line (trailing or preceding comment on the unsafe line).
        if self
            .comments
            .iter()
            .any(|c| c.line <= uline && c.end_line >= uline && c.text.contains("SAFETY:"))
        {
            return true;
        }
        // Contiguous comment block directly above: walk upward line by
        // line while each line is covered by a comment.
        let mut want = uline.saturating_sub(1);
        while want > 0 {
            let Some(c) = self
                .comments
                .iter()
                .find(|c| c.line <= want && c.end_line >= want)
            else {
                break;
            };
            if c.text.contains("SAFETY:") {
                return true;
            }
            want = c.line.saturating_sub(1);
        }
        // Head of the opened block: find the `{` that follows (within a
        // few tokens — `unsafe {`, `unsafe impl Trait for Type {`), then
        // accept a SAFETY comment between it and the first inner token.
        let open = (i + 1..self.toks.len().min(i + 24)).find(|&j| self.is_punct(j, "{"));
        if let Some(open) = open {
            let open_line = self.toks[open].line;
            let inner_line = self.toks.get(open + 1).map(|t| t.line).unwrap_or(open_line);
            if self
                .comments
                .iter()
                .any(|c| c.line >= open_line && c.line <= inner_line && c.text.contains("SAFETY:"))
            {
                return true;
            }
        }
        false
    }
}

/// Pair up `{`/`}` tokens with a stack scan.
fn match_braces(toks: &[Tok]) -> Vec<usize> {
    let mut out = vec![NO_MATCH; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = i;
                    out[i] = open;
                }
            }
            _ => {}
        }
    }
    out
}

/// Does an attribute token span (the tokens between `#[` and `]`) mark
/// test-only code? `#[test]` does; `#[cfg(test)]` and `#[cfg(all(test,
/// …))]` do; `#[cfg(not(test))]` does not.
fn attr_marks_test(attr: &[Tok]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Mark every token inside a test-attributed `mod` or `fn` body.
fn mark_test_regions(toks: &[Tok], brace_match: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // Attribute start: `#` `[` (also matches inner `#![…]` via the
        // `!`; those never mark tests so the extra scan is harmless).
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "!") {
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.text != "[") {
            i += 1;
            continue;
        }
        // Find the closing `]` (attributes nest brackets rarely; track
        // depth to be safe).
        let start = j + 1;
        let mut depth = 1i32;
        let mut end = start;
        while end < toks.len() && depth > 0 {
            match toks[end].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        let attr = &toks[start..end.saturating_sub(1)];
        if !attr_marks_test(attr) {
            i = end;
            continue;
        }
        // Scan past any further attributes to the item keyword, then to
        // its body `{ … }` (or bail at `;` — `#[cfg(test)] use …;`).
        let mut k = end;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "#" => {
                    // Skip the whole following attribute group.
                    let mut d = 0i32;
                    k += 1;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                ";" => break,
                "{" => {
                    let close = brace_match[k];
                    if close != NO_MATCH {
                        for flag in in_test.iter_mut().take(close + 1).skip(k) {
                            *flag = true;
                        }
                    }
                    break;
                }
                _ => k += 1,
            }
        }
        i = end;
    }
    in_test
}

/// Extract every `lint:allow(rule, reason)` from the comment stream and
/// compute the lines each one covers.
///
/// The directive must be the *start* of the comment (after the `//` /
/// `///` markers): prose that merely mentions the syntax — like this
/// very doc comment — is not a suppression. Several directives may
/// follow each other in one comment.
fn parse_suppressions(comments: &[Comment], toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        while rest.starts_with("lint:allow(") {
            rest = &rest["lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let inside = &rest[..close];
            rest = &rest[close + 1..];
            let (rule, reason) = match inside.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (inside.trim(), ""),
            };
            // Cover the comment's own span plus the next code line.
            let next_code_line = toks
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line);
            out.push(Suppression {
                rule: rule.to_string(),
                reason: reason.to_string(),
                line: c.line,
                covers: (c.line, next_code_line),
            });
            rest = rest.trim_start_matches([',', ';']).trim_start();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/x/src/lib.rs", lex(src))
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let c = ctx("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { helper(); }\n}");
        let helper = c
            .toks
            .iter()
            .position(|t| t.text == "helper")
            .expect("helper token");
        let live = c
            .toks
            .iter()
            .position(|t| t.text == "live")
            .expect("live token");
        assert!(c.in_test[helper]);
        assert!(!c.in_test[live]);
    }

    #[test]
    fn test_fn_is_marked_but_cfg_not_test_is_not() {
        let c = ctx(
            "#[test]\nfn a() { x(); }\n#[cfg(not(test))]\nfn b() { y(); }\n#[cfg(all(test, unix))]\nfn d() { z(); }",
        );
        let pos = |name: &str| c.toks.iter().position(|t| t.text == name).expect("token");
        assert!(c.in_test[pos("x")]);
        assert!(!c.in_test[pos("y")]);
        assert!(c.in_test[pos("z")]);
    }

    #[test]
    fn cfg_test_on_use_item_does_not_swallow_the_file() {
        let c = ctx("#[cfg(test)]\nuse std::x;\nfn live() { body(); }");
        let body = c
            .toks
            .iter()
            .position(|t| t.text == "body")
            .expect("body token");
        assert!(!c.in_test[body]);
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let c = ctx("// lint:allow(float-eq, exact zero guard)\nlet a = b == 0.0;\nlet c = 1;");
        assert_eq!(c.suppressions.len(), 1);
        let s = &c.suppressions[0];
        assert_eq!(s.rule, "float-eq");
        assert_eq!(s.reason, "exact zero guard");
        assert!(s.covers_line(1));
        assert!(s.covers_line(2));
        assert!(!s.covers_line(3));
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let c = ctx("let a = b == 0.0; // lint:allow(float-eq, trailing form)\nlet c = 1;");
        let s = &c.suppressions[0];
        assert!(s.covers_line(1));
    }

    #[test]
    fn missing_reason_is_preserved_as_empty() {
        let c = ctx("// lint:allow(float-eq)\nlet a = 1;");
        assert_eq!(c.suppressions[0].reason, "");
    }

    #[test]
    fn safety_comment_positions() {
        // Above.
        let c = ctx("// SAFETY: fine\nunsafe { x() }");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(c.has_safety_comment(u));
        // Inside, before the first token.
        let c = ctx("unsafe {\n  // SAFETY: fine\n  x()\n}");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(c.has_safety_comment(u));
        // Same line.
        let c = ctx("unsafe { x() } // SAFETY: fine");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(c.has_safety_comment(u));
        // A block of comments above where only the top line says SAFETY.
        let c = ctx("// SAFETY: top\n// continued prose\nunsafe { x() }");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(c.has_safety_comment(u));
        // Absent.
        let c = ctx("fn f() { unsafe { x() } }");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(!c.has_safety_comment(u));
        // A SAFETY comment separated by a blank code line does not count.
        let c = ctx("// SAFETY: far away\nlet y = 1;\nunsafe { x() }");
        let u = c.toks.iter().position(|t| t.text == "unsafe").expect("u");
        assert!(!c.has_safety_comment(u));
    }
}
