//! The invariant rules. Each rule is a pure function over a
//! [`FileCtx`] that appends [`Finding`]s; scoping (which paths a rule
//! runs on) lives in [`crate::config`], suppression filtering in the
//! driver ([`crate::lint_source`]).

use crate::context::FileCtx;
use crate::findings::Finding;
use crate::lexer::TokKind;

/// One rule's registry entry.
pub struct RuleInfo {
    /// The name used in diagnostics and `lint:allow(name, reason)`.
    pub name: &'static str,
    /// One-line description for `--list-rules` and the README.
    pub summary: &'static str,
}

/// Every rule the linter knows, including the meta-rule that validates
/// suppression comments themselves.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "seed-discipline",
        summary: "experiment/bench binaries derive seeds only via cobra_bench::stages or SeedSequence — no ad-hoc XOR/offset arithmetic on seeds",
    },
    RuleInfo {
        name: "ordered-iteration",
        summary: "no HashMap/HashSet iteration in cobra-core/cobra-sim non-test code without a sort or an inline allow",
    },
    RuleInfo {
        name: "atomic-artifacts",
        summary: "no raw fs::write/File::create outside fsio.rs — artifacts go through write-temp-fsync-rename",
    },
    RuleInfo {
        name: "no-wall-clock",
        summary: "no Instant::now/SystemTime::now in outcome-affecting crates (timing belongs to the bench harness)",
    },
    RuleInfo {
        name: "unsafe-safety-comment",
        summary: "every unsafe block/impl carries a `// SAFETY:` justification",
    },
    RuleInfo {
        name: "no-unwrap-in-lib",
        summary: "library crates use Result or expect-with-message; bare unwrap is confined to tests and binaries",
    },
    RuleInfo {
        name: "float-eq",
        summary: "no ==/!= against floats in the statistics paths",
    },
    RuleInfo {
        name: "probe-discipline",
        summary: "no ad-hoc console telemetry (println!/eprintln!/dbg!) or global Atomic counters in engine code — events go through the cobra_obs::Probe seam",
    },
    RuleInfo {
        name: "bad-suppression",
        summary: "lint:allow comments must name a known rule and give a non-empty reason",
    },
];

/// Whether `name` is a registered rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

fn push(out: &mut Vec<Finding>, rule: &'static str, ctx: &FileCtx, i: usize, message: String) {
    let t = &ctx.toks[i];
    out.push(Finding {
        rule,
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// Binary arithmetic/bitwise operators that, applied to a seed, escape
/// the stage registry's disjointness proof.
const SEED_OPS: &[&str] = &["^", "+", "-", "*", "|", "&", "<<", ">>", "%"];

/// Integer methods that implement the same ad-hoc derivations as
/// operators.
const SEED_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
    "reverse_bits",
];

/// Does the token *before* an operator put that operator in binary
/// position (`x ^ seed`) rather than unary (`&seed`, `*seed`, `-x`)?
fn is_operand_end(ctx: &FileCtx, i: usize) -> bool {
    ctx.tok(i).is_some_and(|t| match t.kind {
        TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => true,
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]"),
        _ => false,
    })
}

/// seed-discipline: flag arithmetic on identifiers named `seed` (or
/// `*_seed`) in experiment binaries.
pub fn seed_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || ctx.in_test[i] {
            continue;
        }
        if t.text != "seed" && !t.text.ends_with("_seed") {
            continue;
        }
        // The registry entry point is the sanctioned derivation, not a
        // seed variable.
        if t.text == "stage_seed" {
            continue;
        }
        // Walk back over a field-access chain so `x ^ cfg.seed` anchors
        // the preceding-operator check at `cfg`, not at `.`.
        let mut head = i;
        while head >= 2 && ctx.is_punct(head - 1, ".") && ctx.toks[head - 2].kind == TokKind::Ident
        {
            head -= 2;
        }
        // `|seed|` closure parameters are bindings, not bitwise-or.
        let closure_param = ctx.is_punct(i + 1, "|") && i >= 1 && ctx.is_punct(i - 1, "|");
        let flagged = // seed <op> …
            (!closure_param
                && ctx.toks.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Punct && SEED_OPS.contains(&n.text.as_str())
                }))
            // … <op> seed (or <op> cfg.seed), with the op in binary
            // position. `|` is excluded here: a closure's closing
            // delimiter (`|s| stage_seed(s, …)`) is indistinguishable
            // from bitwise-or by tokens alone, and or-ing seeds is not
            // an observed idiom.
            || (head >= 2
                && ctx.toks[head - 1].kind == TokKind::Punct
                && ctx.toks[head - 1].text != "|"
                && SEED_OPS.contains(&ctx.toks[head - 1].text.as_str())
                && is_operand_end(ctx, head - 2))
            // seed.wrapping_add(…) and friends
            || (ctx.is_punct(i + 1, ".")
                && ctx.toks.get(i + 2).is_some_and(|m| {
                    m.kind == TokKind::Ident && SEED_METHODS.contains(&m.text.as_str())
                }));
        if flagged {
            push(
                out,
                "seed-discipline",
                ctx,
                i,
                format!(
                    "ad-hoc arithmetic on `{}` — derive per-stage seeds via \
                     cobra_bench::stages::stage_seed (or SeedSequence::child), which owns a \
                     registered disjoint label block",
                    t.text
                ),
            );
        }
    }
}

/// Methods whose receiver order is the hash container's arbitrary
/// iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Idents that signal the iteration result is re-ordered before use.
fn is_sortish(text: &str) -> bool {
    text.starts_with("sort") || text == "BTreeMap" || text == "BTreeSet"
}

/// Collect the names of locals and struct fields whose declarations
/// mention `HashMap`/`HashSet`.
fn hash_bound_names(ctx: &FileCtx) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..ctx.toks.len() {
        let t = &ctx.toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back a short window looking for `name :` or `let [mut] name`
        // starting the binding this type annotation/constructor belongs to.
        let lo = i.saturating_sub(16);
        for j in (lo..i).rev() {
            let tj = &ctx.toks[j];
            if tj.kind == TokKind::Punct && (tj.text == ";" || tj.text == "{" || tj.text == "}") {
                break;
            }
            if tj.kind == TokKind::Ident && tj.text == "let" {
                let mut k = j + 1;
                if ctx.is_ident(k, "mut") {
                    k += 1;
                }
                if let Some(name) = ctx.tok(k).filter(|n| n.kind == TokKind::Ident) {
                    names.push(name.text.clone());
                }
                break;
            }
            if tj.kind == TokKind::Punct
                && tj.text == ":"
                && j >= 1
                && ctx.toks[j - 1].kind == TokKind::Ident
            {
                names.push(ctx.toks[j - 1].text.clone());
                break;
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Scan forward from `start` across up to `stmts` statement terminators,
/// returning true if a sort-ish identifier appears (the collect-then-sort
/// idiom spans two statements).
fn sorted_downstream(ctx: &FileCtx, start: usize, stmts: usize) -> bool {
    let mut seen_semis = 0usize;
    for j in start..ctx.toks.len() {
        let t = &ctx.toks[j];
        if t.kind == TokKind::Ident && is_sortish(&t.text) {
            return true;
        }
        if t.kind == TokKind::Punct && t.text == ";" {
            seen_semis += 1;
            if seen_semis >= stmts {
                return false;
            }
        }
    }
    false
}

/// ordered-iteration: iterating a hash container's arbitrary order in
/// engine/simulation code is a nondeterminism hazard.
pub fn ordered_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let names = hash_bound_names(ctx);
    if names.is_empty() {
        return;
    }
    let named =
        |t: &crate::lexer::Tok| t.kind == TokKind::Ident && names.iter().any(|n| n == &t.text);
    // Tokens inside a `for … in <expr> {` header: the for-loop branch
    // owns those, so the method-chain branch below must not re-report
    // `for x in map.values()` a second time.
    let mut in_for_header = vec![false; ctx.toks.len()];
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.toks[i];
        // `for … in <expr containing a hash name> {`
        if t.kind == TokKind::Ident && t.text == "for" {
            let Some(inpos) = (i + 1..ctx.toks.len().min(i + 32)).find(|&j| ctx.is_ident(j, "in"))
            else {
                continue;
            };
            let Some(body) = (inpos + 1..ctx.toks.len()).find(|&j| ctx.is_punct(j, "{")) else {
                continue;
            };
            for flag in &mut in_for_header[inpos + 1..body] {
                *flag = true;
            }
            if ctx.toks[inpos + 1..body].iter().any(named)
                && !ctx.toks[inpos + 1..body]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && is_sortish(&t.text))
            {
                push(
                    out,
                    "ordered-iteration",
                    ctx,
                    i,
                    "for-loop over a HashMap/HashSet iterates in arbitrary order — sort first \
                     or justify with lint:allow(ordered-iteration, reason)"
                        .to_string(),
                );
            }
            continue;
        }
        // `name.iter()` / `.keys()` / `.drain()` … without a sort within
        // the next two statements.
        if named(t)
            && !in_for_header[i]
            && ctx.is_punct(i + 1, ".")
            && ctx.toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && !sorted_downstream(ctx, i + 3, 2)
        {
            push(
                out,
                "ordered-iteration",
                ctx,
                i + 2,
                format!(
                    "`{}.{}()` yields arbitrary hash order — sort the results or justify with \
                     lint:allow(ordered-iteration, reason)",
                    t.text,
                    ctx.toks[i + 2].text
                ),
            );
        }
    }
}

/// atomic-artifacts: raw writes bypass the crash-safety contract that
/// every artifact is either the old complete file or the new one.
pub fn atomic_artifacts(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let seq3 = |a: &str, b: &str, c: &str| {
            ctx.is_ident(i, a) && ctx.is_punct(i + 1, b) && ctx.is_ident(i + 2, c)
        };
        if seq3("fs", "::", "write") || seq3("File", "::", "create") {
            push(
                out,
                "atomic-artifacts",
                ctx,
                i,
                "raw file write — route artifacts through the fsio write-temp-fsync-rename \
                 helpers so an interrupted run never leaves a truncated file"
                    .to_string(),
            );
        }
    }
}

/// no-wall-clock: wall-clock reads in outcome-affecting crates leak
/// nondeterminism into results.
pub fn no_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if (ctx.is_ident(i, "Instant") || ctx.is_ident(i, "SystemTime"))
            && ctx.is_punct(i + 1, "::")
            && ctx.is_ident(i + 2, "now")
        {
            push(
                out,
                "no-wall-clock",
                ctx,
                i,
                format!(
                    "`{}::now` in an outcome-affecting crate — timing belongs to the bench \
                     harness, results must be a function of seeds alone",
                    ctx.toks[i].text
                ),
            );
        }
    }
}

/// unsafe-safety-comment: every `unsafe` block, impl, or trait must
/// carry a written justification. `unsafe fn` signatures are exempt —
/// the obligation sits on their callers (and on the explicit blocks in
/// their bodies).
pub fn unsafe_safety(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if !ctx.is_ident(i, "unsafe") {
            continue;
        }
        let Some(next) = ctx.tok(i + 1) else { continue };
        let form = match next.text.as_str() {
            "{" => "block",
            "impl" => "impl",
            "trait" => "trait",
            _ => continue,
        };
        if !ctx.has_safety_comment(i) {
            push(
                out,
                "unsafe-safety-comment",
                ctx,
                i,
                format!(
                    "unsafe {form} without a `// SAFETY:` justification (accepted directly \
                     above, on the same line, or as the first line inside)"
                ),
            );
        }
    }
}

/// no-unwrap-in-lib: library code surfaces failure as `Result` or an
/// `expect` that says what invariant broke.
pub fn no_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        if ctx.is_punct(i, ".")
            && ctx.is_ident(i + 1, "unwrap")
            && ctx.is_punct(i + 2, "(")
            && ctx.is_punct(i + 3, ")")
        {
            push(
                out,
                "no-unwrap-in-lib",
                ctx,
                i + 1,
                "bare `.unwrap()` in library code — return a Result or use \
                 `.expect(\"which invariant broke\")`"
                    .to_string(),
            );
        }
    }
}

/// Console macros that smuggle telemetry past the probe seam.
const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// probe-discipline: engine instrumentation goes through the
/// `cobra_obs::Probe` seam — deterministic, attachable, zero-cost when
/// off. Ad-hoc `eprintln!` telemetry and `static Atomic*` counters are
/// the two ways instrumentation historically leaks in, and both defeat
/// the seam (unconditional cost, global mutable state, output that
/// isn't part of any schema).
pub fn probe_discipline(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.toks[i];
        if t.kind == TokKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && ctx.is_punct(i + 1, "!")
        {
            push(
                out,
                "probe-discipline",
                ctx,
                i,
                format!(
                    "`{}!` in engine code — report events through the cobra_obs::Probe seam \
                     (or justify with lint:allow(probe-discipline, reason))",
                    t.text
                ),
            );
        }
        // `static NAME: AtomicU64 = …` — a global counter. Scan the
        // declaration head (up to the initializer) for an Atomic type;
        // `'static` lifetimes are a separate token kind and never reach
        // this arm.
        if ctx.is_ident(i, "static") {
            for j in i + 1..ctx.toks.len().min(i + 16) {
                if ctx.is_punct(j, "=") || ctx.is_punct(j, ";") {
                    break;
                }
                let tj = &ctx.toks[j];
                if tj.kind == TokKind::Ident && tj.text.starts_with("Atomic") {
                    push(
                        out,
                        "probe-discipline",
                        ctx,
                        i,
                        format!(
                            "global `static` {} counter in engine code — accumulate through a \
                             cobra_obs::Probe (e.g. CountingProbe) so the count is per-trial, \
                             deterministic, and free when unobserved",
                            tj.text
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// float-eq: exact float comparison in statistics code is almost always
/// a rounding bug; anchored on float literals and `as f64`/`as f32`
/// casts so integer comparisons stay clean.
pub fn float_eq(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.toks[i];
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_side = |j: Option<usize>| {
            j.and_then(|j| ctx.tok(j)).is_some_and(|s| {
                s.kind == TokKind::Float
                    || (s.kind == TokKind::Ident && (s.text == "f64" || s.text == "f32"))
            })
        };
        if float_side(i.checked_sub(1)) || float_side(Some(i + 1)) {
            push(
                out,
                "float-eq",
                ctx,
                i,
                format!(
                    "`{}` against a float — compare with a tolerance, or justify the exact \
                     comparison with lint:allow(float-eq, reason)",
                    t.text
                ),
            );
        }
    }
}
