//! CLI for the first-party invariant linter.
//!
//! ```text
//! cargo run -p cobra-lint -- --workspace            # report
//! cargo run -p cobra-lint -- --workspace --deny     # CI gate (exit 1 on findings)
//! cargo run -p cobra-lint -- --workspace --json LINT_findings.json
//! cargo run -p cobra-lint -- crates/cobra-core/src/lanes.rs
//! cobra-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean (or report-only), 1 findings under `--deny`,
//! 2 usage/environment error.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: cobra-lint [--workspace] [--deny] [--json PATH] [--root DIR] [--list-rules] [FILES…]"
    );
    std::process::exit(2);
}

fn main() {
    let mut workspace_mode = false;
    let mut deny = false;
    let mut json_out: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace_mode = true,
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--root" => match args.next() {
                Some(p) => root_override = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--list-rules" => {
                for r in cobra_lint::rules::RULES {
                    println!("{:22} {}", r.name, r.summary);
                }
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            file => files.push(file.to_string()),
        }
    }
    if !workspace_mode && files.is_empty() {
        usage();
    }

    let root = root_override
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            cobra_lint::workspace::find_workspace_root(&cwd)
        })
        .unwrap_or_else(|| {
            eprintln!("cobra-lint: no workspace root found (no Cargo.toml with [workspace] above cwd; use --root)");
            std::process::exit(2);
        });

    let mut report = if workspace_mode {
        match cobra_lint::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cobra-lint: workspace walk failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        cobra_lint::findings::Report::default()
    };

    for f in &files {
        // Explicit files are linted under their workspace-relative form
        // so scoping applies the same way as in --workspace mode.
        let abs = root.join(f);
        let rel = f.trim_start_matches("./").to_string();
        match std::fs::read_to_string(&abs) {
            Ok(src) => report.merge(cobra_lint::lint_source(&rel, &src)),
            Err(e) => {
                eprintln!("cobra-lint: cannot read {rel}: {e}");
                std::process::exit(2);
            }
        }
    }
    report.sort();

    for f in &report.findings {
        println!("{}", f.render());
    }
    if let Some(path) = &json_out {
        if let Err(e) = cobra_lint::fsio::write_atomic_str(path, &report.to_json()) {
            eprintln!("cobra-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    println!(
        "cobra-lint: {} finding{} ({} suppressed) across {} file{}",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.suppressed.len(),
        report.files,
        if report.files == 1 { "" } else { "s" },
    );
    if deny && !report.findings.is_empty() {
        std::process::exit(1);
    }
}
