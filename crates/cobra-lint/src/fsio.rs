//! Atomic artifact output for the linter's own JSON report.
//!
//! Mirrors `cobra_sim::fsio::write_atomic` (write temp sibling, fsync,
//! rename) — duplicated rather than imported because cobra-lint is
//! deliberately dependency-free so it can gate CI before the rest of
//! the workspace builds. Files named `fsio.rs` are the one place the
//! atomic-artifacts rule permits raw `File::create`.

use std::fs::File;
use std::io::{Error, ErrorKind, Write};
use std::path::Path;

/// Write `contents` to `path` atomically via a `.tmp` sibling.
pub fn write_atomic_str(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        Error::new(
            ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("cobra-lint-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join("findings.json");
        write_atomic_str(&p, "{\"a\":1}").expect("first write");
        write_atomic_str(&p, "{\"a\":2}").expect("second write");
        assert_eq!(std::fs::read_to_string(&p).expect("read"), "{\"a\":2}");
        assert!(!dir.join("findings.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
