//! `cobra-lint`: the workspace's first-party invariant linter.
//!
//! Every guarantee this reproduction rests on — bit-for-bit determinism
//! across engine routes, the stage-seed registry's disjointness proof,
//! the atomic-artifact crash-recovery contract — is a *source-level*
//! property. Runtime tests catch violations late and only where a test
//! happens to look; this crate enforces them statically, as named,
//! suppressible rules over a hand-rolled Rust lexer (the container has
//! no registry access, so no `syn` — same spirit as cobra-bench's
//! hand-rolled `json.rs`).
//!
//! ## Rules
//!
//! See [`rules::RULES`] for the registry. Scoping — which paths each
//! rule applies to — is part of the contract and lives in [`config`].
//!
//! ## Suppression
//!
//! A finding is silenced by a comment on the same line or the line
//! above:
//!
//! ```text
//! // lint:allow(float-eq, exact-zero variance guard before division)
//! let r = if syy == 0.0 { … };
//! ```
//!
//! The reason is mandatory; `lint:allow` with an unknown rule or an
//! empty reason is itself a finding (`bad-suppression`). Suppressed
//! findings stay visible in the JSON report so suppression debt is
//! auditable.
//!
//! ## Entry points
//!
//! * [`lint_source`] — lint one file's text under a workspace-relative
//!   path (what the fixture tests drive);
//! * [`lint_workspace`] — walk the workspace and lint every first-party
//!   file (what `cobra-lint --workspace` and CI drive).

pub mod config;
pub mod context;
pub mod findings;
pub mod fsio;
pub mod lexer;
pub mod rules;
pub mod workspace;

use config::PathScope;
use context::FileCtx;
use findings::{Finding, Report};

/// Lint one file's source text. `path` must be the workspace-relative
/// `/`-separated path — rule scoping keys on it.
pub fn lint_source(path: &str, src: &str) -> Report {
    let scope = PathScope::of(path);
    let ctx = FileCtx::new(path, lexer::lex(src));
    let mut raw: Vec<Finding> = Vec::new();

    if scope.check_seed_discipline() {
        rules::seed_discipline(&ctx, &mut raw);
    }
    if scope.check_ordered_iteration() {
        rules::ordered_iteration(&ctx, &mut raw);
    }
    if scope.check_atomic_artifacts() {
        rules::atomic_artifacts(&ctx, &mut raw);
    }
    if scope.check_no_wall_clock() {
        rules::no_wall_clock(&ctx, &mut raw);
    }
    if scope.check_unsafe_safety() {
        rules::unsafe_safety(&ctx, &mut raw);
    }
    if scope.check_no_unwrap() {
        rules::no_unwrap(&ctx, &mut raw);
    }
    if scope.check_float_eq() {
        rules::float_eq(&ctx, &mut raw);
    }
    if scope.check_probe_discipline() {
        rules::probe_discipline(&ctx, &mut raw);
    }

    // The suppressions themselves are linted: unknown rule names and
    // missing reasons defeat the audit trail.
    for s in &ctx.suppressions {
        if !rules::is_known_rule(&s.rule) {
            raw.push(Finding {
                rule: "bad-suppression",
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!("lint:allow names unknown rule `{}`", s.rule),
            });
        } else if s.reason.is_empty() {
            raw.push(Finding {
                rule: "bad-suppression",
                path: path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "lint:allow({}) has no reason — write why the violation is sound",
                    s.rule
                ),
            });
        }
    }

    let mut report = Report {
        files: 1,
        ..Report::default()
    };
    for f in raw {
        let allow = ctx
            .suppressions
            .iter()
            .find(|s| s.rule == f.rule && !s.reason.is_empty() && s.covers_line(f.line));
        match allow {
            Some(s) => report.suppressed.push((f, s.reason.clone())),
            None => report.findings.push(f),
        }
    }
    report
}

/// Lint every first-party file under the workspace root. I/O errors on
/// individual files become findings rather than aborting the run.
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<Report> {
    let files = workspace::first_party_files(root)?;
    let mut report = Report::default();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => report.merge(lint_source(rel, &src)),
            Err(e) => report.findings.push(Finding {
                rule: "bad-suppression",
                path: rel.clone(),
                line: 0,
                col: 0,
                message: format!("unreadable source file: {e}"),
            }),
        }
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_moves_finding_to_suppressed() {
        let src = "fn f(a: f64) -> bool {\n    // lint:allow(float-eq, pinned sentinel)\n    a == 1.0\n}\n";
        let r = lint_source("crates/cobra-analysis/src/x.rs", src);
        assert_eq!(r.findings.len(), 0, "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].1, "pinned sentinel");
    }

    #[test]
    fn suppression_without_reason_does_not_silence_and_is_reported() {
        let src = "fn f(a: f64) -> bool {\n    // lint:allow(float-eq)\n    a == 1.0\n}\n";
        let r = lint_source("crates/cobra-analysis/src/x.rs", src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"float-eq"), "{rules:?}");
        assert!(rules.contains(&"bad-suppression"), "{rules:?}");
    }

    #[test]
    fn unknown_rule_suppression_is_reported() {
        let src = "// lint:allow(no-such-rule, because)\nfn f() {}\n";
        let r = lint_source("crates/cobra-core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "bad-suppression");
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        // Wall-clock and unwrap are fine in a bench binary; seeds are not.
        let src = "fn main() { let t = Instant::now(); x().unwrap(); }";
        let r = lint_source("crates/cobra-bench/src/bin/bench_x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
