//! The workspace itself lints clean: `cargo test` re-runs the full
//! `--workspace` analysis, so re-introducing an ad-hoc seed derivation,
//! a raw `fs::write`, or an unjustified `unsafe` fails the default test
//! tier — not just the dedicated CI lint job.

use cobra_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/cobra-lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_workspace(&root).expect("workspace walk must succeed");
    assert!(
        report.files > 0,
        "workspace walk found no Rust files — wrong root?"
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        rendered.is_empty(),
        "workspace must lint clean; findings:\n{}",
        rendered.join("\n")
    );
}
