//! Fixture-pinned behavior of every rule: each rule has a violating
//! fixture (findings expected), a clean fixture (none), and — for the
//! seven object-level rules — a suppressed fixture (finding silenced
//! by a well-formed `lint:allow`, recorded in the audit trail).
//!
//! Fixtures live under `tests/fixtures/<rule>/` and are linted under a
//! *virtual* path chosen so the rule's scope applies; the real on-disk
//! path is excluded from workspace walks (`fixtures` directory).

use cobra_lint::lint_source;

fn fixture(rule: &str, which: &str) -> String {
    let p = format!(
        "{}/tests/fixtures/{rule}/{which}.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"))
}

/// Lint one fixture under a virtual path and return
/// (findings-for-rule, total-findings, suppressed-for-rule).
fn run(rule: &str, which: &str, virtual_path: &str) -> (usize, usize, usize) {
    let report = lint_source(virtual_path, &fixture(rule, which));
    let hits = report.findings.iter().filter(|f| f.rule == rule).count();
    let supp = report
        .suppressed
        .iter()
        .filter(|(f, _)| f.rule == rule)
        .count();
    (hits, report.findings.len(), supp)
}

/// A standard triple: violating fixture yields exactly `n` findings of
/// the rule (and nothing else), clean yields zero findings of any kind,
/// suppressed yields zero findings and exactly one audit entry.
fn assert_triple(rule: &str, virtual_path: &str, n: usize) {
    let (hits, total, _) = run(rule, "violation", virtual_path);
    assert_eq!(hits, n, "{rule}/violation.rs should yield {n} findings");
    assert_eq!(total, n, "{rule}/violation.rs should trip no other rule");

    let (hits, total, _) = run(rule, "clean", virtual_path);
    assert_eq!(hits, 0, "{rule}/clean.rs must be clean for {rule}");
    assert_eq!(total, 0, "{rule}/clean.rs must be clean for every rule");

    let (hits, total, supp) = run(rule, "suppressed", virtual_path);
    assert_eq!(hits, 0, "{rule}/suppressed.rs finding must be silenced");
    assert_eq!(total, 0, "{rule}/suppressed.rs must otherwise be clean");
    assert_eq!(supp, 1, "{rule}/suppressed.rs must record one audit entry");
}

#[test]
fn seed_discipline_triple() {
    // Five ad-hoc forms, including the literal e8 stray `cfg.seed ^ 0xE8`
    // whose reintroduction must fail the lint gate.
    assert_triple(
        "seed-discipline",
        "crates/cobra-bench/src/bin/e99_fixture.rs",
        5,
    );
}

#[test]
fn seed_discipline_is_scoped_to_bench_binaries() {
    // The same source under a library path is out of scope: stage-seed
    // discipline is a bench-binary contract.
    let report = lint_source(
        "crates/cobra-core/src/fixture.rs",
        &fixture("seed-discipline", "violation"),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "seed-discipline"),
        "seed-discipline must not fire outside crates/cobra-bench/src/bin/"
    );
}

#[test]
fn ordered_iteration_triple() {
    // Two for-loops over hash containers plus one unsorted method chain.
    assert_triple("ordered-iteration", "crates/cobra-core/src/fixture.rs", 3);
}

#[test]
fn atomic_artifacts_triple() {
    // One raw fs::write (the manifest form from the acceptance
    // criterion) and one File::create.
    assert_triple(
        "atomic-artifacts",
        "crates/cobra-sim/src/runner_fixture.rs",
        2,
    );
}

#[test]
fn atomic_artifacts_exempts_fsio() {
    // The helper module itself must be allowed to call File::create.
    let report = lint_source(
        "crates/cobra-sim/src/fsio.rs",
        &fixture("atomic-artifacts", "violation"),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "atomic-artifacts"),
        "files named fsio.rs implement the atomic write and are exempt"
    );
}

#[test]
fn no_wall_clock_triple() {
    // Instant::now and SystemTime::now.
    assert_triple("no-wall-clock", "crates/cobra-core/src/fixture.rs", 2);
}

#[test]
fn no_wall_clock_allowed_in_bench() {
    // The bench harness is where timing belongs; out of scope there.
    let report = lint_source(
        "crates/cobra-bench/src/bin/e99_fixture.rs",
        &fixture("no-wall-clock", "violation"),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "no-wall-clock"),
        "no-wall-clock must not fire in the bench harness"
    );
}

#[test]
fn unsafe_safety_triple() {
    // An uncommented unsafe block and an uncommented unsafe impl.
    assert_triple(
        "unsafe-safety-comment",
        "crates/cobra-core/src/fixture.rs",
        2,
    );
}

#[test]
fn no_unwrap_triple() {
    // Two bare unwraps.
    assert_triple("no-unwrap-in-lib", "crates/cobra-graph/src/fixture.rs", 2);
}

#[test]
fn no_unwrap_allowed_in_binaries() {
    // Binaries may unwrap: the scope is library src only.
    let report = lint_source(
        "crates/cobra-bench/src/bin/e99_fixture.rs",
        &fixture("no-unwrap-in-lib", "violation"),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "no-unwrap-in-lib"),
        "no-unwrap-in-lib must not fire in bin targets"
    );
}

#[test]
fn float_eq_triple() {
    // ==/!= against float literals and an `as f64` cast.
    assert_triple("float-eq", "crates/cobra-analysis/src/fixture.rs", 3);
}

#[test]
fn probe_discipline_triple() {
    // eprintln!, println!, and a global Atomic counter.
    assert_triple("probe-discipline", "crates/cobra-core/src/fixture.rs", 3);
}

#[test]
fn probe_discipline_is_scoped_to_engine_lib_code() {
    // Bench binaries print their reports; the rule is an engine-library
    // contract.
    let report = lint_source(
        "crates/cobra-bench/src/bin/e99_fixture.rs",
        &fixture("probe-discipline", "violation"),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "probe-discipline"),
        "probe-discipline must not fire outside engine library code"
    );
}

#[test]
fn bad_suppression_violations() {
    // A typo'd rule name and a missing reason: both are findings, and
    // neither malformed directive silences the underlying violation.
    let report = lint_source(
        "crates/cobra-sim/src/runner_fixture.rs",
        &fixture("bad-suppression", "violation"),
    );
    let bad = report
        .findings
        .iter()
        .filter(|f| f.rule == "bad-suppression")
        .count();
    let atomic = report
        .findings
        .iter()
        .filter(|f| f.rule == "atomic-artifacts")
        .count();
    assert_eq!(bad, 2, "unknown rule + missing reason are both findings");
    assert_eq!(atomic, 2, "malformed allows must not silence anything");
    assert!(report.suppressed.is_empty());
}

#[test]
fn bad_suppression_ignores_prose_mentions() {
    // Doc text that merely mentions the directive syntax mid-sentence
    // is not a directive.
    let report = lint_source(
        "crates/cobra-sim/src/runner_fixture.rs",
        &fixture("bad-suppression", "clean"),
    );
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.suppressed.is_empty());
}

#[test]
fn json_report_carries_fixture_findings() {
    // The machine-readable report names the rule, path, and line of
    // each finding under the versioned schema.
    let report = lint_source(
        "crates/cobra-analysis/src/fixture.rs",
        &fixture("float-eq", "violation"),
    );
    let json = report.to_json();
    assert!(
        json.contains("\"schema\": \"cobra-lint/findings-v1\""),
        "{json}"
    );
    assert!(json.contains("\"rule\": \"float-eq\""), "{json}");
    assert!(json.contains("cobra-analysis"), "{json}");
}
