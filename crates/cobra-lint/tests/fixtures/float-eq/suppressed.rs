// Fixture: a justified exact comparison — guarding a division by a
// value that is exactly zero only when every input was identical.
// Linted under a virtual crates/cobra-analysis/src/ path.

fn safe_ratio(num: f64, denom: f64) -> f64 {
    // lint:allow(float-eq, exact zero test guards division; any nonzero denom however tiny is arithmetically valid)
    if denom == 0.0 {
        return 0.0;
    }
    num / denom
}
