// Fixture: exact float comparison in stats code — accumulation order
// and FMA contraction make == on computed values meaningless. Linted
// under a virtual crates/cobra-analysis/src/ path.

fn converged(resid: f64) -> bool {
    resid == 0.0
}

fn is_unit_slope(slope: f64) -> bool {
    slope != 1.0
}

fn half_is_exact(n: u32) -> bool {
    n as f64 == (n / 2) as f64 * 2.0
}
