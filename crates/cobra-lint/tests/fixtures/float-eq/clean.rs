// Fixture: tolerance-based comparison and integer equality. Linted
// under a virtual crates/cobra-analysis/src/ path.

fn converged(prev: f64, next: f64, tol: f64) -> bool {
    (prev - next).abs() <= tol
}

fn same_count(a: u64, b: u64) -> bool {
    // Integer equality is exact; the rule only watches floats.
    a == b
}

fn ordering(a: f64, b: f64) -> std::cmp::Ordering {
    // total_cmp is the sanctioned way to compare floats exactly.
    a.total_cmp(&b)
}
