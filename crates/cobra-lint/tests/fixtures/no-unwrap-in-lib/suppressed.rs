// Fixture: an unwrap kept deliberately. Linted under a virtual
// crates/cobra-graph/src/ path.

use std::collections::BTreeMap;

fn max_key(m: &BTreeMap<u32, u64>) -> u32 {
    // lint:allow(no-unwrap-in-lib, caller guarantees the map is non-empty and the adjacent branch already returned on empty)
    *m.keys().next_back().unwrap()
}
