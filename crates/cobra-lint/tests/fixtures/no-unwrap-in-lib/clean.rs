// Fixture: the sanctioned alternatives — propagate with ?, default,
// or expect with a message that names the violated invariant. Linted
// under a virtual crates/cobra-graph/src/ path.

fn parse_degree(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("")
}

fn checked_half(n: u32) -> u32 {
    n.checked_div(2)
        .expect("divisor is the constant 2, division cannot fail")
}
