// Fixture: bare unwraps in library code — panics with no message at
// the call site. Linted under a virtual crates/cobra-graph/src/ path.

fn parse_degree(s: &str) -> u32 {
    s.parse().unwrap()
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap()
}
