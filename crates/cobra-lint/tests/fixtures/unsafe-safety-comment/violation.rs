// Fixture: unsafe without justification — an unsafe block and an
// unsafe impl, neither carrying a SAFETY: comment. Linted under a
// virtual crates/cobra-core/src/ path.

struct RawView {
    ptr: *const u64,
    len: usize,
}

fn read_first(v: &RawView) -> u64 {
    unsafe { *v.ptr }
}

unsafe impl Send for RawView {}
