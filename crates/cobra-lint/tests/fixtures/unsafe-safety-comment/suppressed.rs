// Fixture: suppressing the rule instead of writing SAFETY: — legal
// but expected to be rare; the reason must still argue soundness.

fn transmute_bits(x: u64) -> f64 {
    // lint:allow(unsafe-safety-comment, bit-pattern cast mirrors f64::from_bits and is documented at the call site)
    unsafe { std::mem::transmute::<u64, f64>(x) }
}
