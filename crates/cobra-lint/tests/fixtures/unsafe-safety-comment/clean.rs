// Fixture: all three accepted SAFETY: placements — directly above,
// same line, and head-of-block — plus an `unsafe fn` signature, which
// carries its contract in docs rather than a block comment.

struct RawView {
    ptr: *const u64,
    len: usize,
}

fn read_first(v: &RawView) -> u64 {
    // SAFETY: RawView is only constructed from a live, non-empty
    // slice, so ptr points at least one readable u64.
    unsafe { *v.ptr }
}

fn read_last(v: &RawView) -> u64 {
    unsafe { *v.ptr.add(v.len - 1) } // SAFETY: len >= 1 by construction
}

fn read_mid(v: &RawView) -> u64 {
    unsafe {
        // SAFETY: len/2 < len for any non-empty view.
        *v.ptr.add(v.len / 2)
    }
}

// SAFETY: the raw pointer is never aliased mutably; sharing across
// threads only performs reads.
unsafe impl Sync for RawView {}

/// # Safety
/// `ptr` must point at a live u64.
unsafe fn deref(ptr: *const u64) -> u64 {
    // SAFETY: guaranteed by this function's own contract.
    unsafe { *ptr }
}
