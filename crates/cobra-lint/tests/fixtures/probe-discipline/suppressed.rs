//! Fixture: a justified console diagnostic, silenced with a reasoned
//! allow so the debt stays visible in the audit trail.

pub fn advance(round: u64) {
    // lint:allow(probe-discipline, one-shot bisection aid removed before merge)
    eprintln!("round {round}");
}
