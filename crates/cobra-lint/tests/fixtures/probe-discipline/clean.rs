//! Fixture: the same accounting routed through the probe seam — the
//! caller decides whether anything observes it, and `NoopProbe`
//! compiles the hook away.

use cobra_obs::Probe;

pub fn advance<Pb: Probe>(round: u64, frontier: usize, probe: &mut Pb) {
    probe.on_round(round, frontier as u64);
}
