//! Fixture: ad-hoc telemetry smuggled into engine code — a console
//! macro pair and a global counter, the two leaks the probe seam
//! exists to replace.

use std::sync::atomic::{AtomicU64, Ordering};

static ROUNDS_SEEN: AtomicU64 = AtomicU64::new(0);

pub fn advance(round: u64, frontier: usize) {
    ROUNDS_SEEN.fetch_add(1, Ordering::Relaxed);
    if frontier == 0 {
        eprintln!("round {round}: empty frontier");
    }
    println!("round {round}: frontier {frontier}");
}
