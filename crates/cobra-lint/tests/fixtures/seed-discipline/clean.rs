// Fixture: the sanctioned derivations — everything goes through the
// stage registry or SeedSequence, and non-seed arithmetic stays
// untouched. Linted under a virtual crates/cobra-bench/src/bin/ path.

fn main() {
    let cfg = Config::from_env();
    // Registered stage derivation: the only blessed path for stages.
    let s0 = stage_seed(cfg.seed, "e8", "bootstrap", 0);
    // SeedSequence children are independently mixed — also fine.
    let seq = SeedSequence::new(cfg.seed).child(3);
    let s1 = seq.seed_at(0);
    // Plain uses of the seed: passing it through is not arithmetic.
    let orch = Orchestrator::for_run(spec, &cfg);
    let out = orch.cover_cell("cell", 1.0, &g, &p, 0, 1000, s0);
    // Arithmetic on non-seed values is out of the rule's reach.
    let budget = cfg.scale * 3 + 100;
    // Closure parameters named like seeds are bindings, not arithmetic.
    let f = |seed| stage_seed(seed, "e8", "cobra", 1);
    let _ = (s1, out, budget, f(cfg.seed));
}
