// Fixture: the exact ad-hoc seed forms the PR-5 registry conversion was
// supposed to eliminate, including the e8 stray this rule was built to
// catch (`cfg.seed ^ 0xE8`). Linted under a virtual
// crates/cobra-bench/src/bin/ path.

fn main() {
    let cfg = Config::from_env();
    // The escaped e8 form: XOR offset feeding an RNG directly.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE8);
    // Additive offset: aliases once a sweep grows past the constant.
    let s1 = cfg.seed + 1000;
    // wrapping_add offset, the most common pre-registry idiom.
    let s2 = cfg.seed.wrapping_add(4242);
    // Shifted-index XOR for per-cell graph seeds.
    let g = build(cfg.scale, cfg.seed ^ ((3u64) << 12));
    // Operator on the left of the seed.
    let s3 = 7 ^ cfg.seed;
    let _ = (rng, s1, s2, g, s3);
}
