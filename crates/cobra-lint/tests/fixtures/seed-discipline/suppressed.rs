// Fixture: a violating derivation silenced by an inline allow with a
// written reason. Linted under a virtual crates/cobra-bench/src/bin/
// path.

fn main() {
    let cfg = Config::from_env();
    // lint:allow(seed-discipline, frozen legacy baseline must replay the historical pre-registry stream)
    let legacy = cfg.seed ^ 0xBEEF;
    let _ = legacy;
}
