// Fixture: the sanctioned shapes — membership queries, sorted
// iteration (same statement or collect-then-sort), and BTree
// containers. Linted under a virtual crates/cobra-core/src/ path.

use std::collections::{BTreeMap, HashMap, HashSet};

fn membership_is_fine(seen: &HashSet<u32>, v: u32) -> bool {
    // contains/insert/get never observe iteration order.
    seen.contains(&v)
}

fn sorted_in_chain(weights: &HashMap<u32, f64>) -> Vec<u32> {
    // Iteration is immediately re-ordered in the same chain.
    let mut keys: Vec<u32> = weights.keys().copied().collect();
    keys.sort_unstable();
    keys
}

fn collect_then_sort(seen: &HashSet<u32>) -> Vec<u32> {
    // The two-statement idiom: collect, then sort before use.
    let mut out: Vec<u32> = seen.iter().copied().collect();
    out.sort();
    out
}

fn btree_is_ordered(ranks: &BTreeMap<u32, u64>) -> u64 {
    // BTreeMap iterates in key order — deterministic by construction.
    let mut acc = 0;
    for (_, r) in ranks.iter() {
        acc += r;
    }
    acc
}
