// Fixture: hash-order iteration in engine code — the per-trial outcome
// would depend on the allocator's bucket layout. Linted under a virtual
// crates/cobra-core/src/ path.

use std::collections::{HashMap, HashSet};

fn frontier_order(members: &HashSet<u32>) -> Vec<u32> {
    let mut pending: HashSet<u32> = HashSet::new();
    pending.insert(1);
    // A for-loop straight over the set: arbitrary order.
    let mut out = Vec::new();
    for v in &pending {
        out.push(*v);
    }
    // Method-chain iteration without a downstream sort.
    let doubled: Vec<u32> = members.iter().map(|v| v * 2).collect();
    out.extend(doubled);
    out
}

fn tally(counts: HashMap<u32, u64>) -> u64 {
    // values() is just as order-sensitive when the fold is not
    // commutative in floating point — flagged the same way.
    let mut acc = 0u64;
    for c in counts.values() {
        acc = acc.rotate_left(1) ^ c;
    }
    acc
}
