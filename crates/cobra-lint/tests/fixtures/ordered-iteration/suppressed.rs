// Fixture: order-insensitive aggregation justified inline. Linted
// under a virtual crates/cobra-core/src/ path.

use std::collections::HashMap;

fn total(counts: &HashMap<u32, u64>) -> u64 {
    let mut acc = 0u64;
    // lint:allow(ordered-iteration, integer sum is commutative so visit order cannot affect the result)
    for c in counts.values() {
        acc += c;
    }
    acc
}
