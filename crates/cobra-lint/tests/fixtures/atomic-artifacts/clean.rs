// Fixture: artifact output through the atomic helpers; reads and
// non-write fs calls stay untouched. Linted under a virtual
// crates/cobra-bench/src/ path.

use cobra_sim::fsio::write_atomic_str;

fn persist_manifest(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    // write-temp-fsync-rename: old complete file or new complete file,
    // never a prefix.
    write_atomic_str(path, body)
}

fn load_manifest(path: &std::path::Path) -> std::io::Result<String> {
    // Reads are not artifacts.
    std::fs::read_to_string(path)
}

fn ensure_dir(path: &std::path::Path) -> std::io::Result<()> {
    // Directory creation is idempotent, not a truncation hazard.
    std::fs::create_dir_all(path)
}
