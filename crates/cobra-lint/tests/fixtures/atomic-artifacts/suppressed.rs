// Fixture: a justified raw write. Linted under a virtual
// crates/cobra-bench/src/ path.

use std::fs;

fn write_pid_file(path: &std::path::Path) -> std::io::Result<()> {
    // lint:allow(atomic-artifacts, pid file is advisory and rewritten on every start; truncation is harmless)
    fs::write(path, std::process::id().to_string())
}
