// Fixture: raw artifact writes — a crash mid-write leaves a truncated
// manifest that poisons --resume. Linted under a virtual
// crates/cobra-bench/src/ path (not fsio.rs).

use std::fs;
use std::fs::File;
use std::io::Write;

fn persist_manifest(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    // The exact form the acceptance criterion re-introduces.
    fs::write(path, body)
}

fn persist_csv(path: &std::path::Path, rows: &[String]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}
