// Fixture: malformed suppressions — an unknown rule name and a
// directive with no reason. Both are findings in their own right so
// suppressions cannot silently rot.

use std::fs;

fn write_note(path: &std::path::Path) -> std::io::Result<()> {
    // lint:allow(atomic-artifact, typo in the rule name leaves the real finding live)
    fs::write(path, "x")
}

fn write_other(path: &std::path::Path) -> std::io::Result<()> {
    // lint:allow(atomic-artifacts)
    fs::write(path, "y")
}
