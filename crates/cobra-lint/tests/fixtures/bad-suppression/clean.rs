// Fixture: prose that merely *mentions* the directive syntax — doc
// text explaining `lint:allow(rule, reason)` must not be parsed as a
// suppression because it does not start the comment.

/// Findings are silenced with `// lint:allow(rule, reason)` placed on
/// the line above the flagged code.
fn documented() {}
