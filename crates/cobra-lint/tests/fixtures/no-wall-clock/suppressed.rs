// Fixture: a justified clock read in an outcome-affecting crate.
// Linted under a virtual crates/cobra-core/src/ path.

use std::time::Instant;

fn coarse_progress_heartbeat() -> Instant {
    // lint:allow(no-wall-clock, heartbeat only feeds a progress log line and never reaches recorded outcomes)
    Instant::now()
}
