// Fixture: deterministic time — logical rounds and Duration values
// passed in from outside are fine; only *reading* the clock is banned.
// Linted under a virtual crates/cobra-core/src/ path.

use std::time::Duration;

fn rounds_until(budget: u32, per_round: u32) -> u32 {
    budget / per_round.max(1)
}

fn format_budget(d: Duration) -> String {
    // Duration arithmetic on caller-provided values involves no clock.
    format!("{:.1}s", d.as_secs_f64())
}
