// Fixture: wall-clock reads in an outcome-affecting crate — results
// must be a function of seeds alone. Linted under a virtual
// crates/cobra-core/src/ path.

use std::time::{Instant, SystemTime};

fn step_with_deadline(budget_ms: u128) -> bool {
    let t0 = Instant::now();
    t0.elapsed().as_millis() < budget_ms
}

fn stamp() -> u64 {
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
