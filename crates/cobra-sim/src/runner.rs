//! Parallel Monte-Carlo trial execution.
//!
//! Trials fan out over rayon workers; each trial gets an independent,
//! deterministically derived RNG (see [`crate::seeds`]), so results are
//! bit-reproducible regardless of thread scheduling.

use crate::convergence::AdaptivePlan;
use crate::seeds::SeedSequence;
use crate::stats::{EmptySummary, Summary};
use cobra_core::{
    run_lane_cover, run_lane_cover_probed, CoverDriver, HittingDriver, ImplicitDraw, LaneScratch,
    Process, TrialScratch, TypedProcess, LANE_WIDTH,
};
use cobra_graph::{Graph, ImplicitGraph, NeighborSampler, Vertex};
use cobra_obs::Probe;
use rayon::prelude::*;

/// How many trials to run and how long each may take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialPlan {
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round budget.
    pub max_steps: usize,
    /// Master seed; trial `i` uses seed `SeedSequence::new(master).seed_at(i)`.
    pub master_seed: u64,
}

impl TrialPlan {
    /// Convenience constructor.
    pub fn new(trials: usize, max_steps: usize, master_seed: u64) -> Self {
        assert!(trials >= 1, "need at least one trial");
        assert!(max_steps >= 1, "need a positive step budget");
        TrialPlan {
            trials,
            max_steps,
            master_seed,
        }
    }
}

/// Aggregated outcome of a batch of trials.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// Summary of the measured times over **completed** trials.
    pub summary: Summary,
    /// Trials that exhausted the budget without completing. Censored
    /// trials are *excluded* from `summary`; a nonzero count signals the
    /// budget should be raised.
    pub censored: usize,
}

impl TrialOutcome {
    /// Fraction of trials that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.summary.count() + self.censored;
        if total == 0 {
            0.0
        } else {
            self.summary.count() as f64 / total as f64
        }
    }

    /// The summary over completed trials, or `Err(EmptySummary)` when
    /// every trial was censored — use this instead of reading `summary`
    /// directly when a too-small budget is a reachable condition, so the
    /// failure is an explicit error rather than a downstream panic on
    /// `Summary::mean`.
    pub fn completed_summary(&self) -> Result<&Summary, EmptySummary> {
        if self.summary.count() == 0 {
            Err(EmptySummary)
        } else {
            Ok(&self.summary)
        }
    }
}

fn aggregate(times: Vec<Option<usize>>) -> TrialOutcome {
    let mut summary = Summary::new();
    let mut censored = 0usize;
    for t in times {
        match t {
            Some(steps) => summary.push(steps as f64),
            None => censored += 1,
        }
    }
    TrialOutcome { summary, censored }
}

/// Split a per-trial `(outcome, probe)` stream into the aggregated
/// [`TrialOutcome`] plus the probes in global trial order.
fn split_probed<Pb>(pairs: Vec<(Option<usize>, Pb)>) -> (TrialOutcome, Vec<Pb>) {
    let mut times = Vec::with_capacity(pairs.len());
    let mut probes = Vec::with_capacity(pairs.len());
    for (t, p) in pairs {
        times.push(t);
        probes.push(p);
    }
    (aggregate(times), probes)
}

/// Measure cover times of `process` from `start` over `plan.trials`
/// independent runs (parallel). Accepts `&dyn Process` as before, or any
/// concrete specification.
pub fn run_cover_trials<P: Process + ?Sized>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = seq.rng_at(i as u64);
            let res = CoverDriver::new(g)
                .run(&process, start, plan.max_steps, &mut rng)
                .expect("non-empty graph");
            res.completed.then_some(res.steps)
        })
        .collect();
    aggregate(times)
}

/// Fast-path variant of [`run_cover_trials`]: drives the process through
/// the batched scratch engine — a [`NeighborSampler`] built once per
/// call, one [`TrialScratch`] per rayon worker (via `map_init`), and
/// [`CoverDriver::run_typed_in`] per trial, so the steady-state trial
/// path allocates nothing and re-derives nothing. Per-trial seeding is
/// unchanged ([`SeedSequence::seed_at`]), so outcomes are bit-identical
/// to the dyn path and to any worker count. Prefer this whenever the
/// process type is statically known; keep [`run_cover_trials`] for
/// heterogeneous `&dyn Process` experiment tables.
pub fn run_cover_trials_typed<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver
                    .run_typed_in(process, &sampler, scratch, start, plan.max_steps, &mut rng)
                    .expect("non-empty graph");
                res.completed.then_some(res.steps)
            },
        )
        .collect();
    aggregate(times)
}

/// Cover trials for any [`ImplicitGraph`] family (grid, torus,
/// hypercube, complete, k-ary tree — or a CSR [`Graph`], which is its
/// own implicit view): the scratch engine with arithmetic
/// [`ImplicitDraw`] neighbor draws, so no adjacency, offset array, or
/// sampler table is ever materialized and the per-cell setup cost is
/// O(1) in the graph size.
///
/// Seeding and draw streams match [`run_cover_trials_typed`] exactly
/// ([`ImplicitDraw`] and [`NeighborSampler`] are stream-compatible and,
/// on a CSR graph, vertex-identical), so on `G = Graph` this runner is
/// **bit-for-bit identical** to the typed runner — pinned by a test
/// below and by `tests/engine_equivalence.rs` across representations.
///
/// This runner never routes to the bit-sliced lane engine: the lane
/// kernel shares draws through a CSR [`NeighborSampler`] table, which
/// is exactly the materialization implicit families exist to avoid (see
/// [`lane_cover_applies`]).
pub fn run_cover_trials_implicit<G, P>(
    g: &G,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome
where
    G: ImplicitGraph + ?Sized,
    P: TypedProcess<G> + Sync,
{
    let seq = SeedSequence::new(plan.master_seed);
    let driver = CoverDriver::new(g);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver
                    .run_typed_in(
                        process,
                        &ImplicitDraw,
                        scratch,
                        start,
                        plan.max_steps,
                        &mut rng,
                    )
                    .expect("non-empty graph");
                res.completed.then_some(res.steps)
            },
        )
        .collect();
    aggregate(times)
}

/// Probed variant of [`run_cover_trials`]: identical trial plan, seeds,
/// and draw stream, plus one [`Probe`] per trial built by
/// `make_probe(global_trial_index)` and returned in global trial order.
///
/// The runner fires [`Probe::on_trial_begin`] with the global index
/// before each trial, then hands the probe to
/// [`CoverDriver::run_probed`]. Because probes are keyed by global trial
/// index and never touch the RNG, telemetry is bit-reproducible at any
/// worker count, and a `NoopProbe` factory reproduces
/// [`run_cover_trials`] exactly (pinned in `tests/probe_neutrality.rs`).
pub fn run_cover_trials_probed<P, Pb, F>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
    make_probe: F,
) -> (TrialOutcome, Vec<Pb>)
where
    P: Process + ?Sized,
    Pb: Probe + Send,
    F: Fn(u64) -> Pb + Sync,
{
    let seq = SeedSequence::new(plan.master_seed);
    let pairs: Vec<(Option<usize>, Pb)> = (0..plan.trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = seq.rng_at(i as u64);
            let mut probe = make_probe(i as u64);
            probe.on_trial_begin(i as u64);
            let res = CoverDriver::new(g)
                .run_probed(&process, start, plan.max_steps, &mut rng, &mut probe)
                .expect("non-empty graph");
            (res.completed.then_some(res.steps), probe)
        })
        .collect();
    split_probed(pairs)
}

/// Probed variant of [`run_cover_trials_typed`]: the batched
/// scratch+sampler engine with a per-trial [`Probe`] from
/// `make_probe(global_trial_index)`, returned in global trial order.
/// Same seeds and draws as the unprobed runner — a `NoopProbe` factory
/// is bit-identical to [`run_cover_trials_typed`] at any worker count.
pub fn run_cover_trials_typed_probed<P, Pb, F>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
    make_probe: F,
) -> (TrialOutcome, Vec<Pb>)
where
    P: TypedProcess + Sync,
    Pb: Probe + Send,
    F: Fn(u64) -> Pb + Sync,
{
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    let pairs: Vec<(Option<usize>, Pb)> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let mut probe = make_probe(i as u64);
                probe.on_trial_begin(i as u64);
                let res = driver
                    .run_typed_in_probed(
                        process,
                        &sampler,
                        scratch,
                        start,
                        plan.max_steps,
                        &mut rng,
                        &mut probe,
                    )
                    .expect("non-empty graph");
                (res.completed.then_some(res.steps), probe)
            },
        )
        .collect();
    split_probed(pairs)
}

/// Probed variant of [`run_cover_trials_implicit`]: the arithmetic
/// [`ImplicitDraw`] engine with a per-trial [`Probe`] from
/// `make_probe(global_trial_index)`, returned in global trial order.
/// Never lane-routed, like its unprobed twin; a `NoopProbe` factory is
/// bit-identical to [`run_cover_trials_implicit`].
pub fn run_cover_trials_implicit_probed<G, P, Pb, F>(
    g: &G,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
    make_probe: F,
) -> (TrialOutcome, Vec<Pb>)
where
    G: ImplicitGraph + ?Sized,
    P: TypedProcess<G> + Sync,
    Pb: Probe + Send,
    F: Fn(u64) -> Pb + Sync,
{
    let seq = SeedSequence::new(plan.master_seed);
    let driver = CoverDriver::new(g);
    let pairs: Vec<(Option<usize>, Pb)> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let mut probe = make_probe(i as u64);
                probe.on_trial_begin(i as u64);
                let res = driver
                    .run_typed_in_probed(
                        process,
                        &ImplicitDraw,
                        scratch,
                        start,
                        plan.max_steps,
                        &mut rng,
                        &mut probe,
                    )
                    .expect("non-empty graph");
                (res.completed.then_some(res.steps), probe)
            },
        )
        .collect();
    split_probed(pairs)
}

/// Measure hitting times `start → target` of `process` over
/// `plan.trials` independent runs (parallel).
pub fn run_hitting_trials<P: Process + ?Sized>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = seq.rng_at(i as u64);
            let res = HittingDriver::new(g).run(&process, start, target, plan.max_steps, &mut rng);
            res.hit.then_some(res.steps)
        })
        .collect();
    aggregate(times)
}

/// Fast-path variant of [`run_hitting_trials`] through the batched
/// scratch engine ([`HittingDriver::run_typed_in`] with a shared
/// [`NeighborSampler`] and per-worker [`TrialScratch`]); bit-identical
/// outcomes on the same plan at any worker count.
pub fn run_hitting_trials_typed<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = HittingDriver::new(g);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver.run_typed_in(
                    process,
                    &sampler,
                    scratch,
                    start,
                    target,
                    plan.max_steps,
                    &mut rng,
                );
                res.hit.then_some(res.steps)
            },
        )
        .collect();
    aggregate(times)
}

/// Largest vertex count for which the bit-sliced lane engine is the
/// default. Below this the per-round lane overhead (three `n`-word
/// bitset scans) is dwarfed by the 64-way draw sharing; above it the
/// scans dominate and the per-trial scratch engine's sparse frontier
/// wins. The crossover on this hardware sits well past 1024 for cover
/// cells, but 1024 keeps a comfortable margin.
pub const LANE_MAX_N: usize = 1024;

/// Whether the bit-sliced lane engine applies to a cover cell: the graph
/// must be small (`n ≤` [`LANE_MAX_N`]), the workload wide enough to
/// fill lanes (`trials ≥` [`LANE_WIDTH`]), and the process must have a
/// lane-parallel form ([`TypedProcess::lane_branching`] — `k`-cobra
/// walks and the non-lazy simple walk do; processes with per-pebble
/// auxiliary state do not).
///
/// For adaptive runs pass the rule's `max_trials`: eligibility must not
/// depend on how many trials end up consumed, or the engine choice
/// (and with it the RNG stream) would depend on the data.
///
/// The lane engine is **CSR-only by construction**: this gate takes
/// `&Graph` (not a generic [`ImplicitGraph`]) because
/// [`run_lane_cover`] shares draws through a materialized
/// [`NeighborSampler`] table. Implicit families must not be squeezed
/// through a CSR conversion just to reach the lanes — they route
/// through [`run_cover_trials_implicit`], whose stream stays
/// bit-compatible with the scratch engine. Keeping the `&Graph`
/// signature here makes misrouting a compile error rather than a
/// silent de-implicitization.
pub fn lane_cover_applies<P: TypedProcess>(g: &Graph, process: &P, trials: usize) -> bool {
    g.num_vertices() <= LANE_MAX_N && trials >= LANE_WIDTH && process.lane_branching().is_some()
}

/// Flattened cover times of lane batches `batch_range`, in global trial
/// order (batch-major, lane-minor: trial `i` is lane `i % 64` of batch
/// `i / 64`).
///
/// Every batch always computes all [`LANE_WIDTH`] lanes against the full
/// mask — a narrower mask would change the shared-draw stream, and the
/// full-width-then-truncate discipline is what gives lane runs their
/// prefix property (a `trials = n` run is a bitwise prefix of a
/// `trials = m ≥ n` run, and an adaptive run is a prefix of the fixed
/// run). Batch `b` seeds from `SeedSequence::rng_at(b)`, and the
/// parallel collect preserves batch order, so the result is identical at
/// any worker count and for any partition of `batch_range` into
/// consecutive sub-ranges.
fn lane_cover_times<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    max_steps: usize,
    master_seed: u64,
    batch_range: std::ops::Range<usize>,
) -> Vec<Option<usize>> {
    let k = process
        .lane_branching()
        .expect("process has no lane-parallel form");
    let seq = SeedSequence::new(master_seed);
    let sampler = NeighborSampler::new(g);
    let outs: Vec<_> = batch_range
        .into_par_iter()
        .map_init(
            || LaneScratch::new(g),
            |scratch, b| {
                let mut rng = seq.rng_at(b as u64);
                run_lane_cover(
                    g,
                    &sampler,
                    k,
                    start,
                    u64::MAX,
                    max_steps,
                    scratch,
                    &mut rng,
                )
            },
        )
        .collect();
    let mut times = Vec::with_capacity(outs.len() * LANE_WIDTH);
    for out in &outs {
        for lane in 0..LANE_WIDTH {
            times.push(out.cover_time(lane));
        }
    }
    times
}

/// Measure cover times through the bit-sliced 64-lane engine: whole
/// batches of [`LANE_WIDTH`] trials advance together, sharing neighbor
/// draws across lanes (see [`cobra_core::lanes`]), which is what makes
/// small-`n` cover cells cheap — per-trial dispatch no longer dominates.
///
/// Seeding is per *batch* (`SeedSequence::rng_at(batch_index)`), so the
/// result is bit-identical at any worker count, and a run with fewer
/// trials is a bitwise prefix of a longer run with the same master seed.
/// Because lanes share draws, individual trials do **not** reproduce the
/// serial engines' trials; cover-time *distributions* agree (each lane's
/// marginal law is exactly the process — see the module docs), and the
/// `tests/lanes.rs` KS harness pins that. Callers who need trial-level
/// reproducibility against the serial stream use
/// [`run_cover_trials_typed`]; [`run_cover_trials_auto`] picks per cell.
///
/// The caller is responsible for eligibility
/// ([`lane_cover_applies`]) — this runner itself accepts any typed
/// process with a lane form and panics otherwise.
pub fn run_cover_trials_lanes<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let batches = plan.trials.div_ceil(LANE_WIDTH);
    let mut times = lane_cover_times(
        g,
        process,
        start,
        plan.max_steps,
        plan.master_seed,
        0..batches,
    );
    // The tail batch computes all 64 lanes regardless (the stream is a
    // unit); surplus lanes are discarded here, preserving the prefix
    // property.
    times.truncate(plan.trials);
    aggregate(times)
}

/// Probed variant of [`run_cover_trials_lanes`]: one [`Probe`] per
/// 64-lane **batch** (the lane engine's natural observation unit — lanes
/// share draws, so per-lane draw attribution does not exist), built by
/// `make_probe(batch_index)` and returned in batch order. The runner
/// fires [`Probe::on_trial_begin`] with the batch index; the lane kernel
/// reports rounds, live-lane counts, pooled draw totals, and
/// (vertex, lane) coverage deltas (see
/// [`cobra_core::lanes::run_lane_cover_probed`]). Seeds and draws match
/// the unprobed lane runner exactly — a `NoopProbe` factory is
/// bit-identical to [`run_cover_trials_lanes`].
pub fn run_cover_trials_lanes_probed<P, Pb, F>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
    make_probe: F,
) -> (TrialOutcome, Vec<Pb>)
where
    P: TypedProcess + Sync,
    Pb: Probe + Send,
    F: Fn(u64) -> Pb + Sync,
{
    let k = process
        .lane_branching()
        .expect("process has no lane-parallel form");
    let batches = plan.trials.div_ceil(LANE_WIDTH);
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let outs: Vec<_> = (0..batches)
        .into_par_iter()
        .map_init(
            || LaneScratch::new(g),
            |scratch, b| {
                let mut rng = seq.rng_at(b as u64);
                let mut probe = make_probe(b as u64);
                probe.on_trial_begin(b as u64);
                let out = run_lane_cover_probed(
                    g,
                    &sampler,
                    k,
                    start,
                    u64::MAX,
                    plan.max_steps,
                    scratch,
                    &mut rng,
                    &mut probe,
                );
                (out, probe)
            },
        )
        .collect();
    let mut times = Vec::with_capacity(batches * LANE_WIDTH);
    let mut probes = Vec::with_capacity(batches);
    for (out, probe) in outs {
        for lane in 0..LANE_WIDTH {
            times.push(out.cover_time(lane));
        }
        probes.push(probe);
    }
    times.truncate(plan.trials);
    (aggregate(times), probes)
}

/// Cover trials through the best engine for the cell: the 64-lane
/// engine when [`lane_cover_applies`], else the per-trial scratch
/// engine ([`run_cover_trials_typed`]). The choice depends only on the
/// plan and the cell shape — never on trial outcomes — so a given cell
/// always uses the same engine and stays reproducible.
pub fn run_cover_trials_auto<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    if lane_cover_applies(g, process, plan.trials) {
        run_cover_trials_lanes(g, process, start, plan)
    } else {
        run_cover_trials_typed(g, process, start, plan)
    }
}

/// Outcome of an adaptive (sequentially stopped) batch of trials.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// Summary of the measured times over **completed** trials, exactly
    /// the prefix `0..trials_run()` of the plan's global trial stream.
    pub summary: Summary,
    /// Censored trials within that prefix (budget exhausted). Censored
    /// trials count against `rule.max_trials` but never enter `summary`,
    /// so a fully censored cell simply runs to the cap and reports
    /// `precision_met = false` instead of panicking.
    pub censored: usize,
    /// Whether the stop rule's precision target was met before the
    /// trial cap.
    pub precision_met: bool,
}

impl AdaptiveOutcome {
    /// Total trials consumed (completed + censored).
    pub fn trials_run(&self) -> usize {
        self.summary.count() + self.censored
    }

    /// Fraction of consumed trials that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.trials_run();
        if total == 0 {
            0.0
        } else {
            self.summary.count() as f64 / total as f64
        }
    }

    /// The summary over completed trials, or `Err(EmptySummary)` when
    /// every trial was censored.
    pub fn completed_summary(&self) -> Result<&Summary, EmptySummary> {
        if self.summary.count() == 0 {
            Err(EmptySummary)
        } else {
            Ok(&self.summary)
        }
    }

    /// View as a fixed-plan [`TrialOutcome`] (drops the precision flag),
    /// for code that post-processes both kinds of run uniformly.
    pub fn to_trial_outcome(&self) -> TrialOutcome {
        TrialOutcome {
            summary: self.summary.clone(),
            censored: self.censored,
        }
    }
}

/// Control decision returned by an adaptive batch observer: keep
/// consuming batches, or halt at this batch boundary (the consumed
/// prefix so far is exactly what a checkpoint should persist).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchControl {
    /// Continue to the next batch.
    Continue,
    /// Stop at this batch boundary; the run reports `halted = true`.
    Halt,
}

/// Outcome of a resumable adaptive run: the usual [`AdaptiveOutcome`]
/// plus the consumed per-trial outcome stream (global trial order) that
/// a checkpoint persists, and whether the observer halted the run before
/// the rule decided.
#[derive(Clone, Debug)]
pub struct ResumableOutcome {
    /// The adaptive outcome over the consumed prefix.
    pub outcome: AdaptiveOutcome,
    /// Per-trial outcomes for exactly the consumed prefix, in global
    /// trial order (`Some(steps)` completed, `None` censored). Feeding
    /// this back as `prior` resumes the run bit-identically.
    pub times: Vec<Option<usize>>,
    /// Whether the batch observer halted the run. A halted run is
    /// incomplete: `outcome` describes the prefix consumed so far.
    pub halted: bool,
}

/// Replay a consumed-prefix outcome stream through a stop rule,
/// reconstructing the summary/censoring/precision state an uninterrupted
/// adaptive run had after those trials. Stopping decisions are made
/// per-trial in global order, so entries past the stopping index (or the
/// trial cap) are ignored.
fn replay_prefix(rule: &crate::convergence::StopRule, times: &[Option<usize>]) -> AdaptiveOutcome {
    let mut summary = Summary::new();
    let mut censored = 0usize;
    let mut met = false;
    for &t in times {
        if met || summary.count() + censored >= rule.max_trials {
            break;
        }
        match t {
            Some(steps) => {
                summary.push(steps as f64);
                if rule.satisfied(&summary) {
                    met = true;
                }
            }
            None => censored += 1,
        }
    }
    AdaptiveOutcome {
        summary,
        censored,
        precision_met: met,
    }
}

/// Public view of the internal `replay_prefix`: rebuild an [`AdaptiveOutcome`] from
/// a checkpointed per-trial outcome stream. Used by `--resume` to render
/// completed cells into the final manifest byte-identically without
/// recomputing a single trial.
pub fn replay_outcomes(
    rule: &crate::convergence::StopRule,
    times: &[Option<usize>],
) -> AdaptiveOutcome {
    replay_prefix(rule, times)
}

/// The shared control loop of every adaptive engine, resumable at batch
/// boundaries.
///
/// Semantics: trials are conceptually consumed one at a time in global
/// index order, with the stop rule consulted after every trial — exactly
/// the serial [`crate::convergence::run_until_precise`] loop. Execution
/// speculates ahead through `extend(lo, hi)`, which appends per-trial
/// outcomes for global indices `lo..` (at least through `hi`; the lane
/// extender rounds up to whole 64-lane batches), then replays the new
/// outcomes serially against the rule. Because each trial's outcome
/// depends only on its global index, and the stopping index only on the
/// ordered prefix of outcomes, the result is bit-identical across worker
/// counts, batch sizes, **and** resume points: seeding the loop with a
/// `prior` prefix (from a checkpoint) replays it through the rule and
/// continues exactly where an uninterrupted run would be.
///
/// `on_batch` runs at every batch boundary that leaves work remaining,
/// receiving the consumed prefix — the checkpoint/watchdog seam.
fn adaptive_stream_loop(
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    mut extend: impl FnMut(usize, usize) -> Vec<Option<usize>>,
    mut on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome {
    let rule = plan.rule;
    let mut times = prior;
    let mut outcome = replay_prefix(&rule, &times);
    let mut consumed = outcome.trials_run();
    // Entries past the replayed stopping index (reachable only from a
    // prior that over-ran the rule) are not part of the consumed stream.
    times.truncate(consumed);
    let mut halted = false;
    while consumed < rule.max_trials && !outcome.precision_met && !halted {
        // Never launch past the cap, and never speculate past the first
        // point the rule could actually fire: the opening batch runs
        // exactly to `min_trials` (an easy cell then computes the
        // minimum and nothing more), later batches extend by
        // `plan.batch`. Speculation depth never changes results — only
        // how much computed-then-discarded work a stop can strand.
        let horizon = if consumed < rule.min_trials {
            rule.min_trials
        } else {
            consumed + plan.batch
        };
        let hi = horizon.min(rule.max_trials);
        if times.len() < hi {
            let lo = times.len();
            let more = extend(lo, hi);
            debug_assert!(lo + more.len() >= hi, "extender under-filled the horizon");
            times.extend(more);
        }
        while consumed < hi && !outcome.precision_met {
            match times[consumed] {
                Some(steps) => {
                    outcome.summary.push(steps as f64);
                    if rule.satisfied(&outcome.summary) {
                        outcome.precision_met = true;
                    }
                }
                None => outcome.censored += 1,
            }
            consumed += 1;
        }
        if !outcome.precision_met && consumed < rule.max_trials {
            if let BatchControl::Halt = on_batch(&times[..consumed]) {
                halted = true;
            }
        }
    }
    times.truncate(consumed);
    ResumableOutcome {
        outcome,
        times,
        halted,
    }
}

/// The adaptive batch engine shared by the cover and hitting scratch
/// runners: [`adaptive_stream_loop`] with a worker-parallel extender
/// (per-worker scratch via `map_init`, per-trial RNGs from the global
/// index).
fn run_adaptive_batches_resumable<S, Init, Trial>(
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    init: Init,
    trial: Trial,
    on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome
where
    Init: Fn() -> S + Sync,
    Trial: Fn(&mut S, usize) -> Option<usize> + Sync,
{
    adaptive_stream_loop(
        plan,
        prior,
        |lo, hi| {
            (lo..hi)
                .into_par_iter()
                .map_init(&init, |scratch, i| trial(scratch, i))
                .collect()
        },
        on_batch,
    )
}

/// Non-resumable wrapper kept for the fixed entry points.
fn run_adaptive_batches<S, Init, Trial>(
    plan: &AdaptivePlan,
    init: Init,
    trial: Trial,
) -> AdaptiveOutcome
where
    Init: Fn() -> S + Sync,
    Trial: Fn(&mut S, usize) -> Option<usize> + Sync,
{
    run_adaptive_batches_resumable(plan, Vec::new(), init, trial, |_| BatchControl::Continue)
        .outcome
}

/// Adaptive variant of [`run_cover_trials_typed`]: runs cover trials in
/// worker-parallel batches on the scratch+sampler path until
/// `plan.rule` is satisfied (or its trial cap is hit). Trial `i` draws
/// the same RNG as in the fixed-plan runner, so an adaptive run that
/// consumes `n` trials reproduces the fixed runner's first `n` trials
/// bit-for-bit, at any worker count and batch size.
pub fn run_cover_trials_adaptive<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    run_adaptive_batches(
        plan,
        || TrialScratch::new(g),
        |scratch, i| {
            let mut rng = seq.rng_at(i as u64);
            let res = driver
                .run_typed_in(process, &sampler, scratch, start, plan.max_steps, &mut rng)
                .expect("non-empty graph");
            res.completed.then_some(res.steps)
        },
    )
}

/// Adaptive variant of [`run_cover_trials_lanes`]: sequential stopping
/// with the exact horizon discipline of [`run_cover_trials_adaptive`]
/// (speculate to `min_trials`, then extend by `plan.batch`, cap at
/// `max_trials`; replay serially against the rule), but trials come from
/// the lane engine's flattened global stream. Lane batches are computed
/// whole — the shared-draw stream of a 64-lane batch is a unit — and the
/// flattened outcome vector is extended exactly to cover each horizon,
/// so the stopping index is independent of `plan.batch` and worker
/// count, and a run consuming `n` trials reproduces
/// [`run_cover_trials_lanes`]' first `n` trials bit-for-bit.
pub fn run_cover_trials_adaptive_lanes<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    run_cover_trials_adaptive_lanes_resumable(g, process, start, plan, Vec::new(), |_| {
        BatchControl::Continue
    })
    .outcome
}

/// Resumable form of [`run_cover_trials_adaptive_lanes`]: seed with a
/// checkpointed `prior` prefix and observe batch boundaries via
/// `on_batch`. A resume from any consumed prefix is bit-identical to the
/// uninterrupted run (the lane stream is prefix-stable and
/// random-access by batch, so a prior ending mid-batch recomputes only
/// that batch's already-consumed lanes and discards them).
pub fn run_cover_trials_adaptive_lanes_resumable<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome {
    adaptive_stream_loop(
        plan,
        prior,
        |lo, hi| {
            // Lane batches are computed whole (the shared-draw stream of
            // a 64-lane batch is a unit); when `lo` sits mid-batch the
            // already-consumed lanes of that batch are recomputed and
            // dropped, preserving the flattened global stream exactly.
            let first = lo / LANE_WIDTH;
            let need = hi.div_ceil(LANE_WIDTH);
            let mut v = lane_cover_times(
                g,
                process,
                start,
                plan.max_steps,
                plan.master_seed,
                first..need,
            );
            v.drain(..lo - first * LANE_WIDTH);
            v
        },
        on_batch,
    )
}

/// Adaptive cover trials through the best engine for the cell: the
/// 64-lane engine when [`lane_cover_applies`] at the rule's
/// `max_trials`, else the scratch engine. Eligibility uses the cap —
/// not the consumed count — so the engine choice (and the RNG stream)
/// never depends on the data.
pub fn run_cover_trials_adaptive_auto<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    if lane_cover_applies(g, process, plan.rule.max_trials) {
        run_cover_trials_adaptive_lanes(g, process, start, plan)
    } else {
        run_cover_trials_adaptive(g, process, start, plan)
    }
}

/// Adaptive variant of [`run_hitting_trials_typed`]; same engine and
/// seeding invariants as [`run_cover_trials_adaptive`].
pub fn run_hitting_trials_adaptive<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    run_hitting_trials_adaptive_resumable(g, process, start, target, plan, Vec::new(), |_| {
        BatchControl::Continue
    })
    .outcome
}

/// Resumable form of [`run_cover_trials_adaptive`]: seed with a
/// checkpointed `prior` outcome prefix and observe batch boundaries via
/// `on_batch` (the checkpoint/watchdog seam). Resuming from any consumed
/// prefix is bit-identical to the uninterrupted run — per-trial RNGs key
/// on the global trial index and stopping decisions are per-trial, so
/// the prefix partition cannot affect the result.
pub fn run_cover_trials_adaptive_resumable<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    run_adaptive_batches_resumable(
        plan,
        prior,
        || TrialScratch::new(g),
        |scratch, i| {
            let mut rng = seq.rng_at(i as u64);
            let res = driver
                .run_typed_in(process, &sampler, scratch, start, plan.max_steps, &mut rng)
                .expect("non-empty graph");
            res.completed.then_some(res.steps)
        },
        on_batch,
    )
}

/// Resumable form of [`run_cover_trials_adaptive_auto`]: routes to the
/// lane or scratch resumable engine by [`lane_cover_applies`] at the
/// rule's `max_trials` — the same data-independent gate as the
/// non-resumable auto runner, so a resumed cell always re-routes to the
/// engine (and stream) its checkpoint came from.
pub fn run_cover_trials_adaptive_auto_resumable<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome {
    if lane_cover_applies(g, process, plan.rule.max_trials) {
        run_cover_trials_adaptive_lanes_resumable(g, process, start, plan, prior, on_batch)
    } else {
        run_cover_trials_adaptive_resumable(g, process, start, plan, prior, on_batch)
    }
}

/// Resumable form of [`run_hitting_trials_adaptive`]; same invariants as
/// [`run_cover_trials_adaptive_resumable`].
pub fn run_hitting_trials_adaptive_resumable<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &AdaptivePlan,
    prior: Vec<Option<usize>>,
    on_batch: impl FnMut(&[Option<usize>]) -> BatchControl,
) -> ResumableOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = HittingDriver::new(g);
    run_adaptive_batches_resumable(
        plan,
        prior,
        || TrialScratch::new(g),
        |scratch, i| {
            let mut rng = seq.rng_at(i as u64);
            let res = driver.run_typed_in(
                process,
                &sampler,
                scratch,
                start,
                target,
                plan.max_steps,
                &mut rng,
            );
            res.hit.then_some(res.steps)
        },
        on_batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::StopRule;
    use cobra_core::{CobraWalk, SimpleWalk};
    use cobra_graph::generators::classic;

    #[test]
    fn adaptive_prefix_matches_fixed_runner_bitwise() {
        // An adaptive run that consumes n trials must reproduce the fixed
        // runner's first n trials exactly — same seeds, same values.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(8, 200, 0.05);
        let plan = AdaptivePlan::new(rule, 16, 100_000, 77);
        let out = run_cover_trials_adaptive(&g, &cobra, 0, &plan);
        assert!(out.precision_met);
        let n = out.trials_run();
        assert!((rule.min_trials..=rule.max_trials).contains(&n));
        let fixed = run_cover_trials_typed(&g, &cobra, 0, &TrialPlan::new(n, 100_000, 77));
        assert_eq!(out.summary.count(), fixed.summary.count());
        assert_eq!(out.censored, fixed.censored);
        assert_eq!(out.summary.mean(), fixed.summary.mean());
        assert_eq!(out.summary.median(), fixed.summary.median());
        assert_eq!(out.summary.min(), fixed.summary.min());
        assert_eq!(out.summary.max(), fixed.summary.max());
    }

    #[test]
    fn adaptive_stop_matches_serial_reference() {
        // The engine's stopping index must equal the serial loop's:
        // replay the same per-trial outcomes through run_until_precise.
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(6, 500, 0.04);
        for batch in [1usize, 7, 64] {
            let plan = AdaptivePlan::new(rule, batch, 10_000, 0xAB);
            let out = run_cover_trials_adaptive(&g, &cobra, 0, &plan);
            assert!(out.precision_met);
            // Serial oracle: feed the same trial values (complete graph
            // cover always completes) one at a time.
            let seq = SeedSequence::new(plan.master_seed);
            let driver = CoverDriver::new(&g);
            let (oracle, ok) = crate::convergence::run_until_precise(&rule, |i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver
                    .run_typed(&cobra, 0, plan.max_steps, &mut rng)
                    .unwrap();
                assert!(res.completed);
                res.steps as f64
            });
            assert!(ok);
            assert_eq!(out.summary.count(), oracle.count(), "batch {batch}");
            assert_eq!(out.summary.mean(), oracle.mean(), "batch {batch}");
        }
    }

    #[test]
    fn adaptive_hitting_runs_and_meets_precision() {
        let g = classic::complete(8).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(10, 2000, 0.05);
        let plan = AdaptivePlan::new(rule, 32, 10_000, 5);
        let out = run_hitting_trials_adaptive(&g, &cobra, 0, 3, &plan);
        assert!(out.precision_met);
        assert_eq!(out.censored, 0);
        assert!(out.summary.mean() > 0.0);
        assert!(out.trials_run() <= rule.max_trials);
    }

    #[test]
    fn adaptive_fully_censored_cell_reports_not_met() {
        // A 5-step budget cannot cover a 60-path: every trial censors.
        // The engine must run to the trial cap and report failure as a
        // value, not a panic.
        let g = classic::path(60).unwrap();
        let rule = StopRule::new(4, 24, 0.1);
        let plan = AdaptivePlan::new(rule, 10, 5, 3);
        let out = run_cover_trials_adaptive(&g, &SimpleWalk::new(), 0, &plan);
        assert!(!out.precision_met);
        assert_eq!(out.censored, 24);
        assert_eq!(out.summary.count(), 0);
        assert_eq!(out.completion_rate(), 0.0);
        assert!(matches!(out.completed_summary(), Err(EmptySummary)));
    }

    #[test]
    fn adaptive_outcome_converts_to_trial_outcome() {
        let g = classic::complete(10).unwrap();
        let plan = AdaptivePlan::new(StopRule::new(4, 50, 0.2), 8, 1000, 9);
        let out = run_cover_trials_adaptive(&g, &CobraWalk::standard(), 0, &plan);
        let as_fixed = out.to_trial_outcome();
        assert_eq!(as_fixed.summary.count(), out.summary.count());
        assert_eq!(as_fixed.censored, out.censored);
        assert_eq!(as_fixed.completion_rate(), out.completion_rate());
    }

    #[test]
    fn cover_trials_complete_on_small_graph() {
        let g = classic::complete(12).unwrap();
        let plan = TrialPlan::new(40, 10_000, 1);
        let out = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        assert_eq!(out.censored, 0);
        assert_eq!(out.summary.count(), 40);
        assert!(out.summary.mean() >= 4.0, "cannot cover K12 in < 4 rounds");
        assert!((out.completion_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_are_reproducible() {
        let g = classic::cycle(20).unwrap();
        let plan = TrialPlan::new(25, 100_000, 7);
        let a = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        let b = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        assert_eq!(a.summary.count(), b.summary.count());
        assert!((a.summary.mean() - b.summary.mean()).abs() < 1e-12);
        assert_eq!(a.summary.median(), b.summary.median());
    }

    #[test]
    fn different_seeds_differ() {
        let g = classic::cycle(20).unwrap();
        let a = run_cover_trials(
            &g,
            &CobraWalk::standard(),
            0,
            &TrialPlan::new(25, 100_000, 1),
        );
        let b = run_cover_trials(
            &g,
            &CobraWalk::standard(),
            0,
            &TrialPlan::new(25, 100_000, 2),
        );
        assert_ne!(a.summary.mean(), b.summary.mean());
    }

    #[test]
    fn censoring_is_reported() {
        let g = classic::path(60).unwrap();
        // 10 steps cannot cover a 60-path.
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &TrialPlan::new(10, 10, 3));
        assert_eq!(out.censored, 10);
        assert_eq!(out.summary.count(), 0);
        assert_eq!(out.completion_rate(), 0.0);
    }

    #[test]
    fn all_censored_is_an_explicit_error_not_a_panic() {
        // A 10-step budget cannot cover a 60-path: every trial censors,
        // and the checked accessor reports that as a value.
        let g = classic::path(60).unwrap();
        let plan = TrialPlan::new(8, 10, 3);
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &plan);
        assert_eq!(out.censored, 8);
        assert!(matches!(
            out.completed_summary(),
            Err(crate::stats::EmptySummary)
        ));
        assert_eq!(out.summary.try_mean(), Err(crate::stats::EmptySummary));
    }

    #[test]
    fn censored_trials_never_pollute_summary() {
        // Budget near the median cover time → a mix of completed and
        // censored trials. The summary must contain exactly the completed
        // trials' values: rebuild them serially from the same per-trial
        // seeds and compare moments bitwise.
        let g = classic::cycle(16).unwrap();
        let plan = TrialPlan::new(60, 120, 11);
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &plan);
        assert!(out.censored > 0, "expected some censored trials");
        assert!(out.summary.count() > 0, "expected some completed trials");
        assert_eq!(out.summary.count() + out.censored, plan.trials);

        let seq = SeedSequence::new(plan.master_seed);
        let mut completed = Vec::new();
        for i in 0..plan.trials {
            let mut rng = seq.rng_at(i as u64);
            let res = CoverDriver::new(&g)
                .run(&SimpleWalk::new(), 0, plan.max_steps, &mut rng)
                .unwrap();
            if res.completed {
                completed.push(res.steps as f64);
            }
        }
        let oracle = Summary::from_slice(&completed);
        assert_eq!(out.summary.count(), oracle.count());
        assert_eq!(out.summary.mean(), oracle.mean());
        assert_eq!(out.summary.median(), oracle.median());
        assert_eq!(out.summary.max(), oracle.max());
        assert!(out.summary.max() <= plan.max_steps as f64);
    }

    #[test]
    fn typed_trials_match_dyn_trials_bitwise() {
        let g = classic::complete(16).unwrap();
        let plan = TrialPlan::new(32, 10_000, 21);
        let cobra = CobraWalk::standard();
        let a = run_cover_trials(&g, &cobra, 0, &plan);
        let b = run_cover_trials_typed(&g, &cobra, 0, &plan);
        assert_eq!(a.censored, b.censored);
        assert_eq!(a.summary.count(), b.summary.count());
        assert_eq!(a.summary.mean(), b.summary.mean());
        assert_eq!(a.summary.median(), b.summary.median());
        let h_dyn = run_hitting_trials(&g, &cobra, 0, 9, &plan);
        let h_typed = run_hitting_trials_typed(&g, &cobra, 0, 9, &plan);
        assert_eq!(h_dyn.summary.mean(), h_typed.summary.mean());
        assert_eq!(h_dyn.censored, h_typed.censored);
    }

    #[test]
    fn hitting_trials_measure_adjacent_hop() {
        let g = classic::complete(5).unwrap();
        let plan = TrialPlan::new(200, 10_000, 4);
        let out = run_hitting_trials(&g, &SimpleWalk::new(), 0, 1, &plan);
        assert_eq!(out.censored, 0);
        // On K_5, hitting a fixed other vertex is geometric(1/4): mean 4.
        let mean = out.summary.mean();
        assert!((mean - 4.0).abs() < 1.0, "mean hitting {mean}");
    }

    #[test]
    fn hitting_start_equals_target() {
        let g = classic::cycle(6).unwrap();
        let out = run_hitting_trials(&g, &SimpleWalk::new(), 2, 2, &TrialPlan::new(5, 100, 5));
        assert_eq!(out.summary.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn plan_rejects_zero_trials() {
        TrialPlan::new(0, 10, 0);
    }

    #[test]
    fn lane_eligibility_gate() {
        let small = classic::cycle(16).unwrap();
        let cobra = CobraWalk::standard();
        assert!(lane_cover_applies(&small, &cobra, 64));
        assert!(lane_cover_applies(&small, &cobra, 1000));
        // Too few trials to fill a lane batch.
        assert!(!lane_cover_applies(&small, &cobra, 63));
        // Too large a graph.
        let big = classic::cycle(LANE_MAX_N + 1).unwrap();
        assert!(!lane_cover_applies(&big, &cobra, 1000));
        // Non-lazy simple walk has a lane form; a lazy one does not.
        assert!(lane_cover_applies(&small, &SimpleWalk::new(), 64));
        assert!(!lane_cover_applies(&small, &SimpleWalk::lazy(0.3), 64));
    }

    #[test]
    fn implicit_runner_never_takes_the_lane_path() {
        // Regression for the lane-eligibility seam: a lane-shaped cell
        // (small n, ≥ 64 trials, lane-capable process) must not pull
        // implicit-routed runs onto the lane engine — the implicit
        // runner always drives the scratch stream. On a CSR graph the
        // two runners are bit-identical, so comparing against
        // run_cover_trials_typed (NOT the lane/auto engines, whose
        // per-batch seeding is a different stream) pins the routing.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let plan = TrialPlan::new(96, 100_000, 13);
        assert!(
            lane_cover_applies(&g, &cobra, plan.trials),
            "cell must be lane-shaped for this regression to bite"
        );
        let typed = run_cover_trials_typed(&g, &cobra, 0, &plan);
        let implicit = run_cover_trials_implicit(&g, &cobra, 0, &plan);
        assert_eq!(implicit.censored, typed.censored);
        assert_eq!(implicit.summary.count(), typed.summary.count());
        assert_eq!(implicit.summary.mean(), typed.summary.mean());
        assert_eq!(implicit.summary.median(), typed.summary.median());
        assert_eq!(implicit.summary.min(), typed.summary.min());
        assert_eq!(implicit.summary.max(), typed.summary.max());
        // And the lane engine on the same plan is a genuinely different
        // stream — if the implicit runner ever silently rerouted to it,
        // the equality above would have been vacuous.
        let lanes = run_cover_trials_lanes(&g, &cobra, 0, &plan);
        assert_ne!(implicit.summary.mean(), lanes.summary.mean());
    }

    #[test]
    fn implicit_runner_accepts_implicit_families() {
        // The same lane-shaped plan on an actual implicit family (a
        // 24-cycle as a 1-d torus) runs through the arithmetic path and
        // produces the same cover-time stream as the CSR cycle, since
        // both expose identical ascending adjacency.
        let torus = cobra_graph::ImplicitTorus::new(&[23]).unwrap();
        let csr = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let plan = TrialPlan::new(96, 100_000, 13);
        let a = run_cover_trials_implicit(&torus, &cobra, 0, &plan);
        let b = run_cover_trials_implicit(&csr, &cobra, 0, &plan);
        assert_eq!(a.summary.count(), b.summary.count());
        assert_eq!(a.summary.mean(), b.summary.mean());
        assert_eq!(a.summary.median(), b.summary.median());
    }

    #[test]
    fn lane_stream_is_prefix_stable_and_resumable() {
        // The flattened lane stream must not depend on how many batches
        // a call computes (prefix property) or on where a range starts
        // (resume identity) — both are what the adaptive runner leans on.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let two = lane_cover_times(&g, &cobra, 0, 100_000, 42, 0..2);
        let one = lane_cover_times(&g, &cobra, 0, 100_000, 42, 0..1);
        let tail = lane_cover_times(&g, &cobra, 0, 100_000, 42, 1..2);
        assert_eq!(two.len(), 2 * LANE_WIDTH);
        assert_eq!(&two[..LANE_WIDTH], &one[..]);
        assert_eq!(&two[LANE_WIDTH..], &tail[..]);
    }

    #[test]
    fn lane_runner_truncates_partial_batches() {
        // 70 trials = one full batch + 6 lanes of the second; the runner
        // must report exactly 70, and they must be the 70-prefix of a
        // 128-trial run.
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let out = run_cover_trials_lanes(&g, &cobra, 0, &TrialPlan::new(70, 10_000, 9));
        assert_eq!(out.summary.count() + out.censored, 70);
        let full = lane_cover_times(&g, &cobra, 0, 10_000, 9, 0..2);
        let oracle = aggregate(full[..70].to_vec());
        assert_eq!(out.summary.count(), oracle.summary.count());
        assert_eq!(out.summary.mean(), oracle.summary.mean());
        assert_eq!(out.summary.median(), oracle.summary.median());
    }

    #[test]
    fn auto_runner_routes_by_eligibility() {
        let g = classic::cycle(16).unwrap();
        let cobra = CobraWalk::standard();
        // Eligible cell: auto must equal the lane runner bitwise.
        let plan = TrialPlan::new(128, 100_000, 5);
        let auto_out = run_cover_trials_auto(&g, &cobra, 0, &plan);
        let lanes = run_cover_trials_lanes(&g, &cobra, 0, &plan);
        assert_eq!(auto_out.summary.mean(), lanes.summary.mean());
        assert_eq!(auto_out.summary.median(), lanes.summary.median());
        // Ineligible cell (too few trials): auto must equal the scratch
        // engine bitwise.
        let small_plan = TrialPlan::new(20, 100_000, 5);
        let auto_small = run_cover_trials_auto(&g, &cobra, 0, &small_plan);
        let typed = run_cover_trials_typed(&g, &cobra, 0, &small_plan);
        assert_eq!(auto_small.summary.mean(), typed.summary.mean());
        assert_eq!(auto_small.summary.median(), typed.summary.median());
    }

    #[test]
    fn adaptive_lanes_is_prefix_of_fixed_lanes() {
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(64, 640, 0.05);
        let plan = AdaptivePlan::new(rule, 16, 100_000, 77);
        let out = run_cover_trials_adaptive_lanes(&g, &cobra, 0, &plan);
        assert!(out.precision_met);
        let n = out.trials_run();
        assert!((rule.min_trials..=rule.max_trials).contains(&n));
        let fixed = run_cover_trials_lanes(&g, &cobra, 0, &TrialPlan::new(n, 100_000, 77));
        assert_eq!(out.summary.count(), fixed.summary.count());
        assert_eq!(out.censored, fixed.censored);
        assert_eq!(out.summary.mean(), fixed.summary.mean());
        assert_eq!(out.summary.median(), fixed.summary.median());
        assert_eq!(out.summary.min(), fixed.summary.min());
        assert_eq!(out.summary.max(), fixed.summary.max());
    }

    #[test]
    fn adaptive_lanes_is_batch_size_independent() {
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(64, 500, 0.04);
        let mut reference: Option<AdaptiveOutcome> = None;
        for batch in [1usize, 7, 64] {
            let plan = AdaptivePlan::new(rule, batch, 10_000, 0xAB);
            let out = run_cover_trials_adaptive_lanes(&g, &cobra, 0, &plan);
            if let Some(r) = &reference {
                assert_eq!(out.summary.count(), r.summary.count(), "batch {batch}");
                assert_eq!(out.summary.mean(), r.summary.mean(), "batch {batch}");
                assert_eq!(out.censored, r.censored, "batch {batch}");
                assert_eq!(out.precision_met, r.precision_met, "batch {batch}");
            } else {
                reference = Some(out);
            }
        }
    }

    #[test]
    fn adaptive_auto_routes_by_trial_cap() {
        let g = classic::cycle(16).unwrap();
        let cobra = CobraWalk::standard();
        // Cap ≥ 64 → lanes; compare against the lane engine bitwise.
        let plan = AdaptivePlan::new(StopRule::new(64, 200, 0.03), 16, 100_000, 3);
        let auto_out = run_cover_trials_adaptive_auto(&g, &cobra, 0, &plan);
        let lanes = run_cover_trials_adaptive_lanes(&g, &cobra, 0, &plan);
        assert_eq!(auto_out.summary.count(), lanes.summary.count());
        assert_eq!(auto_out.summary.mean(), lanes.summary.mean());
        // Cap < 64 → scratch engine.
        let small = AdaptivePlan::new(StopRule::new(8, 40, 0.2), 8, 100_000, 3);
        let auto_small = run_cover_trials_adaptive_auto(&g, &cobra, 0, &small);
        let scratch = run_cover_trials_adaptive(&g, &cobra, 0, &small);
        assert_eq!(auto_small.summary.count(), scratch.summary.count());
        assert_eq!(auto_small.summary.mean(), scratch.summary.mean());
    }

    #[test]
    fn resumable_scratch_matches_uninterrupted_from_every_boundary() {
        // Halt at each batch boundary in turn, then resume from the
        // checkpointed prefix: outcome and consumed stream must equal the
        // uninterrupted run's exactly.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let plan = AdaptivePlan::new(StopRule::new(8, 2000, 0.03), 16, 100_000, 77);
        let full = run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, Vec::new(), |_| {
            BatchControl::Continue
        });
        assert!(!full.halted);
        assert!(full.outcome.precision_met);
        for halt_after in 1..4usize {
            let mut boundaries = 0usize;
            let mut checkpoint: Vec<Option<usize>> = Vec::new();
            let interrupted =
                run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, Vec::new(), |prefix| {
                    boundaries += 1;
                    if boundaries >= halt_after {
                        checkpoint = prefix.to_vec();
                        BatchControl::Halt
                    } else {
                        BatchControl::Continue
                    }
                });
            if !interrupted.halted {
                // The rule stopped before the halt-th boundary; nothing
                // left to resume.
                assert_eq!(interrupted.times, full.times);
                continue;
            }
            assert_eq!(interrupted.times, checkpoint);
            let resumed =
                run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, checkpoint, |_| {
                    BatchControl::Continue
                });
            assert_eq!(resumed.times, full.times, "halt at boundary {halt_after}");
            assert_eq!(resumed.outcome.summary.mean(), full.outcome.summary.mean());
            assert_eq!(resumed.outcome.censored, full.outcome.censored);
            assert_eq!(resumed.outcome.precision_met, full.outcome.precision_met);
        }
    }

    #[test]
    fn resumable_lanes_resumes_mid_batch_prefixes() {
        // A lane checkpoint can end mid-64-lane-batch (batch size 8 →
        // consumed prefixes of 64, 72, 80, …). Resuming must recompute
        // only the partial batch and land bit-identical.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let plan = AdaptivePlan::new(StopRule::new(64, 640, 0.02), 8, 100_000, 42);
        let full =
            run_cover_trials_adaptive_lanes_resumable(&g, &cobra, 0, &plan, Vec::new(), |_| {
                BatchControl::Continue
            });
        let mut halted_once = false;
        let interrupted =
            run_cover_trials_adaptive_lanes_resumable(&g, &cobra, 0, &plan, Vec::new(), |prefix| {
                // Halt at the second boundary: consumed = 64 + 8 = 72,
                // mid-way through lane batch 1.
                if prefix.len() >= 72 {
                    halted_once = true;
                    BatchControl::Halt
                } else {
                    BatchControl::Continue
                }
            });
        assert!(halted_once && interrupted.halted);
        assert_eq!(interrupted.times.len() % LANE_WIDTH, 8);
        let resumed = run_cover_trials_adaptive_lanes_resumable(
            &g,
            &cobra,
            0,
            &plan,
            interrupted.times,
            |_| BatchControl::Continue,
        );
        assert_eq!(resumed.times, full.times);
        assert_eq!(resumed.outcome.summary.mean(), full.outcome.summary.mean());
        assert_eq!(resumed.outcome.censored, full.outcome.censored);
    }

    #[test]
    fn replay_outcomes_reconstructs_the_adaptive_outcome() {
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let plan = AdaptivePlan::new(StopRule::new(6, 500, 0.04), 7, 10_000, 0xAB);
        let run = run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, Vec::new(), |_| {
            BatchControl::Continue
        });
        let replayed = replay_outcomes(&plan.rule, &run.times);
        assert_eq!(replayed.summary.count(), run.outcome.summary.count());
        assert_eq!(replayed.summary.mean(), run.outcome.summary.mean());
        assert_eq!(replayed.summary.median(), run.outcome.summary.median());
        assert_eq!(replayed.censored, run.outcome.censored);
        assert_eq!(replayed.precision_met, run.outcome.precision_met);
        // A done cell replayed with extra garbage appended ignores the
        // entries past its stopping index.
        let mut padded = run.times.clone();
        padded.extend([Some(1), None, Some(2)]);
        let replay_padded = replay_outcomes(&plan.rule, &padded);
        assert_eq!(replay_padded.summary.count(), replayed.summary.count());
        assert_eq!(replay_padded.summary.mean(), replayed.summary.mean());
    }

    #[test]
    fn resumable_done_prior_skips_all_work() {
        // Feeding a completed cell's stream back as prior must return
        // the same outcome without calling the extender at all — that is
        // what lets --resume render done cells with zero recomputation.
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let plan = AdaptivePlan::new(StopRule::new(6, 500, 0.04), 7, 10_000, 0xAB);
        let run = run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, Vec::new(), |_| {
            BatchControl::Continue
        });
        assert!(run.outcome.precision_met);
        let mut boundaries = 0usize;
        let redone =
            run_cover_trials_adaptive_resumable(&g, &cobra, 0, &plan, run.times.clone(), |_| {
                boundaries += 1;
                BatchControl::Continue
            });
        assert_eq!(boundaries, 0, "no batch should run on a done prior");
        assert_eq!(redone.times, run.times);
        assert_eq!(redone.outcome.summary.mean(), run.outcome.summary.mean());
    }

    #[test]
    fn adaptive_lanes_fully_censored_runs_to_cap() {
        // A 3-step budget cannot cover a 60-path: every lane censors,
        // the engine must run to the cap and report failure as a value.
        let g = classic::path(60).unwrap();
        let rule = StopRule::new(64, 128, 0.1);
        let plan = AdaptivePlan::new(rule, 16, 3, 3);
        let out = run_cover_trials_adaptive_lanes(&g, &SimpleWalk::new(), 0, &plan);
        assert!(!out.precision_met);
        assert_eq!(out.censored, 128);
        assert_eq!(out.summary.count(), 0);
    }
}
