//! Parallel Monte-Carlo trial execution.
//!
//! Trials fan out over rayon workers; each trial gets an independent,
//! deterministically derived RNG (see [`crate::seeds`]), so results are
//! bit-reproducible regardless of thread scheduling.

use crate::convergence::AdaptivePlan;
use crate::seeds::SeedSequence;
use crate::stats::{EmptySummary, Summary};
use cobra_core::{CoverDriver, HittingDriver, Process, TrialScratch, TypedProcess};
use cobra_graph::{Graph, NeighborSampler, Vertex};
use rayon::prelude::*;

/// How many trials to run and how long each may take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialPlan {
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round budget.
    pub max_steps: usize,
    /// Master seed; trial `i` uses seed `SeedSequence::new(master).seed_at(i)`.
    pub master_seed: u64,
}

impl TrialPlan {
    /// Convenience constructor.
    pub fn new(trials: usize, max_steps: usize, master_seed: u64) -> Self {
        assert!(trials >= 1, "need at least one trial");
        assert!(max_steps >= 1, "need a positive step budget");
        TrialPlan {
            trials,
            max_steps,
            master_seed,
        }
    }
}

/// Aggregated outcome of a batch of trials.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// Summary of the measured times over **completed** trials.
    pub summary: Summary,
    /// Trials that exhausted the budget without completing. Censored
    /// trials are *excluded* from `summary`; a nonzero count signals the
    /// budget should be raised.
    pub censored: usize,
}

impl TrialOutcome {
    /// Fraction of trials that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.summary.count() + self.censored;
        if total == 0 {
            0.0
        } else {
            self.summary.count() as f64 / total as f64
        }
    }

    /// The summary over completed trials, or `Err(EmptySummary)` when
    /// every trial was censored — use this instead of reading `summary`
    /// directly when a too-small budget is a reachable condition, so the
    /// failure is an explicit error rather than a downstream panic on
    /// `Summary::mean`.
    pub fn completed_summary(&self) -> Result<&Summary, EmptySummary> {
        if self.summary.count() == 0 {
            Err(EmptySummary)
        } else {
            Ok(&self.summary)
        }
    }
}

fn aggregate(times: Vec<Option<usize>>) -> TrialOutcome {
    let mut summary = Summary::new();
    let mut censored = 0usize;
    for t in times {
        match t {
            Some(steps) => summary.push(steps as f64),
            None => censored += 1,
        }
    }
    TrialOutcome { summary, censored }
}

/// Measure cover times of `process` from `start` over `plan.trials`
/// independent runs (parallel). Accepts `&dyn Process` as before, or any
/// concrete specification.
pub fn run_cover_trials<P: Process + ?Sized>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = seq.rng_at(i as u64);
            let res = CoverDriver::new(g)
                .run(&process, start, plan.max_steps, &mut rng)
                .expect("non-empty graph");
            res.completed.then_some(res.steps)
        })
        .collect();
    aggregate(times)
}

/// Fast-path variant of [`run_cover_trials`]: drives the process through
/// the batched scratch engine — a [`NeighborSampler`] built once per
/// call, one [`TrialScratch`] per rayon worker (via `map_init`), and
/// [`CoverDriver::run_typed_in`] per trial, so the steady-state trial
/// path allocates nothing and re-derives nothing. Per-trial seeding is
/// unchanged ([`SeedSequence::seed_at`]), so outcomes are bit-identical
/// to the dyn path and to any worker count. Prefer this whenever the
/// process type is statically known; keep [`run_cover_trials`] for
/// heterogeneous `&dyn Process` experiment tables.
pub fn run_cover_trials_typed<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver
                    .run_typed_in(process, &sampler, scratch, start, plan.max_steps, &mut rng)
                    .expect("non-empty graph");
                res.completed.then_some(res.steps)
            },
        )
        .collect();
    aggregate(times)
}

/// Measure hitting times `start → target` of `process` over
/// `plan.trials` independent runs (parallel).
pub fn run_hitting_trials<P: Process + ?Sized>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = seq.rng_at(i as u64);
            let res = HittingDriver::new(g).run(&process, start, target, plan.max_steps, &mut rng);
            res.hit.then_some(res.steps)
        })
        .collect();
    aggregate(times)
}

/// Fast-path variant of [`run_hitting_trials`] through the batched
/// scratch engine ([`HittingDriver::run_typed_in`] with a shared
/// [`NeighborSampler`] and per-worker [`TrialScratch`]); bit-identical
/// outcomes on the same plan at any worker count.
pub fn run_hitting_trials_typed<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &TrialPlan,
) -> TrialOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = HittingDriver::new(g);
    let times: Vec<Option<usize>> = (0..plan.trials)
        .into_par_iter()
        .map_init(
            || TrialScratch::new(g),
            |scratch, i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver.run_typed_in(
                    process,
                    &sampler,
                    scratch,
                    start,
                    target,
                    plan.max_steps,
                    &mut rng,
                );
                res.hit.then_some(res.steps)
            },
        )
        .collect();
    aggregate(times)
}

/// Outcome of an adaptive (sequentially stopped) batch of trials.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// Summary of the measured times over **completed** trials, exactly
    /// the prefix `0..trials_run()` of the plan's global trial stream.
    pub summary: Summary,
    /// Censored trials within that prefix (budget exhausted). Censored
    /// trials count against `rule.max_trials` but never enter `summary`,
    /// so a fully censored cell simply runs to the cap and reports
    /// `precision_met = false` instead of panicking.
    pub censored: usize,
    /// Whether the stop rule's precision target was met before the
    /// trial cap.
    pub precision_met: bool,
}

impl AdaptiveOutcome {
    /// Total trials consumed (completed + censored).
    pub fn trials_run(&self) -> usize {
        self.summary.count() + self.censored
    }

    /// Fraction of consumed trials that completed.
    pub fn completion_rate(&self) -> f64 {
        let total = self.trials_run();
        if total == 0 {
            0.0
        } else {
            self.summary.count() as f64 / total as f64
        }
    }

    /// The summary over completed trials, or `Err(EmptySummary)` when
    /// every trial was censored.
    pub fn completed_summary(&self) -> Result<&Summary, EmptySummary> {
        if self.summary.count() == 0 {
            Err(EmptySummary)
        } else {
            Ok(&self.summary)
        }
    }

    /// View as a fixed-plan [`TrialOutcome`] (drops the precision flag),
    /// for code that post-processes both kinds of run uniformly.
    pub fn to_trial_outcome(&self) -> TrialOutcome {
        TrialOutcome {
            summary: self.summary.clone(),
            censored: self.censored,
        }
    }
}

/// The adaptive batch engine shared by the cover and hitting runners.
///
/// Semantics: trials are conceptually consumed one at a time in global
/// index order, with the stop rule consulted after every trial — exactly
/// the serial [`crate::convergence::run_until_precise`] loop. Execution
/// runs `plan.batch` trials ahead speculatively in worker-parallel
/// batches (per-worker scratch via `map_init`, per-trial RNGs from the
/// global index), then replays the batch serially against the rule and
/// **discards** any trials past the stopping index. Because each trial's
/// outcome depends only on its global index, and the stopping index
/// depends only on the ordered prefix of outcomes, the result is
/// bit-identical across worker counts and batch sizes; batch size only
/// trades a little discarded speculation against synchronization.
fn run_adaptive_batches<S, Init, Trial>(
    plan: &AdaptivePlan,
    init: Init,
    trial: Trial,
) -> AdaptiveOutcome
where
    Init: Fn() -> S + Sync,
    Trial: Fn(&mut S, usize) -> Option<usize> + Sync,
{
    let rule = plan.rule;
    let mut summary = Summary::new();
    let mut censored = 0usize;
    let mut consumed = 0usize;
    let mut met = false;
    while consumed < rule.max_trials && !met {
        // Never launch past the cap, and never speculate past the first
        // point the rule could actually fire: the opening batch runs
        // exactly to `min_trials` (an easy cell then computes the
        // minimum and nothing more), later batches extend by
        // `plan.batch`. Speculation depth never changes results — only
        // how much computed-then-discarded work a stop can strand.
        let horizon = if consumed < rule.min_trials {
            rule.min_trials
        } else {
            consumed + plan.batch
        };
        let hi = horizon.min(rule.max_trials);
        let times: Vec<Option<usize>> = (consumed..hi)
            .into_par_iter()
            .map_init(&init, |scratch, i| trial(scratch, i))
            .collect();
        for t in times {
            consumed += 1;
            match t {
                Some(steps) => {
                    summary.push(steps as f64);
                    if rule.satisfied(&summary) {
                        met = true;
                        break;
                    }
                }
                None => censored += 1,
            }
        }
    }
    AdaptiveOutcome {
        summary,
        censored,
        precision_met: met,
    }
}

/// Adaptive variant of [`run_cover_trials_typed`]: runs cover trials in
/// worker-parallel batches on the scratch+sampler path until
/// `plan.rule` is satisfied (or its trial cap is hit). Trial `i` draws
/// the same RNG as in the fixed-plan runner, so an adaptive run that
/// consumes `n` trials reproduces the fixed runner's first `n` trials
/// bit-for-bit, at any worker count and batch size.
pub fn run_cover_trials_adaptive<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = CoverDriver::new(g);
    run_adaptive_batches(
        plan,
        || TrialScratch::new(g),
        |scratch, i| {
            let mut rng = seq.rng_at(i as u64);
            let res = driver
                .run_typed_in(process, &sampler, scratch, start, plan.max_steps, &mut rng)
                .expect("non-empty graph");
            res.completed.then_some(res.steps)
        },
    )
}

/// Adaptive variant of [`run_hitting_trials_typed`]; same engine and
/// seeding invariants as [`run_cover_trials_adaptive`].
pub fn run_hitting_trials_adaptive<P: TypedProcess + Sync>(
    g: &Graph,
    process: &P,
    start: Vertex,
    target: Vertex,
    plan: &AdaptivePlan,
) -> AdaptiveOutcome {
    let seq = SeedSequence::new(plan.master_seed);
    let sampler = NeighborSampler::new(g);
    let driver = HittingDriver::new(g);
    run_adaptive_batches(
        plan,
        || TrialScratch::new(g),
        |scratch, i| {
            let mut rng = seq.rng_at(i as u64);
            let res = driver.run_typed_in(
                process,
                &sampler,
                scratch,
                start,
                target,
                plan.max_steps,
                &mut rng,
            );
            res.hit.then_some(res.steps)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::StopRule;
    use cobra_core::{CobraWalk, SimpleWalk};
    use cobra_graph::generators::classic;

    #[test]
    fn adaptive_prefix_matches_fixed_runner_bitwise() {
        // An adaptive run that consumes n trials must reproduce the fixed
        // runner's first n trials exactly — same seeds, same values.
        let g = classic::cycle(24).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(8, 200, 0.05);
        let plan = AdaptivePlan::new(rule, 16, 100_000, 77);
        let out = run_cover_trials_adaptive(&g, &cobra, 0, &plan);
        assert!(out.precision_met);
        let n = out.trials_run();
        assert!((rule.min_trials..=rule.max_trials).contains(&n));
        let fixed = run_cover_trials_typed(&g, &cobra, 0, &TrialPlan::new(n, 100_000, 77));
        assert_eq!(out.summary.count(), fixed.summary.count());
        assert_eq!(out.censored, fixed.censored);
        assert_eq!(out.summary.mean(), fixed.summary.mean());
        assert_eq!(out.summary.median(), fixed.summary.median());
        assert_eq!(out.summary.min(), fixed.summary.min());
        assert_eq!(out.summary.max(), fixed.summary.max());
    }

    #[test]
    fn adaptive_stop_matches_serial_reference() {
        // The engine's stopping index must equal the serial loop's:
        // replay the same per-trial outcomes through run_until_precise.
        let g = classic::complete(16).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(6, 500, 0.04);
        for batch in [1usize, 7, 64] {
            let plan = AdaptivePlan::new(rule, batch, 10_000, 0xAB);
            let out = run_cover_trials_adaptive(&g, &cobra, 0, &plan);
            assert!(out.precision_met);
            // Serial oracle: feed the same trial values (complete graph
            // cover always completes) one at a time.
            let seq = SeedSequence::new(plan.master_seed);
            let driver = CoverDriver::new(&g);
            let (oracle, ok) = crate::convergence::run_until_precise(&rule, |i| {
                let mut rng = seq.rng_at(i as u64);
                let res = driver
                    .run_typed(&cobra, 0, plan.max_steps, &mut rng)
                    .unwrap();
                assert!(res.completed);
                res.steps as f64
            });
            assert!(ok);
            assert_eq!(out.summary.count(), oracle.count(), "batch {batch}");
            assert_eq!(out.summary.mean(), oracle.mean(), "batch {batch}");
        }
    }

    #[test]
    fn adaptive_hitting_runs_and_meets_precision() {
        let g = classic::complete(8).unwrap();
        let cobra = CobraWalk::standard();
        let rule = StopRule::new(10, 2000, 0.05);
        let plan = AdaptivePlan::new(rule, 32, 10_000, 5);
        let out = run_hitting_trials_adaptive(&g, &cobra, 0, 3, &plan);
        assert!(out.precision_met);
        assert_eq!(out.censored, 0);
        assert!(out.summary.mean() > 0.0);
        assert!(out.trials_run() <= rule.max_trials);
    }

    #[test]
    fn adaptive_fully_censored_cell_reports_not_met() {
        // A 5-step budget cannot cover a 60-path: every trial censors.
        // The engine must run to the trial cap and report failure as a
        // value, not a panic.
        let g = classic::path(60).unwrap();
        let rule = StopRule::new(4, 24, 0.1);
        let plan = AdaptivePlan::new(rule, 10, 5, 3);
        let out = run_cover_trials_adaptive(&g, &SimpleWalk::new(), 0, &plan);
        assert!(!out.precision_met);
        assert_eq!(out.censored, 24);
        assert_eq!(out.summary.count(), 0);
        assert_eq!(out.completion_rate(), 0.0);
        assert!(matches!(out.completed_summary(), Err(EmptySummary)));
    }

    #[test]
    fn adaptive_outcome_converts_to_trial_outcome() {
        let g = classic::complete(10).unwrap();
        let plan = AdaptivePlan::new(StopRule::new(4, 50, 0.2), 8, 1000, 9);
        let out = run_cover_trials_adaptive(&g, &CobraWalk::standard(), 0, &plan);
        let as_fixed = out.to_trial_outcome();
        assert_eq!(as_fixed.summary.count(), out.summary.count());
        assert_eq!(as_fixed.censored, out.censored);
        assert_eq!(as_fixed.completion_rate(), out.completion_rate());
    }

    #[test]
    fn cover_trials_complete_on_small_graph() {
        let g = classic::complete(12).unwrap();
        let plan = TrialPlan::new(40, 10_000, 1);
        let out = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        assert_eq!(out.censored, 0);
        assert_eq!(out.summary.count(), 40);
        assert!(out.summary.mean() >= 4.0, "cannot cover K12 in < 4 rounds");
        assert!((out.completion_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn results_are_reproducible() {
        let g = classic::cycle(20).unwrap();
        let plan = TrialPlan::new(25, 100_000, 7);
        let a = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        let b = run_cover_trials(&g, &CobraWalk::standard(), 0, &plan);
        assert_eq!(a.summary.count(), b.summary.count());
        assert!((a.summary.mean() - b.summary.mean()).abs() < 1e-12);
        assert_eq!(a.summary.median(), b.summary.median());
    }

    #[test]
    fn different_seeds_differ() {
        let g = classic::cycle(20).unwrap();
        let a = run_cover_trials(
            &g,
            &CobraWalk::standard(),
            0,
            &TrialPlan::new(25, 100_000, 1),
        );
        let b = run_cover_trials(
            &g,
            &CobraWalk::standard(),
            0,
            &TrialPlan::new(25, 100_000, 2),
        );
        assert_ne!(a.summary.mean(), b.summary.mean());
    }

    #[test]
    fn censoring_is_reported() {
        let g = classic::path(60).unwrap();
        // 10 steps cannot cover a 60-path.
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &TrialPlan::new(10, 10, 3));
        assert_eq!(out.censored, 10);
        assert_eq!(out.summary.count(), 0);
        assert_eq!(out.completion_rate(), 0.0);
    }

    #[test]
    fn all_censored_is_an_explicit_error_not_a_panic() {
        // A 10-step budget cannot cover a 60-path: every trial censors,
        // and the checked accessor reports that as a value.
        let g = classic::path(60).unwrap();
        let plan = TrialPlan::new(8, 10, 3);
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &plan);
        assert_eq!(out.censored, 8);
        assert!(matches!(
            out.completed_summary(),
            Err(crate::stats::EmptySummary)
        ));
        assert_eq!(out.summary.try_mean(), Err(crate::stats::EmptySummary));
    }

    #[test]
    fn censored_trials_never_pollute_summary() {
        // Budget near the median cover time → a mix of completed and
        // censored trials. The summary must contain exactly the completed
        // trials' values: rebuild them serially from the same per-trial
        // seeds and compare moments bitwise.
        let g = classic::cycle(16).unwrap();
        let plan = TrialPlan::new(60, 120, 11);
        let out = run_cover_trials(&g, &SimpleWalk::new(), 0, &plan);
        assert!(out.censored > 0, "expected some censored trials");
        assert!(out.summary.count() > 0, "expected some completed trials");
        assert_eq!(out.summary.count() + out.censored, plan.trials);

        let seq = SeedSequence::new(plan.master_seed);
        let mut completed = Vec::new();
        for i in 0..plan.trials {
            let mut rng = seq.rng_at(i as u64);
            let res = CoverDriver::new(&g)
                .run(&SimpleWalk::new(), 0, plan.max_steps, &mut rng)
                .unwrap();
            if res.completed {
                completed.push(res.steps as f64);
            }
        }
        let oracle = Summary::from_slice(&completed);
        assert_eq!(out.summary.count(), oracle.count());
        assert_eq!(out.summary.mean(), oracle.mean());
        assert_eq!(out.summary.median(), oracle.median());
        assert_eq!(out.summary.max(), oracle.max());
        assert!(out.summary.max() <= plan.max_steps as f64);
    }

    #[test]
    fn typed_trials_match_dyn_trials_bitwise() {
        let g = classic::complete(16).unwrap();
        let plan = TrialPlan::new(32, 10_000, 21);
        let cobra = CobraWalk::standard();
        let a = run_cover_trials(&g, &cobra, 0, &plan);
        let b = run_cover_trials_typed(&g, &cobra, 0, &plan);
        assert_eq!(a.censored, b.censored);
        assert_eq!(a.summary.count(), b.summary.count());
        assert_eq!(a.summary.mean(), b.summary.mean());
        assert_eq!(a.summary.median(), b.summary.median());
        let h_dyn = run_hitting_trials(&g, &cobra, 0, 9, &plan);
        let h_typed = run_hitting_trials_typed(&g, &cobra, 0, 9, &plan);
        assert_eq!(h_dyn.summary.mean(), h_typed.summary.mean());
        assert_eq!(h_dyn.censored, h_typed.censored);
    }

    #[test]
    fn hitting_trials_measure_adjacent_hop() {
        let g = classic::complete(5).unwrap();
        let plan = TrialPlan::new(200, 10_000, 4);
        let out = run_hitting_trials(&g, &SimpleWalk::new(), 0, 1, &plan);
        assert_eq!(out.censored, 0);
        // On K_5, hitting a fixed other vertex is geometric(1/4): mean 4.
        let mean = out.summary.mean();
        assert!((mean - 4.0).abs() < 1.0, "mean hitting {mean}");
    }

    #[test]
    fn hitting_start_equals_target() {
        let g = classic::cycle(6).unwrap();
        let out = run_hitting_trials(&g, &SimpleWalk::new(), 2, 2, &TrialPlan::new(5, 100, 5));
        assert_eq!(out.summary.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn plan_rejects_zero_trials() {
        TrialPlan::new(0, 10, 0);
    }
}
