//! Hand-rolled CSV and aligned-Markdown rendering of sweep tables.
//!
//! The experiment binaries print Markdown to stdout (human-readable, maps
//! onto the "tables" the paper would have had) and optionally write CSV
//! for downstream plotting. No serde: the format is trivial and the
//! writers are unit-tested.

use crate::sweep::SweepTable;

fn header_columns(t: &SweepTable) -> Vec<String> {
    let mut cols = vec![t.scale_name.clone()];
    if let Some(first) = t.rows.first() {
        for (name, _) in &first.context {
            cols.push(name.clone());
        }
    }
    cols.extend(
        ["mean", "stderr", "median", "p95", "trials", "censored"]
            .iter()
            .map(|s| s.to_string()),
    );
    cols
}

fn row_cells(t: &SweepTable, i: usize) -> Vec<String> {
    let r = &t.rows[i];
    let mut cells = vec![trim_float(r.scale)];
    for (_, v) in &r.context {
        cells.push(trim_float(*v));
    }
    cells.push(format!("{:.2}", r.mean));
    cells.push(format!("{:.2}", r.stderr));
    cells.push(format!("{:.2}", r.median));
    cells.push(format!("{:.2}", r.p95));
    cells.push(r.trials.to_string());
    cells.push(r.censored.to_string());
    cells
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Render a sweep table as CSV (header row + data rows, `\n` line ends).
pub fn render_csv(t: &SweepTable) -> String {
    let mut out = String::new();
    out.push_str(&header_columns(t).join(","));
    out.push('\n');
    for i in 0..t.rows.len() {
        out.push_str(&row_cells(t, i).join(","));
        out.push('\n');
    }
    out
}

/// Render a sweep table as aligned GitHub-flavored Markdown with the
/// series label as a bold caption line.
pub fn render_markdown(t: &SweepTable) -> String {
    let header = header_columns(t);
    let rows: Vec<Vec<String>> = (0..t.rows.len()).map(|i| row_cells(t, i)).collect();
    // Column widths.
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = format!("**{}**\n\n", t.label);
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    out.push_str(&fmt_row(&header));
    out.push('\n');
    let dashes: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    out.push_str(&format!("| {} |", dashes.join(" | ")));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Write CSV to a file path, creating parent directories as needed. The
/// write is atomic ([`crate::fsio::write_atomic`]): an interrupted run
/// leaves either the previous complete file or the new one, never a
/// truncated artifact.
pub fn write_csv(t: &SweepTable, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    crate::fsio::write_atomic_str(path, &render_csv(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use crate::sweep::SweepRow;

    fn sample_table() -> SweepTable {
        let mut t = SweepTable::new("cobra(k=2) on grid d=2", "n");
        let s = Summary::from_slice(&[10.0, 20.0, 30.0]);
        t.push(SweepRow::from_summary(8.0, &s, 0).with_context("phi", 0.5));
        t.push(SweepRow::from_summary(16.0, &s, 1).with_context("phi", 0.25));
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = render_csv(&sample_table());
        let lines: Vec<&str> = csv.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "n,phi,mean,stderr,median,p95,trials,censored");
        assert!(lines[1].starts_with("8,0.5000,20.00,"));
        assert!(lines[2].starts_with("16,0.2500,"));
        assert!(lines[2].ends_with(",3,1"));
    }

    #[test]
    fn csv_of_empty_table_is_header_only() {
        let t = SweepTable::new("empty", "n");
        let csv = render_csv(&t);
        assert_eq!(csv.trim_end(), "n,mean,stderr,median,p95,trials,censored");
    }

    #[test]
    fn markdown_is_aligned_and_captioned() {
        let md = render_markdown(&sample_table());
        assert!(md.starts_with("**cobra(k=2) on grid d=2**"));
        let lines: Vec<&str> = md.trim_end().split('\n').collect();
        // caption, blank, header, separator, 2 rows
        assert_eq!(lines.len(), 6);
        // All table lines have equal width.
        let widths: Vec<usize> = lines[2..].iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
        assert!(lines[2].contains("| phi |") || lines[2].contains("phi"));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(8.0), "8");
        assert_eq!(trim_float(0.25), "0.2500");
        assert_eq!(trim_float(-3.0), "-3");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("cobra_table_test");
        let path = dir.join("out.csv");
        write_csv(&sample_table(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("n,phi,"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
