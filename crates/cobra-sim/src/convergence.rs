//! Sequential stopping: run trials until the mean's confidence interval is
//! tight enough (or a budget is exhausted).
//!
//! Long sweeps waste most of their time over-sampling easy cells; the
//! adaptive runner keeps per-cell cost proportional to variance. The
//! serial loop lives here ([`run_until_precise`]); the batched parallel
//! engine that the sweeps actually run through is
//! [`crate::runner::run_cover_trials_adaptive`] and friends, which share
//! this module's [`StopRule`] and are defined to be bit-identical to the
//! serial loop's stopping decision.

use crate::stats::{z_for_level, Summary};

/// Stopping criteria for adaptive trial loops.
#[derive(Clone, Copy, Debug)]
pub struct StopRule {
    /// Minimum trials before the CI is consulted at all.
    pub min_trials: usize,
    /// Hard cap on trials.
    pub max_trials: usize,
    /// Target relative CI half-width: stop when
    /// `z·stderr / mean ≤ rel_precision`.
    pub rel_precision: f64,
    /// Confidence level of the CI the rule consults (0.90/0.95/0.99);
    /// `z` comes from the same [`z_for_level`] table as
    /// [`Summary::mean_ci`], so a rule at 0.99 really is stricter than
    /// one at 0.95 instead of silently using a hard-coded 1.96.
    pub confidence: f64,
}

impl StopRule {
    /// A rule with sanity checks, at the default 95% confidence level.
    pub fn new(min_trials: usize, max_trials: usize, rel_precision: f64) -> Self {
        assert!(min_trials >= 2, "need >= 2 trials for a stderr");
        assert!(max_trials >= min_trials, "max >= min");
        assert!(rel_precision > 0.0, "precision must be positive");
        StopRule {
            min_trials,
            max_trials,
            rel_precision,
            confidence: 0.95,
        }
    }

    /// Override the confidence level (builder style). Panics on levels
    /// outside the shared z-table (0.90/0.95/0.99).
    pub fn with_confidence(mut self, level: f64) -> Self {
        let _ = z_for_level(level); // validate eagerly
        self.confidence = level;
        self
    }

    /// Whether the summary satisfies the precision target.
    pub fn satisfied(&self, summary: &Summary) -> bool {
        if summary.count() < self.min_trials {
            return false;
        }
        let mean = summary.mean();
        if mean == 0.0 {
            // Degenerate: all-zero measurements are already exact.
            return summary.stddev() == 0.0;
        }
        summary.ci_half_width(self.confidence) / mean.abs() <= self.rel_precision
    }
}

/// How an adaptive batch of trials runs: the stopping rule, the batch
/// size between CI consultations, and the per-trial plan fields shared
/// with [`crate::runner::TrialPlan`].
///
/// The seeding invariant: trial `i` of the run — **globally indexed**,
/// regardless of which batch or worker executes it — draws its RNG from
/// `SeedSequence::new(master_seed).seed_at(i)`, and the stopping decision
/// is evaluated as if the CI were consulted after every trial in global
/// index order. Batches only decide how much work runs *speculatively*
/// in parallel before the next consultation; trials past the stopping
/// index are discarded. Results are therefore bit-identical across
/// worker counts and batch sizes, and to the serial
/// [`run_until_precise`] loop over the same per-trial outcomes.
#[derive(Clone, Copy, Debug)]
pub struct AdaptivePlan {
    /// When to stop.
    pub rule: StopRule,
    /// Trials launched in parallel between CI consultations.
    pub batch: usize,
    /// Per-trial round budget (trials that exhaust it are censored).
    pub max_steps: usize,
    /// Master seed; trial `i` uses `SeedSequence::new(master).seed_at(i)`.
    pub master_seed: u64,
}

impl AdaptivePlan {
    /// Convenience constructor.
    pub fn new(rule: StopRule, batch: usize, max_steps: usize, master_seed: u64) -> Self {
        assert!(batch >= 1, "need a positive batch size");
        assert!(max_steps >= 1, "need a positive step budget");
        AdaptivePlan {
            rule,
            batch,
            max_steps,
            master_seed,
        }
    }

    /// A plan with the same stopping semantics but a different step
    /// budget (sweep cells carry per-cell budgets).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        assert!(max_steps >= 1, "need a positive step budget");
        self.max_steps = max_steps;
        self
    }
}

/// Run `trial(i)` adaptively until the rule is satisfied or `max_trials`
/// is hit; returns the summary and whether the precision target was met.
///
/// Serial reference loop: the parallel engine in [`crate::runner`] is
/// pinned (tests/adaptive.rs) to stop at exactly the same trial index.
pub fn run_until_precise<F: FnMut(usize) -> f64>(rule: &StopRule, mut trial: F) -> (Summary, bool) {
    let mut summary = Summary::new();
    for i in 0..rule.max_trials {
        summary.push(trial(i));
        // `satisfied` already enforces `min_trials`, so no separate
        // warm-up guard here.
        if rule.satisfied(&summary) {
            return (summary, true);
        }
    }
    (summary, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn constant_data_stops_at_min() {
        let rule = StopRule::new(5, 1000, 0.01);
        let (summary, ok) = run_until_precise(&rule, |_| 42.0);
        assert!(ok);
        assert_eq!(summary.count(), 5);
        assert_eq!(summary.mean(), 42.0);
    }

    #[test]
    fn zero_data_is_satisfied() {
        let rule = StopRule::new(3, 100, 0.1);
        let (summary, ok) = run_until_precise(&rule, |_| 0.0);
        assert!(ok);
        assert_eq!(summary.count(), 3);
    }

    #[test]
    fn noisy_data_runs_longer_for_tighter_precision() {
        let run = |precision: f64| {
            let mut rng = StdRng::seed_from_u64(1);
            let rule = StopRule::new(5, 100_000, precision);
            let (s, ok) = run_until_precise(&rule, |_| 50.0 + 20.0 * (rng.random::<f64>() - 0.5));
            assert!(ok);
            s.count()
        };
        let loose = run(0.05);
        let tight = run(0.005);
        assert!(
            tight > loose,
            "tight {tight} should need more than loose {loose}"
        );
    }

    #[test]
    fn higher_confidence_needs_more_trials() {
        // The satellite bug this pins: with z hard-coded at 1.96, a 0.99
        // rule would stop exactly where a 0.95 rule does. Through the
        // shared z-table the 0.99 rule (z = 2.5758) must demand a tighter
        // stderr and therefore more trials on the same data stream.
        let run = |confidence: f64| {
            let mut rng = StdRng::seed_from_u64(77);
            let rule = StopRule::new(5, 100_000, 0.02).with_confidence(confidence);
            let (s, ok) = run_until_precise(&rule, |_| 10.0 + 4.0 * (rng.random::<f64>() - 0.5));
            assert!(ok);
            s.count()
        };
        let at90 = run(0.90);
        let at95 = run(0.95);
        let at99 = run(0.99);
        assert!(
            at90 <= at95 && at95 < at99,
            "trial counts must be monotone in confidence: {at90} / {at95} / {at99}"
        );
    }

    #[test]
    fn default_confidence_matches_mean_ci_width() {
        // One z-table: the rule's threshold quantity must be exactly the
        // half-width `mean_ci(0.95)` reports.
        let s = Summary::from_slice(&[3.0, 5.0, 7.0, 9.0, 11.0]);
        let (lo, hi) = s.mean_ci(0.95);
        let half = (hi - lo) / 2.0;
        assert!((s.ci_half_width(0.95) - half).abs() < 1e-12);
        let rule = StopRule::new(2, 10, half / s.mean() + 1e-12);
        assert!(rule.satisfied(&s));
        let stricter = StopRule::new(2, 10, half / s.mean() - 1e-9);
        assert!(!stricter.satisfied(&s));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_unknown_confidence() {
        let _ = StopRule::new(2, 10, 0.1).with_confidence(0.5);
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let mut rng = StdRng::seed_from_u64(2);
        // Extremely noisy data, tiny budget, very tight target.
        let rule = StopRule::new(2, 10, 1e-6);
        let (s, ok) = run_until_precise(&rule, |_| rng.random::<f64>() * 1000.0);
        assert!(!ok);
        assert_eq!(s.count(), 10);
    }

    #[test]
    #[should_panic(expected = "max >= min")]
    fn rejects_inverted_bounds() {
        StopRule::new(10, 5, 0.1);
    }

    #[test]
    #[should_panic(expected = "positive batch")]
    fn plan_rejects_zero_batch() {
        AdaptivePlan::new(StopRule::new(2, 10, 0.1), 0, 100, 1);
    }
}
