//! Sequential stopping: run trials until the mean's confidence interval is
//! tight enough (or a budget is exhausted).
//!
//! Long sweeps waste most of their time over-sampling easy cells; the
//! adaptive runner keeps per-cell cost proportional to variance.

use crate::stats::Summary;

/// Stopping criteria for adaptive trial loops.
#[derive(Clone, Copy, Debug)]
pub struct StopRule {
    /// Minimum trials before the CI is consulted at all.
    pub min_trials: usize,
    /// Hard cap on trials.
    pub max_trials: usize,
    /// Target relative CI half-width: stop when
    /// `z·stderr / mean ≤ rel_precision`.
    pub rel_precision: f64,
}

impl StopRule {
    /// A rule with sanity checks.
    pub fn new(min_trials: usize, max_trials: usize, rel_precision: f64) -> Self {
        assert!(min_trials >= 2, "need >= 2 trials for a stderr");
        assert!(max_trials >= min_trials, "max >= min");
        assert!(rel_precision > 0.0, "precision must be positive");
        StopRule {
            min_trials,
            max_trials,
            rel_precision,
        }
    }

    /// Whether the summary satisfies the precision target.
    pub fn satisfied(&self, summary: &Summary) -> bool {
        if summary.count() < self.min_trials {
            return false;
        }
        let mean = summary.mean();
        if mean == 0.0 {
            // Degenerate: all-zero measurements are already exact.
            return summary.stddev() == 0.0;
        }
        1.96 * summary.stderr() / mean.abs() <= self.rel_precision
    }
}

/// Run `trial(i)` adaptively until the rule is satisfied or `max_trials`
/// is hit; returns the summary and whether the precision target was met.
pub fn run_until_precise<F: FnMut(usize) -> f64>(rule: &StopRule, mut trial: F) -> (Summary, bool) {
    let mut summary = Summary::new();
    for i in 0..rule.max_trials {
        summary.push(trial(i));
        if i + 1 >= rule.min_trials && rule.satisfied(&summary) {
            return (summary, true);
        }
    }
    let ok = rule.satisfied(&summary);
    (summary, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn constant_data_stops_at_min() {
        let rule = StopRule::new(5, 1000, 0.01);
        let (summary, ok) = run_until_precise(&rule, |_| 42.0);
        assert!(ok);
        assert_eq!(summary.count(), 5);
        assert_eq!(summary.mean(), 42.0);
    }

    #[test]
    fn zero_data_is_satisfied() {
        let rule = StopRule::new(3, 100, 0.1);
        let (summary, ok) = run_until_precise(&rule, |_| 0.0);
        assert!(ok);
        assert_eq!(summary.count(), 3);
    }

    #[test]
    fn noisy_data_runs_longer_for_tighter_precision() {
        let run = |precision: f64| {
            let mut rng = StdRng::seed_from_u64(1);
            let rule = StopRule::new(5, 100_000, precision);
            let (s, ok) = run_until_precise(&rule, |_| 50.0 + 20.0 * (rng.random::<f64>() - 0.5));
            assert!(ok);
            s.count()
        };
        let loose = run(0.05);
        let tight = run(0.005);
        assert!(
            tight > loose,
            "tight {tight} should need more than loose {loose}"
        );
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let mut rng = StdRng::seed_from_u64(2);
        // Extremely noisy data, tiny budget, very tight target.
        let rule = StopRule::new(2, 10, 1e-6);
        let (s, ok) = run_until_precise(&rule, |_| rng.random::<f64>() * 1000.0);
        assert!(!ok);
        assert_eq!(s.count(), 10);
    }

    #[test]
    #[should_panic(expected = "max >= min")]
    fn rejects_inverted_bounds() {
        StopRule::new(10, 5, 0.1);
    }
}
