//! Summary statistics: Welford online moments, quantiles, and CIs.

/// Two-sided normal critical value `z` for a confidence level.
///
/// The single z-lookup shared by [`Summary::mean_ci`] and the sequential
/// stopping rule in [`crate::convergence`] — one table, so a CI printed
/// in a report and a CI consulted by an adaptive stopping decision can
/// never disagree about what "95%" means. Supported levels: 0.90, 0.95,
/// 0.99 (the ones the experiments use); anything else panics loudly
/// rather than silently interpolating.
pub fn z_for_level(level: f64) -> f64 {
    match level {
        l if (l - 0.90).abs() < 1e-9 => 1.6449,
        l if (l - 0.95).abs() < 1e-9 => 1.9600,
        l if (l - 0.99).abs() < 1e-9 => 2.5758,
        other => panic!("unsupported CI level {other}; use 0.90/0.95/0.99"),
    }
}

/// Linear-interpolation sample quantile of an already **sorted** slice,
/// `q ∈ [0, 1]` (the `R-7`/NumPy-default definition). Shared by
/// [`Summary::quantile`] and the bootstrap percentile CIs in
/// `cobra-analysis`, so every quantile in the workspace interpolates the
/// same way — index-truncation variants bias the two tails differently.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q in [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `D = sup_x |F_a(x) − F_b(x)|`
/// between the empirical CDFs of two samples (values must be finite).
///
/// This is the distribution-equivalence yardstick for engines whose
/// per-trial RNG streams legitimately differ — the bit-sliced lane
/// engine shares neighbor draws across lanes, so its cover times cannot
/// be compared to the serial engine's trial-by-trial, only in
/// distribution. Reject at level α when
/// `D > c(α) · sqrt((n + m) / (n · m))` with e.g. `c(0.001) ≈ 1.95`.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS distance of empty sample"
    );
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    // Finite-only samples (as Summary enforces on push) sort totally.
    xs.sort_by(|p, q| p.partial_cmp(q).expect("finite samples"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("finite samples"));
    let (n, m) = (xs.len() as f64, ys.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    // Merge walk over the pooled order statistics: at each distinct merge
    // point `v`, consume *every* copy of `v` from both samples (a gap
    // read mid-tie is not a CDF evaluation), then |i/n − j/m| is the CDF
    // gap just right of `v`. The supremum is attained at such points.
    while i < xs.len() && j < ys.len() {
        let v = xs[i].min(ys[j]);
        while i < xs.len() && xs[i] == v {
            i += 1;
        }
        while j < ys.len() && ys[j] == v {
            j += 1;
        }
        d = d.max((i as f64 / n - j as f64 / m).abs());
    }
    // Once one sample is exhausted the gap only shrinks toward 0.
    d
}

/// Error: a statistic was requested from a summary with zero observations
/// (e.g. every trial of a batch was censored). Surfacing this as a value
/// instead of a panic/NaN lets sweep code skip or report empty cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptySummary;

impl std::fmt::Display for EmptySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "summary contains no observations (all trials censored?)")
    }
}

impl std::error::Error for EmptySummary {}

/// Summary statistics over a sample of f64 measurements.
#[derive(Clone, Debug)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Raw values retained for quantiles. Experiments here run ≤ ~10⁵
    /// trials per cell, so retention is cheap and exact quantiles beat
    /// sketch approximations.
    values: Vec<f64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    /// Build a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation (Welford update).
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.values.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean. Panics when empty.
    pub fn mean(&self) -> f64 {
        assert!(self.count > 0, "mean of empty summary");
        self.mean
    }

    /// Sample mean as a checked result: `Err(EmptySummary)` on zero
    /// observations instead of a panic.
    pub fn try_mean(&self) -> Result<f64, EmptySummary> {
        if self.count == 0 {
            Err(EmptySummary)
        } else {
            Ok(self.mean)
        }
    }

    /// Unbiased sample variance (0 for a single observation).
    pub fn variance(&self) -> f64 {
        assert!(self.count > 0, "variance of empty summary");
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn stderr(&self) -> f64 {
        self.stddev() / (self.count as f64).sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0);
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0);
        self.max
    }

    /// Exact sample quantile with linear interpolation, `q ∈ [0, 1]`.
    ///
    /// Sorts a copy of the sample on every call; for several quantiles of
    /// the same summary use [`Summary::quantiles`], which sorts once.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty summary");
        quantile_sorted(&self.sorted_values(), q)
    }

    /// Several quantiles from one sort of the sample — what sweep-row
    /// construction (median + p95 per row) uses instead of paying the
    /// `O(n log n)` sort per quantile.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        assert!(self.count > 0, "quantile of empty summary");
        let sorted = self.sorted_values();
        qs.iter().map(|&q| quantile_sorted(&sorted, q)).collect()
    }

    /// The sample values in ascending order.
    fn sorted_values(&self) -> Vec<f64> {
        let mut sorted = self.values.clone();
        // Values are asserted finite on push, so total_cmp agrees with
        // the numeric order.
        sorted.sort_by(f64::total_cmp);
        sorted
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// level (supported levels: 0.90, 0.95, 0.99 — see [`z_for_level`]).
    pub fn mean_ci(&self, level: f64) -> (f64, f64) {
        let half = self.ci_half_width(level);
        (self.mean() - half, self.mean() + half)
    }

    /// Half-width of the normal-approximation CI at `level` — the
    /// quantity the sequential stopping rule compares against its
    /// precision target, and what sweep manifests record per cell.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        z_for_level(level) * self.stderr()
    }

    /// Merge another summary into this one (used to combine per-worker
    /// partials).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.values.extend_from_slice(&other.values);
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
        // Order must not matter.
        let b = [9.0, 1.5, 1.0, 4.0, 3.0];
        assert_eq!(ks_distance(&a, &b), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
        assert_eq!(ks_distance(&b, &a), 1.0);
    }

    #[test]
    fn ks_half_overlap_known_value() {
        // F_a and F_b differ by exactly 0.5 just below 3 (and nowhere
        // more): a has {1,2} extra on the left, b has {5,6} on the right.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        assert_eq!(ks_distance(&a, &b), 0.5);
    }

    #[test]
    fn ks_handles_unequal_sizes_and_ties() {
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0, 3.0, 3.0];
        let d = ks_distance(&a, &b);
        // F_a(1) = 2/3 vs F_b(1) = 1/6 → D = 1/2.
        assert!((d - 0.5).abs() < 1e-12, "D = {d}");
        assert_eq!(ks_distance(&b, &a), d);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn ks_rejects_empty_sample() {
        ks_distance(&[], &[1.0]);
    }

    #[test]
    fn basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.median(), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        Summary::new().mean();
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_slice(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert_eq!(s.median(), 25.0);
        assert!((s.quantile(0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_batch_matches_individual_calls() {
        let s = Summary::from_slice(&[9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0]);
        let qs = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0];
        let batch = s.quantiles(&qs);
        for (&q, &b) in qs.iter().zip(&batch) {
            assert_eq!(b, s.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn quantile_sorted_is_tail_symmetric() {
        // For a sample symmetric about c, the interpolated q and 1−q
        // quantiles must mirror exactly about c — the invariant the
        // bootstrap percentile CI relies on.
        let sorted = [-5.0, -2.0, -1.0, 1.0, 2.0, 5.0];
        for q in [0.025, 0.05, 0.1, 0.16, 0.3, 0.42] {
            let lo = quantile_sorted(&sorted, q);
            let hi = quantile_sorted(&sorted, 1.0 - q);
            assert!((lo + hi).abs() < 1e-12, "q = {q}: {lo} vs {hi}");
        }
    }

    #[test]
    fn z_table_is_monotone_and_pinned() {
        assert_eq!(z_for_level(0.90), 1.6449);
        assert_eq!(z_for_level(0.95), 1.9600);
        assert_eq!(z_for_level(0.99), 2.5758);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn z_table_rejects_odd_levels() {
        z_for_level(0.42);
    }

    #[test]
    fn ci_narrows_with_samples() {
        let few = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let many = Summary::from_slice(&(0..300).map(|i| (i % 3) as f64 + 1.0).collect::<Vec<_>>());
        let (lo_f, hi_f) = few.mean_ci(0.95);
        let (lo_m, hi_m) = many.mean_ci(0.95);
        assert!(hi_m - lo_m < hi_f - lo_f);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn ci_rejects_odd_levels() {
        Summary::from_slice(&[1.0, 2.0]).mean_ci(0.5);
    }

    #[test]
    fn merge_matches_concatenation() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 1.3).collect();
        let (a, b) = xs.split_at(4);
        let mut left = Summary::from_slice(a);
        let right = Summary::from_slice(b);
        left.merge(&right);
        let full = Summary::from_slice(&xs);
        assert_eq!(left.count(), full.count());
        assert!((left.mean() - full.mean()).abs() < 1e-12);
        assert!((left.variance() - full.variance()).abs() < 1e-12);
        assert_eq!(left.median(), full.median());
    }

    #[test]
    fn merge_with_empty() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&[5.0]));
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }
}
