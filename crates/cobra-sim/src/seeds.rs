//! Deterministic seed derivation.
//!
//! Every experiment derives per-trial RNG seeds from one master seed via
//! SplitMix64, so (a) results are exactly reproducible, (b) trials are
//! decorrelated, and (c) rayon workers never share RNG state.

/// A deterministic stream of well-mixed 64-bit seeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Start a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { state: master }
    }

    /// Next seed (SplitMix64 step — full-period, equidistributed).
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The `i`-th seed of the stream without advancing (random access, so
    /// parallel workers can index their own trial's seed directly).
    pub fn seed_at(&self, i: u64) -> u64 {
        let state = self
            .state
            .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i + 1));
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The ready-seeded RNG for trial `i` — the one construction every
    /// engine (fixed, adaptive, serial oracle) uses to turn a global
    /// trial index into an RNG, factored here so the engines cannot
    /// drift apart on it. The adaptive engine's bit-identical-across-
    /// batches guarantee rests on trial `i` drawing exactly this RNG no
    /// matter which batch or worker runs it.
    pub fn rng_at(&self, i: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(self.seed_at(i))
    }

    /// Derive an independent child sequence for a labelled sub-experiment.
    pub fn child(&self, label: u64) -> SeedSequence {
        let mut tmp = SeedSequence {
            state: self.state ^ label.rotate_left(17),
        };
        let s = tmp.next_seed();
        SeedSequence { state: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn random_access_matches_stream() {
        let base = SeedSequence::new(7);
        let mut stream = base;
        for i in 0..20u64 {
            assert_eq!(stream.next_seed(), base.seed_at(i), "index {i}");
        }
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).seed_at(0),
            SeedSequence::new(2).seed_at(0)
        );
    }

    #[test]
    fn seeds_are_well_spread() {
        // Crude avalanche check: consecutive seeds differ in many bits.
        let mut s = SeedSequence::new(0);
        let a = s.next_seed();
        let b = s.next_seed();
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} differing bits");
    }

    #[test]
    fn rng_at_matches_manual_construction() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let seq = SeedSequence::new(0xFEED);
        for i in [0u64, 1, 17, 4096] {
            let mut a = seq.rng_at(i);
            let mut b = StdRng::seed_from_u64(seq.seed_at(i));
            for _ in 0..4 {
                assert_eq!(a.random::<u64>(), b.random::<u64>(), "trial {i}");
            }
        }
    }

    #[test]
    fn children_are_independent() {
        let base = SeedSequence::new(99);
        let c1 = base.child(1);
        let c2 = base.child(2);
        assert_ne!(c1.seed_at(0), c2.seed_at(0));
        assert_ne!(c1.seed_at(0), base.seed_at(0));
    }

    #[test]
    fn pinned_derivation_values() {
        // Format-version pins: the determinism suite and every recorded
        // experiment assume exactly this derivation. If any of these
        // change, recorded results are silently invalidated — bump the
        // experiment format instead of editing the expected values.
        let base = SeedSequence::new(0xC0B7A);
        assert_eq!(base.seed_at(0), 0x160F13E6DC3A608A);
        assert_eq!(base.seed_at(1), 0x32EC93F521298653);
        let c7 = base.child(7);
        assert_eq!(c7.seed_at(0), 0x4D75AD3116BB2611);
        assert_eq!(c7.seed_at(1), 0x56940397C0E56F98);
        assert_eq!(base.child(8).seed_at(0), 0x3492E20D00B9293F);
        // Nested derivation (sub-sub-experiments) is pinned too.
        assert_eq!(c7.child(1).seed_at(0), 0x1EFD2DDD8C79C628);
    }

    #[test]
    fn no_collisions_across_10k_children() {
        // Each labelled child must open a distinct stream: collisions here
        // would correlate sub-experiments that believe they are
        // independent.
        let base = SeedSequence::new(0xC0B7A);
        let mut first_seeds = std::collections::HashSet::new();
        let mut states = std::collections::HashSet::new();
        for label in 0..10_000u64 {
            let child = base.child(label);
            assert!(
                states.insert(child),
                "duplicate child state at label {label}"
            );
            assert!(
                first_seeds.insert(child.seed_at(0)),
                "colliding first seed at label {label}"
            );
        }
    }

    #[test]
    fn child_streams_do_not_echo_parent() {
        // A child's early stream must not reproduce the parent's: overlap
        // would re-run the parent's trials inside the sub-experiment.
        let base = SeedSequence::new(12345);
        let parent_head: Vec<u64> = (0..64).map(|i| base.seed_at(i)).collect();
        for label in [0u64, 1, 2, 0xFFFF_FFFF_FFFF_FFFF] {
            let child = base.child(label);
            for i in 0..64 {
                assert!(
                    !parent_head.contains(&child.seed_at(i)),
                    "child({label}) seed {i} collides with the parent head"
                );
            }
        }
    }
}
