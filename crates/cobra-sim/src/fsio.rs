//! Crash-safe file output: atomic write-temp-fsync-rename.
//!
//! Every artifact a run persists (CSV tables, run manifests, adaptive
//! checkpoints, bench JSON) goes through [`write_atomic`], so an
//! interrupted run can never leave a truncated file behind — a later
//! `--resume` or CI artifact step sees either the previous complete
//! version or the new complete version, nothing in between.

use std::fs::File;
use std::io::{Error, ErrorKind, Write};
use std::path::Path;

/// Write `contents` to `path` atomically: write to a sibling `.tmp`
/// file, `fsync` it, then rename over the destination. On any error the
/// destination is untouched (a stale `.tmp` sibling may remain; it is
/// overwritten by the next attempt).
///
/// The temp file lives in the destination's directory so the rename
/// never crosses a filesystem boundary (cross-device renames are not
/// atomic — they decay to copy+unlink).
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        Error::new(
            ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(contents)?;
    // Durability before visibility: the rename must never publish a file
    // whose bytes are still in the page cache only.
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// [`write_atomic`] for string contents.
pub fn write_atomic_str(path: &Path, contents: &str) -> std::io::Result<()> {
    write_atomic(path, contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cobra-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let p = dir.join("out.json");
        write_atomic_str(&p, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"v\":1}");
        write_atomic_str(&p, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"v\":2}");
        // No temp residue after a successful write.
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_filename_writes_to_cwd_relative_path() {
        // A manifest path like "run.json" has no parent directory; the
        // temp sibling must still land next to it rather than erroring.
        let dir = temp_dir("bare");
        let p = dir.join("bare.txt");
        write_atomic(&p, b"x").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error_and_leaves_no_destination() {
        let dir = temp_dir("missing");
        let p = dir.join("no-such-subdir").join("out.json");
        assert!(write_atomic_str(&p, "x").is_err());
        assert!(!p.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directory_destination_is_an_error() {
        let dir = temp_dir("isdir");
        assert!(write_atomic_str(&dir, "x").is_err());
        // The failed rename leaves its temp sibling next to the target.
        let mut tmp = dir.as_os_str().to_os_string();
        tmp.push(".tmp");
        std::fs::remove_file(PathBuf::from(tmp)).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
