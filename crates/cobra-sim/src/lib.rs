//! # cobra-sim
//!
//! Monte-Carlo simulation engine for the cobra-walk experiments:
//!
//! * [`seeds`] — deterministic per-trial seed derivation (SplitMix64), so
//!   every experiment is exactly reproducible from one master seed and
//!   trials are independent across rayon workers;
//! * [`runner`] — parallel trial execution for cover/hitting
//!   measurements, including the bit-sliced 64-lane cover engine
//!   ([`runner::run_cover_trials_lanes`]) that small-graph cells route
//!   through automatically;
//! * [`stats`] — online summary statistics (Welford) with quantiles and
//!   normal-approximation confidence intervals;
//! * [`sweep`] — parameter sweeps producing result rows;
//! * [`table`] — CSV and aligned-Markdown writers for result tables
//!   (hand-rolled: no serde needed);
//! * [`convergence`] — run-until-CI-tight sequential stopping: the
//!   [`convergence::StopRule`] and [`convergence::AdaptivePlan`] behind
//!   the batched adaptive runners in [`runner`] and the adaptive sweeps
//!   in [`sweep`];
//! * [`fsio`] — atomic (temp + fsync + rename) artifact writes, so an
//!   interrupted run never leaves a truncated CSV/manifest/checkpoint.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convergence;
pub mod fsio;
pub mod runner;
pub mod seeds;
pub mod stats;
pub mod sweep;
pub mod table;

pub use convergence::{run_until_precise, AdaptivePlan, StopRule};
pub use fsio::{write_atomic, write_atomic_str};
pub use runner::{
    lane_cover_applies, replay_outcomes, run_cover_trials, run_cover_trials_adaptive,
    run_cover_trials_adaptive_auto, run_cover_trials_adaptive_auto_resumable,
    run_cover_trials_adaptive_lanes, run_cover_trials_adaptive_lanes_resumable,
    run_cover_trials_adaptive_resumable, run_cover_trials_auto, run_cover_trials_implicit,
    run_cover_trials_implicit_probed, run_cover_trials_lanes, run_cover_trials_lanes_probed,
    run_cover_trials_probed, run_cover_trials_typed, run_cover_trials_typed_probed,
    run_hitting_trials, run_hitting_trials_adaptive, run_hitting_trials_adaptive_resumable,
    run_hitting_trials_typed, AdaptiveOutcome, BatchControl, ResumableOutcome, TrialOutcome,
    TrialPlan, LANE_MAX_N,
};
pub use seeds::SeedSequence;
pub use stats::{ks_distance, quantile_sorted, z_for_level, EmptySummary, Summary};
pub use sweep::{
    cell_seed, run_cover_sweep, run_cover_sweep_cells, run_cover_sweep_cells_adaptive,
    AdaptiveCellReport, AdaptiveSweep, SweepCell, SweepRow, SweepTable,
};
pub use table::{render_csv, render_markdown};
