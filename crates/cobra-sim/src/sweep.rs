//! Parameter sweeps producing tabular results.
//!
//! Every experiment is a sweep: "for n in …, measure cover time of
//! process P on family F". [`SweepTable`] collects labelled rows of
//! `(scale, statistics…)` pairs that render straight into CSV/Markdown
//! (see [`crate::table`]) and feed the fitters in `cobra-analysis`.

use crate::stats::Summary;

/// One row of a sweep: a scale point plus measured statistics.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The swept scale (e.g. `n`, side length, depth).
    pub scale: f64,
    /// Extra context columns (e.g. measured conductance), name → value.
    pub context: Vec<(String, f64)>,
    /// Mean of the measured quantity.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile (the "w.h.p." side of the paper's claims).
    pub p95: f64,
    /// Number of completed trials.
    pub trials: usize,
    /// Number of censored (budget-exhausted) trials.
    pub censored: usize,
}

impl SweepRow {
    /// Build a row from a scale and a summary.
    pub fn from_summary(scale: f64, summary: &Summary, censored: usize) -> Self {
        SweepRow {
            scale,
            context: Vec::new(),
            mean: summary.mean(),
            stderr: summary.stderr(),
            median: summary.median(),
            p95: summary.quantile(0.95),
            trials: summary.count(),
            censored,
        }
    }

    /// Attach a named context value (builder style).
    pub fn with_context(mut self, name: &str, value: f64) -> Self {
        self.context.push((name.to_string(), value));
        self
    }
}

/// A labelled collection of sweep rows for one measured series.
#[derive(Clone, Debug)]
pub struct SweepTable {
    /// Series label (e.g. `"cobra(k=2) on grid d=2"`).
    pub label: String,
    /// Name of the scale column (e.g. `"n"`).
    pub scale_name: String,
    /// The rows, in sweep order.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// An empty table.
    pub fn new(label: impl Into<String>, scale_name: impl Into<String>) -> Self {
        SweepTable {
            label: label.into(),
            scale_name: scale_name.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: SweepRow) {
        self.rows.push(row);
    }

    /// The scale column.
    pub fn scales(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.scale).collect()
    }

    /// The mean column.
    pub fn means(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.mean).collect()
    }

    /// The p95 column.
    pub fn p95s(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.p95).collect()
    }

    /// Total censored trials across all rows.
    pub fn total_censored(&self) -> usize {
        self.rows.iter().map(|r| r.censored).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> Summary {
        Summary::from_slice(&[10.0, 12.0, 14.0, 16.0, 18.0])
    }

    #[test]
    fn row_from_summary() {
        let r = SweepRow::from_summary(100.0, &sample_summary(), 2);
        assert_eq!(r.scale, 100.0);
        assert_eq!(r.mean, 14.0);
        assert_eq!(r.median, 14.0);
        assert_eq!(r.trials, 5);
        assert_eq!(r.censored, 2);
        assert!(r.p95 >= 17.0);
    }

    #[test]
    fn row_context_builder() {
        let r = SweepRow::from_summary(10.0, &sample_summary(), 0)
            .with_context("phi", 0.25)
            .with_context("d", 3.0);
        assert_eq!(r.context.len(), 2);
        assert_eq!(r.context[0], ("phi".to_string(), 0.25));
    }

    #[test]
    fn table_columns() {
        let mut t = SweepTable::new("cobra on grid", "n");
        t.push(SweepRow::from_summary(10.0, &sample_summary(), 0));
        t.push(SweepRow::from_summary(20.0, &sample_summary(), 1));
        assert_eq!(t.scales(), vec![10.0, 20.0]);
        assert_eq!(t.means(), vec![14.0, 14.0]);
        assert_eq!(t.p95s().len(), 2);
        assert_eq!(t.total_censored(), 1);
        assert_eq!(t.label, "cobra on grid");
        assert_eq!(t.scale_name, "n");
    }
}
