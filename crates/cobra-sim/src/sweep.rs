//! Parameter sweeps producing tabular results.
//!
//! Every experiment is a sweep: "for n in …, measure cover time of
//! process P on family F". [`SweepTable`] collects labelled rows of
//! `(scale, statistics…)` pairs that render straight into CSV/Markdown
//! (see [`crate::table`]) and feed the fitters in `cobra-analysis`.

use crate::convergence::AdaptivePlan;
use crate::runner::{
    run_cover_trials_adaptive_auto, run_cover_trials_auto, AdaptiveOutcome, TrialPlan,
};
use crate::stats::{EmptySummary, Summary};
use cobra_core::TypedProcess;
use cobra_graph::{Graph, Vertex};

/// One row of a sweep: a scale point plus measured statistics.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The swept scale (e.g. `n`, side length, depth).
    pub scale: f64,
    /// Extra context columns (e.g. measured conductance), name → value.
    pub context: Vec<(String, f64)>,
    /// Mean of the measured quantity.
    pub mean: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile (the "w.h.p." side of the paper's claims).
    pub p95: f64,
    /// Number of completed trials.
    pub trials: usize,
    /// Number of censored (budget-exhausted) trials.
    pub censored: usize,
}

impl SweepRow {
    /// Build a row from a scale and a summary. Panics on an empty summary;
    /// use [`SweepRow::try_from_summary`] when total censoring is a
    /// reachable condition.
    pub fn from_summary(scale: f64, summary: &Summary, censored: usize) -> Self {
        SweepRow::try_from_summary(scale, summary, censored)
            .expect("SweepRow::from_summary on a summary with no completed trials")
    }

    /// Build a row from a scale and a summary, or `Err(EmptySummary)` when
    /// the summary holds no completed trials (e.g. the whole cell was
    /// censored by a too-small step budget).
    pub fn try_from_summary(
        scale: f64,
        summary: &Summary,
        censored: usize,
    ) -> Result<Self, EmptySummary> {
        summary.try_mean().map(|mean| {
            // One sort for both order statistics (`quantile` re-sorts the
            // sample per call, and sweeps build thousands of rows).
            let qs = summary.quantiles(&[0.5, 0.95]);
            SweepRow {
                scale,
                context: Vec::new(),
                mean,
                stderr: summary.stderr(),
                median: qs[0],
                p95: qs[1],
                trials: summary.count(),
                censored,
            }
        })
    }

    /// Attach a named context value (builder style).
    pub fn with_context(mut self, name: &str, value: f64) -> Self {
        self.context.push((name.to_string(), value));
        self
    }
}

/// A labelled collection of sweep rows for one measured series.
#[derive(Clone, Debug)]
pub struct SweepTable {
    /// Series label (e.g. `"cobra(k=2) on grid d=2"`).
    pub label: String,
    /// Name of the scale column (e.g. `"n"`).
    pub scale_name: String,
    /// The rows, in sweep order.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// An empty table.
    pub fn new(label: impl Into<String>, scale_name: impl Into<String>) -> Self {
        SweepTable {
            label: label.into(),
            scale_name: scale_name.into(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: SweepRow) {
        self.rows.push(row);
    }

    /// The scale column.
    pub fn scales(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.scale).collect()
    }

    /// The mean column.
    pub fn means(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.mean).collect()
    }

    /// The p95 column.
    pub fn p95s(&self) -> Vec<f64> {
        self.rows.iter().map(|r| r.p95).collect()
    }

    /// Total censored trials across all rows.
    pub fn total_censored(&self) -> usize {
        self.rows.iter().map(|r| r.censored).sum()
    }
}

/// The per-cell master seed of sweep cell `cell_idx` under a sweep
/// master seed: `SeedSequence::new(master).child(cell_idx).seed_at(0)`.
///
/// This is **the** derivation both sweep runners use; anything that
/// re-executes individual sweep cells out of band (the checkpoint/resume
/// orchestrator in cobra-bench) must call this helper rather than
/// re-deriving, so the two can never drift and a resumed cell replays
/// the exact trial stream of the original run.
pub fn cell_seed(master_seed: u64, cell_idx: usize) -> u64 {
    crate::seeds::SeedSequence::new(master_seed)
        .child(cell_idx as u64)
        .seed_at(0)
}

/// One cell of a cover sweep: a scale point, the graph to measure on, the
/// start vertex, and an optional per-cell step budget (experiments
/// routinely size the budget to the scale — e.g. `O(n)` for cobra on
/// grids, `O(n²)` for the simple-walk baseline — so a shared budget would
/// change each cell's censoring semantics).
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The swept scale recorded in the row.
    pub scale: f64,
    /// The graph for this cell.
    pub graph: Graph,
    /// Start vertex for every trial of the cell.
    pub start: Vertex,
    /// Per-cell step budget; `None` uses the plan's `max_steps`.
    pub max_steps: Option<usize>,
}

impl SweepCell {
    /// A cell using the sweep plan's shared step budget.
    pub fn new(scale: f64, graph: Graph, start: Vertex) -> Self {
        SweepCell {
            scale,
            graph,
            start,
            max_steps: None,
        }
    }

    /// Override the step budget for this cell (builder style).
    pub fn with_budget(mut self, max_steps: usize) -> Self {
        assert!(max_steps >= 1, "need a positive step budget");
        self.max_steps = Some(max_steps);
        self
    }
}

/// Run a cover-time sweep: one row per [`SweepCell`], each measured with
/// [`run_cover_trials_auto`] — the bit-sliced lane engine for small
/// graphs with lane-friendly processes, the batched scratch engine
/// otherwise — under a per-cell child seed of `plan.master_seed` (so
/// cells are decorrelated but the whole sweep is reproducible from one
/// master seed) and the cell's own step budget when it carries one. The
/// engine choice depends only on the cell shape and plan, never on
/// outcomes, so each cell stays bit-reproducible.
///
/// Returns `Err(EmptySummary)` if any cell completes zero trials — a
/// budget bug that would otherwise surface as a panic deep in the stats.
pub fn run_cover_sweep_cells<P: TypedProcess + Sync>(
    label: impl Into<String>,
    scale_name: impl Into<String>,
    cells: impl IntoIterator<Item = SweepCell>,
    process: &P,
    plan: &TrialPlan,
) -> Result<SweepTable, EmptySummary> {
    let mut table = SweepTable::new(label, scale_name);
    for (cell_idx, cell) in cells.into_iter().enumerate() {
        let cell_plan = TrialPlan {
            master_seed: cell_seed(plan.master_seed, cell_idx),
            max_steps: cell.max_steps.unwrap_or(plan.max_steps),
            ..*plan
        };
        let out = run_cover_trials_auto(&cell.graph, process, cell.start, &cell_plan);
        table.push(SweepRow::try_from_summary(
            cell.scale,
            &out.summary,
            out.censored,
        )?);
    }
    Ok(table)
}

/// Adaptive-stopping record for one sweep cell, alongside its
/// [`SweepRow`] — what per-run manifests persist so a sweep's cost and
/// precision are auditable after the fact.
#[derive(Clone, Debug)]
pub struct AdaptiveCellReport {
    /// The cell's scale (same value as the corresponding row).
    pub scale: f64,
    /// Trials consumed (completed + censored).
    pub trials_used: usize,
    /// Completed trials.
    pub completed: usize,
    /// Censored trials.
    pub censored: usize,
    /// Absolute CI half-width of the mean at the rule's confidence
    /// level (0 when the cell completed no trials).
    pub ci_half_width: f64,
    /// `ci_half_width / mean` — the quantity the stop rule targets
    /// (0 when the cell completed no trials).
    pub rel_half_width: f64,
    /// Whether the rule's precision target was met before the trial cap.
    pub precision_met: bool,
}

impl AdaptiveCellReport {
    /// Build the report from a cell's outcome under the plan's rule.
    pub fn from_outcome(scale: f64, out: &AdaptiveOutcome, confidence: f64) -> Self {
        let (half, rel) = match out.summary.try_mean() {
            Ok(mean) if mean != 0.0 => {
                let half = out.summary.ci_half_width(confidence);
                (half, half / mean.abs())
            }
            Ok(_) => (0.0, 0.0),
            Err(_) => (0.0, 0.0),
        };
        AdaptiveCellReport {
            scale,
            trials_used: out.trials_run(),
            completed: out.summary.count(),
            censored: out.censored,
            ci_half_width: half,
            rel_half_width: rel,
            precision_met: out.precision_met,
        }
    }
}

/// Result of an adaptive sweep: the usual table plus per-cell stopping
/// reports in the same order.
#[derive(Clone, Debug)]
pub struct AdaptiveSweep {
    /// One row per cell, as in the fixed-trial sweep.
    pub table: SweepTable,
    /// One stopping report per cell, aligned with `table.rows`.
    pub reports: Vec<AdaptiveCellReport>,
}

impl AdaptiveSweep {
    /// Total trials consumed across all cells.
    pub fn total_trials(&self) -> usize {
        self.reports.iter().map(|r| r.trials_used).sum()
    }

    /// Whether every cell met the precision target.
    pub fn all_precise(&self) -> bool {
        self.reports.iter().all(|r| r.precision_met)
    }
}

/// Adaptive-stopping variant of [`run_cover_sweep_cells`]: each cell
/// runs [`run_cover_trials_adaptive_auto`] under a per-cell child seed
/// of `plan.master_seed` (same derivation as the fixed sweep) and the
/// cell's own step budget when it carries one. Small lane-friendly cells
/// route through the 64-lane engine (eligibility keys on the rule's
/// `max_trials`, never on consumed trials). Results are bit-identical
/// across worker counts and batch sizes (both engines' invariant), and
/// per-cell cost adapts to per-cell variance — easy cells stop at
/// `rule.min_trials`, hard cells run until the CI is tight or the cap
/// is hit.
///
/// Returns `Err(EmptySummary)` if any cell completes zero trials — a
/// budget bug, as in the fixed sweep. A cell that merely fails to reach
/// the precision target is *not* an error; it is reported via its
/// [`AdaptiveCellReport::precision_met`] flag.
pub fn run_cover_sweep_cells_adaptive<P: TypedProcess + Sync>(
    label: impl Into<String>,
    scale_name: impl Into<String>,
    cells: impl IntoIterator<Item = SweepCell>,
    process: &P,
    plan: &AdaptivePlan,
) -> Result<AdaptiveSweep, EmptySummary> {
    let mut table = SweepTable::new(label, scale_name);
    let mut reports = Vec::new();
    for (cell_idx, cell) in cells.into_iter().enumerate() {
        let cell_plan = AdaptivePlan {
            master_seed: cell_seed(plan.master_seed, cell_idx),
            max_steps: cell.max_steps.unwrap_or(plan.max_steps),
            ..*plan
        };
        let out = run_cover_trials_adaptive_auto(&cell.graph, process, cell.start, &cell_plan);
        reports.push(AdaptiveCellReport::from_outcome(
            cell.scale,
            &out,
            plan.rule.confidence,
        ));
        table.push(SweepRow::try_from_summary(
            cell.scale,
            &out.summary,
            out.censored,
        )?);
    }
    Ok(AdaptiveSweep { table, reports })
}

/// [`run_cover_sweep_cells`] for sweeps whose cells all share the plan's
/// step budget, taking plain `(scale, graph, start)` tuples.
pub fn run_cover_sweep<P: TypedProcess + Sync>(
    label: impl Into<String>,
    scale_name: impl Into<String>,
    cells: impl IntoIterator<Item = (f64, Graph, Vertex)>,
    process: &P,
    plan: &TrialPlan,
) -> Result<SweepTable, EmptySummary> {
    run_cover_sweep_cells(
        label,
        scale_name,
        cells
            .into_iter()
            .map(|(scale, graph, start)| SweepCell::new(scale, graph, start)),
        process,
        plan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> Summary {
        Summary::from_slice(&[10.0, 12.0, 14.0, 16.0, 18.0])
    }

    #[test]
    fn row_from_summary() {
        let r = SweepRow::from_summary(100.0, &sample_summary(), 2);
        assert_eq!(r.scale, 100.0);
        assert_eq!(r.mean, 14.0);
        assert_eq!(r.median, 14.0);
        assert_eq!(r.trials, 5);
        assert_eq!(r.censored, 2);
        assert!(r.p95 >= 17.0);
    }

    #[test]
    fn row_context_builder() {
        let r = SweepRow::from_summary(10.0, &sample_summary(), 0)
            .with_context("phi", 0.25)
            .with_context("d", 3.0);
        assert_eq!(r.context.len(), 2);
        assert_eq!(r.context[0], ("phi".to_string(), 0.25));
    }

    #[test]
    fn try_from_summary_reports_empty_cells() {
        let err = SweepRow::try_from_summary(10.0, &Summary::new(), 5);
        assert_eq!(err.unwrap_err(), EmptySummary);
        let ok = SweepRow::try_from_summary(10.0, &sample_summary(), 1).unwrap();
        assert_eq!(ok.trials, 5);
    }

    #[test]
    fn cover_sweep_produces_one_row_per_cell() {
        use cobra_core::CobraWalk;
        use cobra_graph::generators::classic;
        let cells = [8usize, 12, 16].map(|n| (n as f64, classic::cycle(n).unwrap(), 0u32));
        let plan = TrialPlan::new(10, 100_000, 7);
        let t =
            run_cover_sweep("cobra on cycle", "n", cells, &CobraWalk::standard(), &plan).unwrap();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.scales(), vec![8.0, 12.0, 16.0]);
        assert_eq!(t.total_censored(), 0);
        assert!(t.means().iter().all(|&m| m > 0.0));
    }

    #[test]
    fn per_cell_budgets_override_the_plan() {
        use cobra_core::SimpleWalk;
        use cobra_graph::generators::classic;
        // Plan budget is generous, but the cell's own 3-step budget must
        // win: a 50-path cannot be covered in 3 steps, so the cell fully
        // censors and the sweep errors.
        let cells = [SweepCell::new(50.0, classic::path(50).unwrap(), 0u32).with_budget(3)];
        let plan = TrialPlan::new(5, 1_000_000, 1);
        let err = run_cover_sweep_cells("rw on path", "n", cells, &SimpleWalk::new(), &plan);
        assert_eq!(err.unwrap_err(), EmptySummary);
        // Without the override, the generous plan budget completes it.
        let cells = [SweepCell::new(50.0, classic::path(50).unwrap(), 0u32)];
        let ok =
            run_cover_sweep_cells("rw on path", "n", cells, &SimpleWalk::new(), &plan).unwrap();
        assert_eq!(ok.rows.len(), 1);
        assert_eq!(ok.rows[0].censored, 0);
    }

    #[test]
    #[should_panic(expected = "positive step budget")]
    fn cell_budget_rejects_zero() {
        use cobra_graph::generators::classic;
        let _ = SweepCell::new(8.0, classic::cycle(8).unwrap(), 0u32).with_budget(0);
    }

    #[test]
    fn cover_sweep_surfaces_budget_starvation_as_error() {
        use cobra_core::SimpleWalk;
        use cobra_graph::generators::classic;
        // 3 steps cannot cover a 50-path: the sweep must error, not panic.
        let cells = [(50.0, classic::path(50).unwrap(), 0u32)];
        let plan = TrialPlan::new(5, 3, 1);
        let err = run_cover_sweep("rw on path", "n", cells, &SimpleWalk::new(), &plan);
        assert_eq!(err.unwrap_err(), EmptySummary);
    }

    #[test]
    fn table_columns() {
        let mut t = SweepTable::new("cobra on grid", "n");
        t.push(SweepRow::from_summary(10.0, &sample_summary(), 0));
        t.push(SweepRow::from_summary(20.0, &sample_summary(), 1));
        assert_eq!(t.scales(), vec![10.0, 20.0]);
        assert_eq!(t.means(), vec![14.0, 14.0]);
        assert_eq!(t.p95s().len(), 2);
        assert_eq!(t.total_censored(), 1);
        assert_eq!(t.label, "cobra on grid");
        assert_eq!(t.scale_name, "n");
    }
}
