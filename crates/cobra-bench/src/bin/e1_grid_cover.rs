//! **E1 — Lemma 2 / Theorem 3:** the 2-cobra walk covers `[0,n]^d` in
//! O(n) steps (constants depending on d), versus Θ̃(n²) for the simple
//! random walk on `d ∈ {1, 2}`.
//!
//! Sweep the side extent `n` for `d ∈ {1, 2, 3}`, fit the growth exponent
//! of the mean cover time in `n`, and verify:
//!
//! * cobra exponent ≈ 1 (pass: < 1.30 with good R²);
//! * simple-walk exponent ≈ 2 (pass: > 1.70), so the separation is real;
//! * p95 tracks the mean (the paper's bounds are w.h.p.).

use cobra_bench::report::{banner, classify_and_report, emit_table, fit_and_report, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::{CobraWalk, SimpleWalk, TypedProcess};
use cobra_sim::sweep::{SweepCell, SweepTable};

/// Adaptive sweep through the orchestrator: one [`SweepCell`] per scale,
/// each carrying its own `budget_for(scale)` step budget, with per-cell
/// seeds derived from the sweep master and per-cell trial counts decided
/// by the run's stopping rule.
fn sweep_cover<P: TypedProcess + Sync>(
    orch: &mut Orchestrator,
    cfg: &ExpConfig,
    family: Family,
    process: &P,
    scales: &[usize],
    budget_for: impl Fn(usize) -> usize,
    label: &str,
) -> SweepTable {
    // Lazy cell iterator: only one cell's graph is alive at a time, as in
    // the pre-sweep loop.
    let cells = scales.iter().enumerate().map(|(i, &scale)| {
        let g = family.build(scale, stage_seed(cfg.seed, "e1", "graphs", i as u64));
        let start = family.adversarial_start(&g);
        SweepCell::new(scale as f64, g, start).with_budget(budget_for(scale))
    });
    orch.cover_sweep(label, "n", cells, process, cfg.seed)
        .expect("a sweep cell completed zero trials — raise the step budget")
}

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E1",
        "2-cobra cover time on [0,n]^d is O(n) (Theorem 3); simple RW is ~n² on d ≤ 2",
        &cfg,
    );
    let spec = ExperimentSpec::from_config(
        "e1",
        "2-cobra cover on [0,n]^d is O(n); simple RW ~n² on d ≤ 2",
        &cfg,
    );
    let mut orch = Orchestrator::for_run(spec, &cfg);

    let cobra = CobraWalk::standard();
    let rw = SimpleWalk::new();

    // --- d = 1 ---------------------------------------------------------
    let sides1 = cfg.scale(
        vec![64usize, 96, 128, 192, 256],
        vec![256, 384, 512, 768, 1024, 1536],
    );
    let t_cobra1 = sweep_cover(
        &mut orch,
        &cfg,
        Family::Grid { d: 1 },
        &cobra,
        &sides1,
        |n| 4000 + 400 * n,
        "cobra(k=2) on grid d=1",
    );
    emit_table(&cfg, &t_cobra1, "e1_cobra_d1");
    let fit_c1 = fit_and_report(&t_cobra1);
    classify_and_report(&t_cobra1);

    let rw_sides1 = cfg.scale(vec![32usize, 48, 64, 96, 128], vec![64, 96, 128, 192, 256]);
    let t_rw1 = sweep_cover(
        &mut orch,
        &cfg,
        Family::Grid { d: 1 },
        &rw,
        &rw_sides1,
        |n| 200 * n * n + 10_000,
        "simple-rw on grid d=1",
    );
    emit_table(&cfg, &t_rw1, "e1_rw_d1");
    let fit_r1 = fit_and_report(&t_rw1);

    // --- d = 2 ---------------------------------------------------------
    let sides2 = cfg.scale(vec![8usize, 12, 16, 24, 32], vec![16, 24, 32, 48, 64, 96]);
    let t_cobra2 = sweep_cover(
        &mut orch,
        &cfg,
        Family::Grid { d: 2 },
        &cobra,
        &sides2,
        |n| 4000 + 500 * n,
        "cobra(k=2) on grid d=2",
    );
    emit_table(&cfg, &t_cobra2, "e1_cobra_d2");
    let fit_c2 = fit_and_report(&t_cobra2);
    classify_and_report(&t_cobra2);

    let rw_sides2 = cfg.scale(vec![6usize, 8, 12, 16, 20], vec![8, 12, 16, 24, 32]);
    let t_rw2 = sweep_cover(
        &mut orch,
        &cfg,
        Family::Grid { d: 2 },
        &rw,
        &rw_sides2,
        |n| 2000 * n * n + 50_000,
        "simple-rw on grid d=2",
    );
    emit_table(&cfg, &t_rw2, "e1_rw_d2");
    let fit_r2 = fit_and_report(&t_rw2);

    // --- d = 3 (cobra only; RW is hopeless at useful sizes) ------------
    let sides3 = cfg.scale(vec![4usize, 5, 6, 8, 10], vec![6, 8, 10, 12, 16, 20]);
    let t_cobra3 = sweep_cover(
        &mut orch,
        &cfg,
        Family::Grid { d: 3 },
        &cobra,
        &sides3,
        |n| 4000 + 800 * n,
        "cobra(k=2) on grid d=3",
    );
    emit_table(&cfg, &t_cobra3, "e1_cobra_d3");
    let fit_c3 = fit_and_report(&t_cobra3);
    classify_and_report(&t_cobra3);

    // --- Verdicts ------------------------------------------------------
    println!();
    orch.finish(&cfg);
    println!();
    verdict(
        "Theorem 3 (d=1): cobra cover exponent ≈ 1",
        fit_c1.slope < 1.30 && fit_c1.r_squared > 0.9,
        &format!("exponent {:.3}, R² {:.3}", fit_c1.slope, fit_c1.r_squared),
    );
    verdict(
        "Theorem 3 (d=2): cobra cover exponent ≈ 1",
        fit_c2.slope < 1.30 && fit_c2.r_squared > 0.9,
        &format!("exponent {:.3}, R² {:.3}", fit_c2.slope, fit_c2.r_squared),
    );
    verdict(
        "Theorem 3 (d=3): cobra cover exponent ≈ 1",
        fit_c3.slope < 1.40 && fit_c3.r_squared > 0.85,
        &format!("exponent {:.3}, R² {:.3}", fit_c3.slope, fit_c3.r_squared),
    );
    verdict(
        "baseline: simple-rw on d=1 grows ~ n²",
        fit_r1.slope > 1.70,
        &format!("exponent {:.3}", fit_r1.slope),
    );
    verdict(
        "baseline: simple-rw on d=2 grows ≳ n² (·polylog)",
        fit_r2.slope > 1.70,
        &format!("exponent {:.3}", fit_r2.slope),
    );
    let sep = fit_r2.slope - fit_c2.slope;
    verdict(
        "separation: cobra beats RW by ≈ one polynomial degree on d=2",
        sep > 0.5,
        &format!("exponent gap {sep:.3}"),
    );
}
