//! **Implicit-graph perf/memory baseline:** compares the CSR trial
//! engine against the arithmetic implicit path on representation pairs
//! where both exist, then pushes one giant implicit-only cover run and
//! asserts — with a byte-counting global allocator — that it never
//! materializes adjacency. Writes `BENCH_implicit.json`:
//!
//! * paired cells (`grid`, `hypercube`, `complete`): cover steps/second
//!   through `run_cover_trials_typed` (CSR + `NeighborSampler` table)
//!   vs `run_cover_trials_implicit` (no adjacency, draws computed
//!   arithmetically), after asserting the two streams are bit-identical
//!   on the CSR representation and across representations;
//! * a giant implicit-only cell (hypercube; CSR would need gigabytes of
//!   adjacency): steps/second through `run_cover_succinct` with a
//!   preallocated [`SuccinctCoverage`], total bytes allocated (hard
//!   budget: 256 MB), the CSR adjacency bytes the run *avoided*, and
//!   the process peak RSS (`VmHWM`).
//!
//! The paired cells are honest about the trade: the CSR table can
//! out-draw division-heavy implicit arithmetic per step — the implicit
//! path's win is O(1) memory and setup, which the giant cell and
//! `tests/implicit_scale.rs` pin. No speed gate, a hard memory gate.
//!
//! Usage: `bench_implicit [--quick] [--seed <u64>] [--out <path>]`
//! `--quick` is the CI smoke mode (smaller cells, same structure).

use cobra_bench::stages::stage_seed;
use cobra_core::{run_cover_succinct, CobraWalk, SuccinctCoverage};
use cobra_graph::generators::{classic, grid, hypercube};
use cobra_graph::{Graph, ImplicitComplete, ImplicitGraph, ImplicitGrid, ImplicitHypercube};
use cobra_sim::runner::{TrialOutcome, TrialPlan};
use cobra_sim::{run_cover_trials_implicit, run_cover_trials_typed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// System allocator wrapper counting every byte requested, so the
/// giant-cell "no adjacency was materialized" claim is an assertion
/// rather than a comment.
struct ByteCountingAllocator;

static BYTES_ALLOCATED: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the System allocator — every method
// forwards its arguments unchanged, so System's GlobalAlloc contract
// (layout validity, pointer provenance) is preserved verbatim; the
// atomic counter bump has no effect on allocation behavior.
unsafe impl GlobalAlloc for ByteCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract for `layout`.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(new_size, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` come straight from the
        // caller, who upholds GlobalAlloc's realloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching System alloc above.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: ByteCountingAllocator = ByteCountingAllocator;

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `(completed, censored, step_sum)` digest for cross-engine identity
/// checks and steps/second accounting (censored trials contribute their
/// full budget — they ran those steps too).
fn digest(out: &TrialOutcome, max_steps: usize) -> (usize, usize, f64) {
    let sum = out
        .summary
        .try_mean()
        .map(|m| m * out.summary.count() as f64)
        .unwrap_or(0.0);
    (
        out.summary.count(),
        out.censored,
        sum + (out.censored * max_steps) as f64,
    )
}

struct PairResult {
    name: String,
    n: usize,
    trials: usize,
    reps: usize,
    csr_steps_per_sec: f64,
    implicit_steps_per_sec: f64,
}

/// Time one CSR/implicit representation pair on a cover cell. Asserts
/// stream identity first: the implicit runner on the CSR graph must be
/// bit-identical to the typed runner, and the implicit family must
/// reproduce the same outcomes (its arithmetic adjacency is the same
/// graph in the same order).
fn time_pair<G: ImplicitGraph>(
    name: &str,
    csr: &Graph,
    implicit: &G,
    plan: &TrialPlan,
    warmup: usize,
    reps: usize,
) -> PairResult {
    let process = CobraWalk::standard();
    assert_eq!(csr.num_vertices(), implicit.num_vertices(), "{name}: n");

    let typed = digest(
        &run_cover_trials_typed(csr, &process, 0, plan),
        plan.max_steps,
    );
    let via_csr = digest(
        &run_cover_trials_implicit(csr, &process, 0, plan),
        plan.max_steps,
    );
    let via_implicit = digest(
        &run_cover_trials_implicit(implicit, &process, 0, plan),
        plan.max_steps,
    );
    assert_eq!(typed, via_csr, "{name}: implicit runner diverged on CSR");
    assert_eq!(typed, via_implicit, "{name}: implicit family diverged");

    let csr_steps_per_sec = {
        for _ in 0..warmup {
            black_box(run_cover_trials_typed(csr, &process, 0, plan));
        }
        let t = Instant::now();
        let mut steps = 0.0;
        for _ in 0..reps {
            let out = black_box(run_cover_trials_typed(csr, &process, 0, plan));
            steps += digest(&out, plan.max_steps).2;
        }
        steps / t.elapsed().as_secs_f64()
    };
    let implicit_steps_per_sec = {
        for _ in 0..warmup {
            black_box(run_cover_trials_implicit(implicit, &process, 0, plan));
        }
        let t = Instant::now();
        let mut steps = 0.0;
        for _ in 0..reps {
            let out = black_box(run_cover_trials_implicit(implicit, &process, 0, plan));
            steps += digest(&out, plan.max_steps).2;
        }
        steps / t.elapsed().as_secs_f64()
    };

    PairResult {
        name: name.to_string(),
        n: csr.num_vertices(),
        trials: plan.trials,
        reps,
        csr_steps_per_sec,
        implicit_steps_per_sec,
    }
}

struct GiantResult {
    dim: u32,
    n: usize,
    steps: usize,
    seconds: f64,
    steps_per_sec: f64,
    bytes_allocated: usize,
    csr_adjacency_bytes_avoided: usize,
    peak_rss_kb: Option<u64>,
}

/// The implicit-only giant cell: one 2-cobra cover run of `Q_dim`
/// through [`run_cover_succinct`], under the byte counter. Runs
/// single-threaded before any rayon pool exists, so the counter sees
/// only the run itself.
fn run_giant(dim: u32, seed: u64) -> GiantResult {
    let before = BYTES_ALLOCATED.load(Ordering::Relaxed);
    let g = ImplicitHypercube::new(dim).expect("dimension in range");
    let n = g.num_vertices();
    let mut covered = SuccinctCoverage::new(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let t = Instant::now();
    let res = run_cover_succinct(
        &g,
        &CobraWalk::standard(),
        &mut covered,
        0,
        10_000,
        &mut rng,
    )
    .expect("non-empty graph");
    let seconds = t.elapsed().as_secs_f64();
    let bytes_allocated = BYTES_ALLOCATED.load(Ordering::Relaxed) - before;

    assert!(
        res.completed,
        "2-cobra failed to cover Q{dim} in 10k rounds"
    );
    const BUDGET: usize = 256 << 20;
    assert!(
        bytes_allocated < BUDGET,
        "giant implicit run allocated {bytes_allocated} bytes (≥ {BUDGET}): \
         adjacency-sized memory crept into the no-materialization path"
    );

    GiantResult {
        dim,
        n,
        steps: res.steps,
        seconds,
        steps_per_sec: res.steps as f64 / seconds,
        bytes_allocated,
        csr_adjacency_bytes_avoided: n * dim as usize * std::mem::size_of::<u32>(),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn render_json(mode: &str, pairs: &[PairResult], giant: &GiantResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cobra-bench/implicit-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"pairs\": [\n");
    for (i, r) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"trials\": {}, \"reps\": {}, \
             \"csr_steps_per_sec\": {:.0}, \"implicit_steps_per_sec\": {:.0}, \
             \"implicit_over_csr\": {:.2}}}{}\n",
            r.name,
            r.n,
            r.trials,
            r.reps,
            r.csr_steps_per_sec,
            r.implicit_steps_per_sec,
            r.implicit_steps_per_sec / r.csr_steps_per_sec,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"giant\": {{\"family\": \"hypercube\", \"dim\": {}, \"n\": {}, \
         \"cover_steps\": {}, \"seconds\": {:.3}, \"steps_per_sec\": {:.1}, \
         \"bytes_allocated\": {}, \"csr_adjacency_bytes_avoided\": {}, \
         \"peak_rss_kb\": {}}}\n",
        giant.dim,
        giant.n,
        giant.steps,
        giant.seconds,
        giant.steps_per_sec,
        giant.bytes_allocated,
        giant.csr_adjacency_bytes_avoided,
        giant
            .peak_rss_kb
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string()),
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut seed = 0xC0B7Au64;
    let mut out_path = "BENCH_implicit.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("usage: bench_implicit [--quick] [--seed <u64>] [--out <path>]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let (warmup, reps, trials) = if quick { (1, 3, 8) } else { (2, 8, 32) };
    // Giant cell: Q24 (16.8M vertices, ~2.7 GB of avoided CSR
    // adjacency) in full mode; Q20 (1M) for CI smoke.
    let giant_dim: u32 = if quick { 20 } else { 24 };

    // Before any rayon pool exists: the single-threaded giant cell under
    // a clean byte counter.
    let giant = run_giant(giant_dim, stage_seed(seed, "bench-implicit", "giant", 0));
    println!(
        "giant: hypercube Q{} (n = {}) covered in {} rounds, {:.2}s, {:.1} MB allocated, \
         avoided {:.1} MB of CSR adjacency, peak RSS {} kB",
        giant.dim,
        giant.n,
        giant.steps,
        giant.seconds,
        giant.bytes_allocated as f64 / (1 << 20) as f64,
        giant.csr_adjacency_bytes_avoided as f64 / (1 << 20) as f64,
        giant.peak_rss_kb.unwrap_or(0),
    );

    let (grid_extent, cube_dim, complete_n) = if quick {
        (63, 12, 512)
    } else {
        (255, 16, 2048)
    };
    let plan = TrialPlan::new(trials, 1_000_000, seed);
    let pairs = vec![
        time_pair(
            &format!("grid_{0}x{0}", grid_extent + 1),
            &grid::grid(&[grid_extent, grid_extent]),
            &ImplicitGrid::new(&[grid_extent, grid_extent]).unwrap(),
            &plan,
            warmup,
            reps,
        ),
        time_pair(
            &format!("hypercube_{cube_dim}"),
            &hypercube::hypercube(cube_dim),
            &ImplicitHypercube::new(cube_dim).unwrap(),
            &plan,
            warmup,
            reps,
        ),
        time_pair(
            &format!("complete_{complete_n}"),
            &classic::complete(complete_n).unwrap(),
            &ImplicitComplete::new(complete_n).unwrap(),
            &plan,
            warmup,
            reps,
        ),
    ];

    for r in &pairs {
        println!(
            "{:16} n={:6} trials={:3}  csr {:12.0} steps/s  implicit {:12.0} steps/s  ratio {:4.2}",
            r.name,
            r.n,
            r.trials,
            r.csr_steps_per_sec,
            r.implicit_steps_per_sec,
            r.implicit_steps_per_sec / r.csr_steps_per_sec,
        );
    }

    let json = render_json(mode, &pairs, &giant);
    cobra_sim::write_atomic_str(std::path::Path::new(&out_path), &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
