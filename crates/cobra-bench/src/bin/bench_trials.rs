//! **Trial-engine perf baseline:** measures Monte-Carlo sweep throughput
//! (trials/second) on many-small-trials cells — the regime the paper's
//! Theorem 3 / Theorem 8 sweeps live in, where per-trial *setup* rather
//! than stepping dominates — and writes `BENCH_trials.json`, so every PR
//! leaves a throughput trajectory the next one has to beat:
//!
//! * `frozen` — a verbatim copy of the PR 2 typed runner: per-trial
//!   `spawn_typed` (two fresh frontiers + occupied vec), a fresh
//!   `CoverageMask`, recompute-per-draw neighbor sampling, plain
//!   `par_iter().map()`. This is the fixed reference the ISSUE-3 "≥ 1.5×
//!   on the headline cell" gate is measured against.
//! * `scratch` — the per-trial engine: per-worker `TrialScratch` via
//!   `map_init`, O(dirty) respawn/reset, and the per-graph
//!   `NeighborSampler` table.
//! * `lanes` — the bit-sliced 64-lane engine
//!   (`run_cover_trials_lanes`), timed on the small-`n` cover cells it
//!   is eligible for. Lane trials share neighbor draws, so they are
//!   compared to `frozen` *distributionally* (count conservation + mean
//!   tolerance), not bitwise; each cell's row records which engine the
//!   auto-router ships and the gate is on that engine's speedup.
//!
//! The frozen and scratch engines use identical per-trial seeds and are
//! **bit-for-bit identical** in outcome (asserted on every cell before
//! timing is trusted), so that comparison is pure engine overhead.
//!
//! Usage: `bench_trials [--quick] [--seed <u64>] [--out <path>]`
//! `--quick` is the CI smoke mode (fewer trials/reps, same cells).

use cobra_bench::Family;
use cobra_core::{CobraWalk, CoverDriver, HittingDriver, TypedProcess};
use cobra_sim::runner::{lane_cover_applies, TrialOutcome, TrialPlan};
use cobra_sim::{
    run_cover_trials_lanes, run_cover_trials_typed, run_hitting_trials_typed, SeedSequence,
};
use std::hint::black_box;
use std::time::Instant;

/// Frozen replica of the PR 2 typed trial runner (pre-scratch, pre-
/// sampler): allocates and zeroes all per-trial state inside every trial
/// and recomputes CSR slice bounds per draw. Deliberately *not* shared
/// with `cobra-sim`: it is a measurement artifact pinned to the old
/// engine's per-trial cost model, kept verbatim so the recorded speedups
/// keep meaning the same thing in later PRs.
mod frozen {
    use super::*;
    use cobra_graph::{Graph, Vertex};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rayon::prelude::*;

    fn aggregate(times: Vec<Option<usize>>) -> (usize, usize, f64) {
        let mut completed = 0usize;
        let mut censored = 0usize;
        let mut sum = 0.0f64;
        for t in times {
            match t {
                Some(steps) => {
                    completed += 1;
                    sum += steps as f64;
                }
                None => censored += 1,
            }
        }
        (completed, censored, sum)
    }

    /// PR 2 `run_cover_trials_typed`, verbatim modulo the lightweight
    /// aggregation (moments only — the benchmark compares sums, not
    /// quantiles, to keep the frozen side's non-engine work minimal).
    pub fn run_cover_trials<P: TypedProcess + Sync>(
        g: &Graph,
        process: &P,
        start: Vertex,
        plan: &TrialPlan,
    ) -> (usize, usize, f64) {
        let seq = SeedSequence::new(plan.master_seed);
        let times: Vec<Option<usize>> = (0..plan.trials)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seq.seed_at(i as u64));
                let res = CoverDriver::new(g)
                    .run_typed(process, start, plan.max_steps, &mut rng)
                    .expect("non-empty graph");
                res.completed.then_some(res.steps)
            })
            .collect();
        aggregate(times)
    }

    /// PR 2 `run_hitting_trials_typed`, verbatim modulo aggregation.
    pub fn run_hitting_trials<P: TypedProcess + Sync>(
        g: &Graph,
        process: &P,
        start: Vertex,
        target: Vertex,
        plan: &TrialPlan,
    ) -> (usize, usize, f64) {
        let seq = SeedSequence::new(plan.master_seed);
        let times: Vec<Option<usize>> = (0..plan.trials)
            .into_par_iter()
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seq.seed_at(i as u64));
                let res = HittingDriver::new(g).run_typed(
                    process,
                    start,
                    target,
                    plan.max_steps,
                    &mut rng,
                );
                res.hit.then_some(res.steps)
            })
            .collect();
        aggregate(times)
    }
}

/// What a cell measures.
#[derive(Clone, Copy)]
enum Measure {
    Cover,
    Hitting { target: u32 },
}

struct Cell {
    name: &'static str,
    g: cobra_graph::Graph,
    measure: Measure,
    trials: usize,
    max_steps: usize,
}

struct CellResult {
    name: &'static str,
    n: usize,
    trials: usize,
    reps: usize,
    frozen_tps: f64,
    scratch_tps: f64,
    /// Lane-engine throughput, present only on cells where the
    /// auto-router would pick the lane engine.
    lanes_tps: Option<f64>,
}

impl CellResult {
    /// Name of the engine the auto-router ships for this cell.
    fn engine(&self) -> &'static str {
        if self.lanes_tps.is_some() {
            "lanes"
        } else {
            "scratch"
        }
    }

    /// Speedup of the *shipping* engine over the frozen PR 2 runner —
    /// the quantity the gates are on.
    fn speedup(&self) -> f64 {
        self.lanes_tps.unwrap_or(self.scratch_tps) / self.frozen_tps
    }

    fn scratch_speedup(&self) -> f64 {
        self.scratch_tps / self.frozen_tps
    }
}

/// Reduce a [`TrialOutcome`] to the `(completed, censored, sum)` triple
/// the frozen side reports, for the bitwise cross-engine check. Uses the
/// checked mean so a fully-censored cell digests to a zero sum instead of
/// panicking before the labelled cross-engine asserts can fire.
fn digest(out: &TrialOutcome) -> (usize, usize, f64) {
    let sum = out
        .summary
        .try_mean()
        .map(|m| m * out.summary.count() as f64)
        .unwrap_or(0.0);
    (out.summary.count(), out.censored, sum)
}

fn time_cell(cell: &Cell, seed: u64, warmup: usize, reps: usize) -> CellResult {
    let plan = TrialPlan::new(cell.trials, cell.max_steps, seed);
    let process = CobraWalk::standard();
    let start = 0u32;

    // Cross-engine identity: both engines must produce the same trial
    // outcomes before their timings are comparable.
    let (frozen_digest, scratch_digest) = match cell.measure {
        Measure::Cover => (
            frozen::run_cover_trials(&cell.g, &process, start, &plan),
            digest(&run_cover_trials_typed(&cell.g, &process, start, &plan)),
        ),
        Measure::Hitting { target } => (
            frozen::run_hitting_trials(&cell.g, &process, start, target, &plan),
            digest(&run_hitting_trials_typed(
                &cell.g, &process, start, target, &plan,
            )),
        ),
    };
    assert_eq!(
        frozen_digest.0, scratch_digest.0,
        "{}: completed-trial counts diverged",
        cell.name
    );
    assert_eq!(
        frozen_digest.1, scratch_digest.1,
        "{}: censoring diverged",
        cell.name
    );
    let (fs, ss) = (frozen_digest.2, scratch_digest.2);
    assert!(
        (fs - ss).abs() <= 1e-9 * fs.abs().max(1.0),
        "{}: step sums diverged ({fs} vs {ss})",
        cell.name
    );

    let frozen_tps = {
        for _ in 0..warmup {
            black_box(match cell.measure {
                Measure::Cover => frozen::run_cover_trials(&cell.g, &process, start, &plan),
                Measure::Hitting { target } => {
                    frozen::run_hitting_trials(&cell.g, &process, start, target, &plan)
                }
            });
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(match cell.measure {
                Measure::Cover => frozen::run_cover_trials(&cell.g, &process, start, &plan),
                Measure::Hitting { target } => {
                    frozen::run_hitting_trials(&cell.g, &process, start, target, &plan)
                }
            });
        }
        (cell.trials * reps) as f64 / t.elapsed().as_secs_f64()
    };

    let scratch_tps = {
        for _ in 0..warmup {
            black_box(match cell.measure {
                Measure::Cover => digest(&run_cover_trials_typed(&cell.g, &process, start, &plan)),
                Measure::Hitting { target } => digest(&run_hitting_trials_typed(
                    &cell.g, &process, start, target, &plan,
                )),
            });
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(match cell.measure {
                Measure::Cover => digest(&run_cover_trials_typed(&cell.g, &process, start, &plan)),
                Measure::Hitting { target } => digest(&run_hitting_trials_typed(
                    &cell.g, &process, start, target, &plan,
                )),
            });
        }
        (cell.trials * reps) as f64 / t.elapsed().as_secs_f64()
    };

    // Lane engine on eligible cover cells: validate distributionally
    // (lane trials share draws, so bitwise identity to the serial stream
    // is impossible by construction — the statistical-equivalence tests
    // in tests/lanes.rs carry the KS-level check), then time it.
    let lanes_eligible = matches!(cell.measure, Measure::Cover)
        && lane_cover_applies(&cell.g, &process, plan.trials);
    let lanes_tps = lanes_eligible.then(|| {
        let out = run_cover_trials_lanes(&cell.g, &process, start, &plan);
        let (completed, censored, sum) = digest(&out);
        assert_eq!(
            completed + censored,
            cell.trials,
            "{}: lane engine lost trials",
            cell.name
        );
        assert_eq!(
            censored, frozen_digest.1,
            "{}: lane censoring diverged from frozen",
            cell.name
        );
        let frozen_mean = frozen_digest.2 / frozen_digest.0.max(1) as f64;
        let lane_mean = sum / completed.max(1) as f64;
        assert!(
            (lane_mean - frozen_mean).abs() <= 0.10 * frozen_mean.abs().max(1.0),
            "{}: lane mean {lane_mean:.2} vs frozen mean {frozen_mean:.2}",
            cell.name
        );
        for _ in 0..warmup {
            black_box(digest(&run_cover_trials_lanes(
                &cell.g, &process, start, &plan,
            )));
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(digest(&run_cover_trials_lanes(
                &cell.g, &process, start, &plan,
            )));
        }
        (cell.trials * reps) as f64 / t.elapsed().as_secs_f64()
    });

    CellResult {
        name: cell.name,
        n: cell.g.num_vertices(),
        trials: cell.trials,
        reps,
        frozen_tps,
        scratch_tps,
        lanes_tps,
    }
}

fn render_json(mode: &str, results: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cobra-bench/trials-v2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        let lane_tps = r
            .lanes_tps
            .map(|t| format!("{t:.0}"))
            .unwrap_or_else(|| "null".to_string());
        let lane_speedup = r
            .lanes_tps
            .map(|t| format!("{:.2}", t / r.frozen_tps))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"trials\": {}, \"reps\": {}, \
             \"engine\": \"{}\", \"frozen_trials_per_sec\": {:.0}, \
             \"scratch_trials_per_sec\": {:.0}, \"lane_trials_per_sec\": {}, \
             \"scratch_speedup\": {:.2}, \"lane_speedup\": {}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.n,
            r.trials,
            r.reps,
            r.engine(),
            r.frozen_tps,
            r.scratch_tps,
            lane_tps,
            r.scratch_speedup(),
            lane_speedup,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut seed = 0xC0B7Au64;
    let mut out_path = "BENCH_trials.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("usage: bench_trials [--quick] [--seed <u64>] [--out <path>]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (warmup, reps, trial_scale) = if quick { (1, 3, 8) } else { (3, 12, 1) };
    let mode = if quick { "quick" } else { "full" };

    let cycle64k = Family::Cycle.build(65_536, seed);
    let grid64 = Family::Grid { d: 2 }.build(63, seed); // 64×64 = 4096
    let rr4096 = Family::RandomRegular { d: 4 }.build(4096, seed);
    let adjacent = rr4096.neighbors(0)[0];
    let k64 = Family::Complete.build(64, seed);
    let grid16 = Family::Grid { d: 2 }.build(15, seed); // 16×16 = 256

    // Headline first: the many-small-trials regime — thousands of short
    // hitting trials (the `estimate_hmax` / Lemma-14 pair-sampling shape,
    // where nearby pairs hit in a handful of rounds) on a large graph,
    // where PR 2 paid an O(n) spawn-allocate-zero per trial worth a few
    // dozen draws. The remaining cells track the same two engines on
    // progressively less setup-bound cells, down to step-dominated covers
    // where the engines should tie rather than regress.
    let cells = [
        Cell {
            name: "grid_64x64/cobra_k2/hit_adjacent",
            g: grid64,
            measure: Measure::Hitting { target: 1 },
            trials: 8192 / trial_scale,
            max_steps: 100_000,
        },
        Cell {
            name: "cycle_65536/cobra_k2/hit_near",
            g: cycle64k,
            measure: Measure::Hitting { target: 4 },
            trials: 8192 / trial_scale,
            max_steps: 100_000,
        },
        Cell {
            name: "rr_d4_4096/cobra_k2/hit_adjacent",
            g: rr4096,
            measure: Measure::Hitting { target: adjacent },
            trials: 2048 / trial_scale,
            max_steps: 10_000,
        },
        Cell {
            name: "complete_64/cobra_k2/cover",
            g: k64,
            measure: Measure::Cover,
            trials: 8192 / trial_scale,
            max_steps: 10_000,
        },
        Cell {
            name: "grid_16x16/cobra_k2/cover",
            g: grid16,
            measure: Measure::Cover,
            trials: 2048 / trial_scale,
            max_steps: 100_000,
        },
    ];

    let results: Vec<CellResult> = cells
        .iter()
        .map(|c| time_cell(c, seed, warmup, reps))
        .collect();

    for r in &results {
        let lanes = r
            .lanes_tps
            .map(|t| format!("{t:10.0}/s"))
            .unwrap_or_else(|| "         -  ".to_string());
        println!(
            "{:36} n={:5} trials={:5}  frozen {:10.0}/s  scratch {:10.0}/s  lanes {}  [{}] speedup {:5.2}x",
            r.name,
            r.n,
            r.trials,
            r.frozen_tps,
            r.scratch_tps,
            lanes,
            r.engine(),
            r.speedup()
        );
    }

    let json = render_json(mode, &results);
    cobra_sim::write_atomic_str(std::path::Path::new(&out_path), &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    // Acceptance gates, all on the shipping engine's speedup over the
    // frozen PR 2 runner:
    //
    // * headline many-small-trials cell ≥ 1.5× (the original ISSUE-3
    //   gate, unchanged);
    // * every cell ≥ 1.0× — no regression hides behind the headline;
    // * lane-engine cells ≥ 2.0× — the small-`n` cover cells this PR
    //   exists for must actually clear the bar, not merely stop losing.
    //
    // Enforced (nonzero exit) only for full-mode release runs — quick
    // mode's few reps and debug builds are too noisy to gate on, so
    // they just warn.
    let mut gate_failed = false;
    let headline = &results[0];
    if headline.speedup() < 1.5 {
        eprintln!(
            "WARNING: headline speedup {:.2}x below the 1.5x gate",
            headline.speedup()
        );
        gate_failed = true;
    }
    for r in &results {
        if r.speedup() < 1.0 {
            eprintln!(
                "WARNING: {} speedup {:.2}x below the 1.0x floor",
                r.name,
                r.speedup()
            );
            gate_failed = true;
        }
        if r.lanes_tps.is_some() && r.speedup() < 2.0 {
            eprintln!(
                "WARNING: {} lane speedup {:.2}x below the 2.0x lane gate",
                r.name,
                r.speedup()
            );
            gate_failed = true;
        }
    }
    if gate_failed && !quick && !cfg!(debug_assertions) {
        std::process::exit(1);
    }
}
