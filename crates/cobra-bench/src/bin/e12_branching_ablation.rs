//! **E12 — ablation:** the effect of the branching factor `k`.
//!
//! The paper fixes `k = 2` ("one could further study variations", §1) and
//! notes any constant `k ≥ 2` suffices for the grid result. This ablation
//! quantifies the `k`-dependence on three structurally different graphs:
//!
//! * a 2-d grid (Theorem 3 territory),
//! * a random 4-regular expander (Corollary 9 territory),
//! * a lollipop (Theorem 20 territory),
//!
//! expecting a dramatic k=1 → k=2 cliff (simple walk → cobra walk) and
//! diminishing returns beyond.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::CobraWalk;
use cobra_sim::runner::{run_cover_trials, TrialPlan};

fn main() {
    let cfg = ExpConfig::from_env();
    banner("E12", "ablation: branching factor k ∈ {1,2,3,4,8}", &cfg);

    let ks = [1u32, 2, 3, 4, 8];
    let trials = cfg.scale(15, 50);
    let cases: Vec<(Family, usize)> = vec![
        (Family::Grid { d: 2 }, cfg.scale(16, 32)),
        (Family::RandomRegular { d: 4 }, cfg.scale(256, 1024)),
        (Family::Lollipop, cfg.scale(48, 96)),
    ];

    let mut cliff_ok = true;
    let mut diminishing_ok = true;
    for (c, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e12", "graphs", c as u64));
        let n = g.num_vertices();
        let start = fam.adversarial_start(&g);
        println!("### {} (n = {n})\n", fam.name());
        println!("| k | cover mean | cover p95 | speedup vs k=1 |");
        println!("|---|------------|-----------|----------------|");
        let mut means = Vec::new();
        for (i, &k) in ks.iter().enumerate() {
            let process = CobraWalk::new(k);
            let nf = n as f64;
            // k=1 is the plain RW: needs a polynomially larger budget.
            let budget = if k == 1 {
                (4.0 * nf * nf * nf.ln()) as usize + 500_000
            } else {
                3000 * (nf.ln() as usize + 1) * 40 + 40 * n + 100_000
            };
            let out = run_cover_trials(
                &g,
                &process,
                start,
                &TrialPlan::new(
                    trials,
                    budget,
                    stage_seed(cfg.seed, "e12", "cover", (c * 10 + i) as u64),
                ),
            );
            assert_eq!(out.censored, 0, "{} k={k}: raise budget", fam.name());
            means.push(out.summary.mean());
            println!(
                "| {k} | {:.1} | {:.1} | {:.1}× |",
                out.summary.mean(),
                out.summary.quantile(0.95),
                means[0] / out.summary.mean()
            );
        }
        println!();
        // Cliff: k=2 at least 3x faster than k=1 on every family.
        cliff_ok &= means[0] / means[1] > 3.0;
        // Diminishing returns: the k=2→8 gain is much smaller than k=1→2.
        let gain_12 = means[0] / means[1];
        let gain_28 = means[1] / means[4];
        diminishing_ok &= gain_28 < gain_12 / 2.0;
        println!(
            "k=1→2 speedup {:.1}×, k=2→8 speedup {:.1}×\n",
            gain_12, gain_28
        );
    }
    verdict(
        "branching cliff: k=2 ≥ 3× faster than k=1 everywhere",
        cliff_ok,
        "the single extra pebble does most of the work",
    );
    verdict(
        "diminishing returns beyond k=2",
        diminishing_ok,
        "k=2→8 gains are far smaller than k=1→2",
    );
}
