//! **E0 — harness smoke:** a seconds-scale end-to-end pass over the whole
//! pipeline (graph generation → cobra walk → parallel Monte-Carlo →
//! summary), used to validate a fresh checkout or container before the
//! real experiments burn CPU. Every claim it checks is loose on purpose.

use cobra_bench::report::{banner, verdict};
use cobra_bench::{ExpConfig, Family};
use cobra_core::{CobraWalk, SimpleWalk};
use cobra_sim::runner::{run_cover_trials, TrialPlan};

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E0",
        "harness smoke: generate, walk, aggregate (loose sanity bounds only)",
        &cfg,
    );

    let trials = cfg.scale(20, 100);
    let mut failures = 0u32;

    for (family, scale, budget) in [
        (Family::Hypercube, 8usize, 50_000usize),
        (Family::Grid { d: 2 }, 15, 200_000),
        (Family::RandomRegular { d: 4 }, 256, 50_000),
    ] {
        let g = family.build(scale, cfg.seed);
        let start = family.adversarial_start(&g);
        let plan = TrialPlan::new(trials, budget, cfg.seed);
        let cobra = run_cover_trials(&g, &CobraWalk::standard(), start, &plan);
        let simple = run_cover_trials(&g, &SimpleWalk::new(), start, &plan);
        let ok = cobra.censored == 0
            && cobra.summary.count() == trials
            && cobra.summary.mean() <= simple.summary.mean();
        if !ok {
            failures += 1;
        }
        verdict(
            &format!(
                "{}: cobra covers, and no slower than simple RW",
                family.name()
            ),
            ok,
            &format!(
                "cobra mean {:.1}, simple mean {:.1}, censored {}/{}",
                cobra.summary.mean(),
                simple.summary.mean(),
                cobra.censored,
                trials
            ),
        );
    }

    if failures > 0 {
        eprintln!("e0_smoke: {failures} family check(s) failed");
        std::process::exit(1);
    }
    println!("e0_smoke: pipeline healthy");
}
