//! **E15 — the §4 two-phase picture:** on expanders the cobra walk's
//! active set first grows exponentially (until Θ(n) vertices are active)
//! and then finishes coverage; the prior work analyzed exactly this
//! split, and the paper's Walt machinery exists to *bypass* the growth
//! phase's high-expansion requirement.
//!
//! Measured here:
//!
//! * per-round growth rates of `|S_t|` during the growth phase on random
//!   regular graphs — expect a stable rate strictly between 1 and 2
//!   (2 minus collision losses);
//! * growth-phase length vs `log n` — expect linear in `log n`;
//! * the contrast case: on the cycle (no expansion) the active set grows
//!   only polynomially (the interval's boundary is 2 vertices).

use cobra_analysis::fit::linear_fit;
use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::{stage_seed, stage_sequence};
use cobra_bench::{ExpConfig, Family};
use cobra_core::{record_trajectory, CobraWalk};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E15",
        "§4 growth phase: exponential active-set growth on expanders, polynomial on the cycle",
        &cfg,
    );

    let cobra = CobraWalk::standard();
    let trials = cfg.scale(20, 60);

    // ---- growth rate and phase length on expanders ----------------------
    let ns = cfg.scale(
        vec![256usize, 512, 1024, 2048],
        vec![512, 1024, 2048, 4096, 8192, 16384],
    );
    println!("random 4-regular graphs — growth to n/4 active:\n");
    println!("| n | ln n | mean growth rate | rounds to n/4 active | rounds / ln n |");
    println!("|---|------|------------------|----------------------|---------------|");
    let mut lens = Vec::new();
    let mut logns = Vec::new();
    let mut rates_all = Vec::new();
    for (i, &n) in ns.iter().enumerate() {
        let fam = Family::RandomRegular { d: 4 };
        let g = fam.build(n, stage_seed(cfg.seed, "e15", "graphs", i as u64));
        let child = stage_sequence(cfg.seed, "e15", "growth", i as u64);
        let mut phase_sum = 0usize;
        let mut rate_sum = 0.0;
        let mut rate_count = 0usize;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
            let tr = record_trajectory(&g, &cobra, 0, 100_000, &mut rng);
            let phase = tr
                .rounds_to_active_fraction(g.num_vertices(), 0.25)
                .expect("expander reaches n/4 active");
            phase_sum += phase;
            for r in tr.growth_rates() {
                rate_sum += r;
                rate_count += 1;
            }
        }
        let mean_phase = phase_sum as f64 / trials as f64;
        let mean_rate = rate_sum / rate_count as f64;
        let logn = (g.num_vertices() as f64).ln();
        println!(
            "| {n} | {logn:.2} | {mean_rate:.3} | {mean_phase:.1} | {:.2} |",
            mean_phase / logn
        );
        lens.push(mean_phase);
        logns.push(logn);
        rates_all.push(mean_rate);
    }
    println!();
    let fit = linear_fit(&logns, &lens);
    println!(
        "growth-phase length vs ln n: slope {:.2}, intercept {:.2}, R² {:.4}",
        fit.slope, fit.intercept, fit.r_squared
    );
    let rate_lo = rates_all.iter().cloned().fold(f64::MAX, f64::min);
    let rate_hi = rates_all.iter().cloned().fold(f64::MIN, f64::max);

    verdict(
        "growth rates are stable in (1, 2): exponential phase with collision losses",
        rate_lo > 1.2 && rate_hi < 2.0,
        &format!("per-n mean rates in [{rate_lo:.3}, {rate_hi:.3}]"),
    );
    verdict(
        "growth-phase length is Θ(log n)",
        fit.r_squared > 0.95 && fit.slope > 0.0,
        &format!("linear-in-ln-n fit R² {:.3}", fit.r_squared),
    );
    println!();

    // ---- contrast: on the cycle growth is LINEAR, not exponential -------
    // (Reproduction note: the active set on the cycle does eventually
    // reach constant density — the dynamics behind the covered frontier
    // behave like a supercritical discrete contact process — but getting
    // to n/4 active takes Θ(n) rounds, because the covered interval can
    // only expand at its two boundaries. On expanders the same milestone
    // takes Θ(log n).)
    println!("cycle contrast — rounds for the active set to reach n/4:\n");
    println!("| n | rounds to n/4 active | rounds / n | rounds / ln n |");
    println!("|---|----------------------|------------|----------------|");
    let mut cycle_rounds = Vec::new();
    let cycle_ns = cfg.scale(vec![256usize, 512, 1024], vec![512, 1024, 2048, 4096]);
    for (i, &n_cycle) in cycle_ns.iter().enumerate() {
        let g = Family::Cycle.build(n_cycle, 0);
        let child = stage_sequence(cfg.seed, "e15", "cycle-refresh", i as u64);
        let mut total = 0usize;
        let ctrials = cfg.scale(10usize, 30);
        for t in 0..ctrials {
            let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
            let tr = record_trajectory(&g, &cobra, 0, 100_000_000, &mut rng);
            total += tr
                .rounds_to_active_fraction(n_cycle, 0.25)
                .expect("density eventually reaches n/4 on the cycle");
        }
        let mean = total as f64 / ctrials as f64;
        println!(
            "| {n_cycle} | {mean:.0} | {:.3} | {:.1} |",
            mean / n_cycle as f64,
            mean / (n_cycle as f64).ln()
        );
        cycle_rounds.push(mean);
    }
    println!();
    // Linear scaling: doubling n should roughly double the rounds.
    let ratio = cycle_rounds[cycle_rounds.len() - 1] / cycle_rounds[cycle_rounds.len() - 2];
    verdict(
        "cycle contrast: reaching n/4 active takes Θ(n) rounds (vs Θ(log n) on expanders)",
        (1.6..=2.4).contains(&ratio),
        &format!("rounds ratio at doubled n = {ratio:.2}"),
    );
}
