//! **E7 — Lemma 14 + Theorem 15:** on `δ`-regular graphs the 2-cobra
//! hitting time is O(n^{2−1/δ}), via domination by the best
//! inverse-degree-biased walk.
//!
//! Three checks:
//!
//! 1. **Lemma 14 dominance** — `H_cobra(u, v) ≤ H*(u, v)` where `H*` is
//!    realized by the inverse-degree-biased walk steered toward the
//!    target along shortest paths;
//! 2. **Theorem 15 shape** — the worst measured cobra hitting time on
//!    cycles (δ=2) grows like `n^{3/2}`, clearly below the simple walk's
//!    `n²`;
//! 3. **Corollary 17** — the Metropolis walk's measured return time to
//!    the target is within its proved bound
//!    `(d(v) + Σ σ̂·d)/d(v)`.

use cobra_analysis::fit::power_law_fit;
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::{stage_seed, stage_sequence};
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::biased::{return_time_bound, MetropolisWalk};
use cobra_core::process::Process;
use cobra_core::{BiasedWalk, CobraWalk, SimpleWalk};
use cobra_graph::metrics::farthest_vertex;
use cobra_sim::runner::{run_hitting_trials, TrialPlan};
use cobra_sim::sweep::{SweepRow, SweepTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E7",
        "Lemma 14 dominance + Theorem 15 O(n^{2−1/δ}) hitting on δ-regular graphs + Corollary 17",
        &cfg,
    );

    let spec = ExperimentSpec::from_config(
        "e7",
        "Lemma 14 dominance + Theorem 15 hitting exponents + Corollary 17",
        &cfg,
    );
    let mut orch = Orchestrator::for_run(spec, &cfg);

    // The dyn-route biased-walk reference keeps a fixed plan (its
    // controller state is not `TypedProcess`); size it to the adaptive
    // envelope's cap so its stderr stays comparable.
    let trials = cfg.scale(60, 200);
    let cobra = CobraWalk::standard();

    // ---- (1) Lemma 14: cobra ≤ inverse-degree-biased, per pair ---------
    println!("Lemma 14 — H_cobra(u,v) vs H*(u,v) (inverse-degree bias toward v):\n");
    println!("| family | n | δ | H_cobra mean | H* mean | cobra ≤ H*? |");
    println!("|--------|---|---|--------------|---------|-------------|");
    let dom_cases: Vec<(Family, usize)> = vec![
        (Family::Cycle, cfg.scale(64, 256)),
        (Family::Torus { d: 2 }, cfg.scale(9, 19)),
        (Family::RandomRegular { d: 3 }, cfg.scale(128, 512)),
    ];
    let mut dominance_ok = true;
    for (k, (fam, scale)) in dom_cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e7", "graphs", k as u64));
        let n = g.num_vertices();
        let delta = g.regularity().expect("regular family");
        let start = 0u32;
        let (target, _) = farthest_vertex(&g, start);
        let budget = 400 * n * n + 100_000;
        // Cobra side adaptively on the typed scratch engine; the biased
        // walk keeps the dyn route (its controller state is not
        // `TypedProcess`).
        let out_c = orch.hitting_cell(
            "lemma14 cobra hitting",
            n as f64,
            &g,
            &cobra,
            start,
            target,
            budget,
            stage_seed(cfg.seed, "e7", "cobra-hitting", k as u64),
        );
        let biased = BiasedWalk::inverse_degree_toward(&g, target);
        let out_b = run_hitting_trials(
            &g,
            &biased,
            start,
            target,
            &TrialPlan::new(
                trials,
                budget,
                stage_seed(cfg.seed, "e7", "biased-hitting", k as u64),
            ),
        );
        assert_eq!(out_c.censored + out_b.censored, 0, "raise hitting budget");
        // Allow 2 stderr of slack in the comparison.
        let slack = 2.0 * (out_c.summary.stderr() + out_b.summary.stderr());
        let ok = out_c.summary.mean() <= out_b.summary.mean() + slack;
        dominance_ok &= ok;
        println!(
            "| {} | {n} | {delta} | {:.1} | {:.1} | {} |",
            fam.name(),
            out_c.summary.mean(),
            out_b.summary.mean(),
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    verdict(
        "Lemma 14: cobra hitting ≤ best inverse-degree-biased hitting",
        dominance_ok,
        "2σ slack",
    );
    println!();

    // ---- (2) Theorem 15 on cycles (δ = 2): H = O(n^{3/2}) --------------
    let ns = cfg.scale(vec![32usize, 64, 128, 256], vec![64, 128, 256, 512, 1024]);
    let mut t_cobra = SweepTable::new("cobra(k=2) antipodal hitting on cycle", "n");
    let mut t_rw = SweepTable::new("simple-rw antipodal hitting on cycle", "n");
    for (i, &n) in ns.iter().enumerate() {
        let g = Family::Cycle.build(n, 0);
        let target = (n / 2) as u32;
        let budget = 100 * n * n + 50_000;
        let out_c = orch.hitting_cell(
            "thm15 cobra antipodal on cycle",
            n as f64,
            &g,
            &cobra,
            0,
            target,
            budget,
            stage_seed(cfg.seed, "e7", "cycle-cobra", i as u64),
        );
        t_cobra.push(SweepRow::from_summary(
            n as f64,
            &out_c.summary,
            out_c.censored,
        ));
        let out_r = orch.hitting_cell(
            "thm15 simple-rw antipodal on cycle",
            n as f64,
            &g,
            &SimpleWalk::new(),
            0,
            target,
            budget,
            stage_seed(cfg.seed, "e7", "cycle-rw", i as u64),
        );
        t_rw.push(SweepRow::from_summary(
            n as f64,
            &out_r.summary,
            out_r.censored,
        ));
    }
    emit_table(&cfg, &t_cobra, "e7_cobra_cycle");
    emit_table(&cfg, &t_rw, "e7_rw_cycle");
    let fit_c = power_law_fit(&t_cobra.scales(), &t_cobra.means());
    let fit_r = power_law_fit(&t_rw.scales(), &t_rw.means());
    println!(
        "cobra hitting exponent on cycle: {:.3} (Theorem 15 upper bound: 2−1/δ = 1.5)",
        fit_c.slope
    );
    println!(
        "simple-rw hitting exponent on cycle: {:.3} (classical: 2)",
        fit_r.slope
    );
    // Theorem 15 is an upper bound; the true cycle behaviour is even
    // better (the active interval's boundary drifts outward at constant
    // speed, so ≈ n¹). Pass = measured exponent within the bound and the
    // RW baseline at its classical n².
    verdict(
        "Theorem 15 (δ=2): cobra hitting exponent ≤ 2−1/δ = 1.5, below the RW's 2",
        fit_c.slope < 1.55 && fit_r.slope > 1.85,
        &format!("cobra {:.3} vs rw {:.3}", fit_c.slope, fit_r.slope),
    );
    println!();

    // ---- (3) Corollary 17: Metropolis return time within bound ---------
    println!("Corollary 17 — Metropolis walk return times:\n");
    println!("| family | n | measured return | Corollary 17 bound |");
    println!("|--------|---|-----------------|--------------------|");
    let ret_cases: Vec<(Family, usize)> = vec![
        (Family::Cycle, cfg.scale(24, 64)),
        (Family::Torus { d: 2 }, cfg.scale(5, 9)),
        (Family::Complete, cfg.scale(16, 32)),
    ];
    let mut ret_ok = true;
    let ret_trials = cfg.scale(2000, 10_000);
    for (k, (fam, scale)) in ret_cases.iter().enumerate() {
        let g = fam.build(*scale, 0);
        let n = g.num_vertices();
        let target = 0u32;
        let mw = MetropolisWalk::new(&g, target);
        let bound = return_time_bound(&g, target);
        // Measure mean return time: start at target, step once, count
        // rounds until back.
        let child = stage_sequence(cfg.seed, "e7", "return-time", k as u64);
        let mut total = 0u64;
        for t in 0..ret_trials {
            let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
            let mut st = mw.spawn(&g, target);
            let mut steps = 0u64;
            loop {
                st.step(&g, &mut rng);
                steps += 1;
                if st.occupied()[0] == target {
                    break;
                }
                if steps > 10_000_000 {
                    panic!("return walk did not return");
                }
            }
            total += steps;
        }
        let measured = total as f64 / ret_trials as f64;
        // Statistical + stationary-approximation slack: 5%.
        let ok = measured <= bound * 1.05;
        ret_ok &= ok;
        println!("| {} | {n} | {measured:.2} | {bound:.2} |", fam.name());
    }
    println!();
    verdict(
        "Corollary 17: measured Metropolis return time ≤ bound",
        ret_ok,
        "5% slack for sampling noise",
    );
    println!();
    orch.finish(&cfg);
}
