//! **E11 — §6 conclusion:** the star graph shows the worst-case cobra
//! cover time is Ω(n log n); the paper conjectures O(n log n) is also the
//! general upper bound (matching push gossip's universal O(n log n)).
//!
//! On stars of growing size we measure:
//!
//! * the 2-cobra cover time — expect Θ(n log n): from the hub the two
//!   pebbles hit ≤ 2 fresh leaves per 2 rounds, coupon-collector style;
//! * push gossip — also Θ(n log n) on the star (hub informs one random
//!   leaf per round);
//! * the coupon-collector prediction `n·H_n ≈ n ln n` as the reference
//!   curve both should track within constants.

use cobra_analysis::compare::ratio_flatness;
use cobra_analysis::growth::{classify_growth, GrowthShape};
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::{CobraWalk, PushGossip};
use cobra_sim::runner::{run_cover_trials, TrialPlan};
use cobra_sim::sweep::{SweepRow, SweepTable};

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E11",
        "§6: star graph gives Ω(n log n) for cobra walks; push gossip comparison",
        &cfg,
    );

    let fam = Family::Star;
    let ns = cfg.scale(
        vec![64usize, 128, 256, 512, 1024],
        vec![128, 256, 512, 1024, 2048, 4096, 8192],
    );
    let trials = cfg.scale(20, 60);
    let cobra = CobraWalk::standard();
    let push = PushGossip;

    let mut t_cobra = SweepTable::new("cobra(k=2) cover on star", "n");
    let mut t_push = SweepTable::new("push gossip on star", "n");
    for (i, &n) in ns.iter().enumerate() {
        let g = fam.build(n, 0);
        let nf = n as f64;
        let budget = (20.0 * nf * nf.ln()) as usize + 50_000;
        let out_c = run_cover_trials(
            &g,
            &cobra,
            0,
            &TrialPlan::new(
                trials,
                budget,
                stage_seed(cfg.seed, "e11", "cobra", i as u64),
            ),
        );
        t_cobra.push(
            SweepRow::from_summary(nf, &out_c.summary, out_c.censored)
                .with_context("n_ln_n", nf * nf.ln()),
        );
        let out_p = run_cover_trials(
            &g,
            &push,
            0,
            &TrialPlan::new(
                trials,
                budget,
                stage_seed(cfg.seed, "e11", "push", i as u64),
            ),
        );
        t_push.push(
            SweepRow::from_summary(nf, &out_p.summary, out_p.censored)
                .with_context("n_ln_n", nf * nf.ln()),
        );
    }
    emit_table(&cfg, &t_cobra, "e11_cobra");
    emit_table(&cfg, &t_push, "e11_push");

    let (shape_c, slope_c) = classify_growth(&t_cobra.scales(), &t_cobra.means());
    let (shape_p, _) = classify_growth(&t_push.scales(), &t_push.means());
    println!(
        "cobra growth shape on star: {} (residual {slope_c:+.3})",
        shape_c.name()
    );
    println!("push gossip growth shape on star: {}", shape_p.name());

    let nlogn: Vec<f64> = t_cobra.scales().iter().map(|&n| n * n.ln()).collect();
    let rep_c = ratio_flatness(&t_cobra.scales(), &t_cobra.means(), &nlogn);
    let rep_p = ratio_flatness(&t_push.scales(), &t_push.means(), &nlogn);
    println!(
        "cobra cover / (n ln n): log-slope {:+.3}, spread {:.2}×",
        rep_c.log_slope, rep_c.spread
    );
    println!(
        "push cover / (n ln n): log-slope {:+.3}, spread {:.2}×\n",
        rep_p.log_slope, rep_p.spread
    );

    verdict(
        "Ω(n log n) star lower bound: cobra cover grows ≳ n log n",
        matches!(shape_c, GrowthShape::NLogN | GrowthShape::Linear) && rep_c.log_slope > -0.10,
        &format!(
            "shape {}, ratio slope {:+.3}",
            shape_c.name(),
            rep_c.log_slope
        ),
    );
    verdict(
        "…and ≲ n log n (the conjectured general upper bound holds here)",
        rep_c.log_slope < 0.10,
        &format!("ratio slope {:+.3}", rep_c.log_slope),
    );
    verdict(
        "push gossip is Θ(n log n) on the star too",
        rep_p.log_slope.abs() < 0.10,
        &format!("ratio slope {:+.3}", rep_p.log_slope),
    );
    // Constant-factor comparison at the largest size.
    let last = t_cobra.rows.len() - 1;
    let c_over_p = t_cobra.rows[last].mean / t_push.rows[last].mean;
    verdict(
        "cobra and push differ only by a constant factor on the star",
        (0.2..5.0).contains(&c_over_p),
        &format!(
            "cobra/push = {c_over_p:.2} at n = {}",
            t_cobra.rows[last].scale
        ),
    );
}
