//! **E9 — Theorem 1 (Matthews extension):** the cobra-walk cover time is
//! O(h_max · log n), where `h_max` is the maximum pairwise hitting time.
//!
//! For a spread of families we estimate `h_max` by sampling pairs,
//! measure the cover time, and check the Matthews ratio
//! `cover / (h_max·ln n)` stays bounded by a small constant across
//! families and sizes. As a cross-check, on tiny graphs we also verify
//! that the *simple-walk* h_max estimator agrees with the exact
//! linear-solve values from `cobra-spectral`.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::measure::{estimate_hmax, matthews_ratio};
use cobra_core::{CobraWalk, SimpleWalk};
use cobra_sim::runner::{run_cover_trials, TrialPlan};
use cobra_spectral::exact::exact_hmax;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E9",
        "Theorem 1: cover time ≤ O(h_max · log n) for cobra walks",
        &cfg,
    );

    // ---- Estimator sanity: simple-walk h_max vs exact ------------------
    let tiny = Family::Cycle.build(12, 0);
    let mut rng = StdRng::seed_from_u64(stage_seed(cfg.seed, "e9", "estimator-sanity", 0));
    let est = estimate_hmax(
        &tiny,
        &SimpleWalk::new(),
        144,
        cfg.scale(100, 400),
        200_000,
        &mut rng,
    );
    let exact = exact_hmax(&tiny);
    println!("estimator sanity (C12, simple walk): estimated h_max {est:.1} vs exact {exact:.1}\n");
    verdict(
        "h_max estimator agrees with exact linear solve (within 15%)",
        (est - exact).abs() / exact < 0.15,
        &format!("{est:.1} vs {exact:.1}"),
    );
    println!();

    // ---- Matthews ratio across families ---------------------------------
    let cobra = CobraWalk::standard();
    let cases: Vec<(Family, usize)> = vec![
        (Family::Cycle, cfg.scale(64, 256)),
        (Family::Grid { d: 2 }, cfg.scale(10, 24)),
        (Family::Hypercube, cfg.scale(6, 9)),
        (Family::Complete, cfg.scale(64, 256)),
        (Family::Star, cfg.scale(64, 256)),
        (Family::Lollipop, cfg.scale(40, 96)),
        (Family::RandomRegular { d: 3 }, cfg.scale(128, 512)),
        (Family::KaryTree { k: 2 }, cfg.scale(5, 7)),
    ];
    let pairs = cfg.scale(30, 80);
    let htrials = cfg.scale(10, 30);
    let ctrials = cfg.scale(20, 50);

    println!("| family | n | h_max est | cover mean | Matthews ratio |");
    println!("|--------|---|-----------|------------|----------------|");
    let mut worst_ratio = 0.0f64;
    for (k, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e9", "graphs", k as u64));
        let n = g.num_vertices();
        let budget = 2000 * n + 500_000;
        let mut rng = StdRng::seed_from_u64(stage_seed(cfg.seed, "e9", "hmax", k as u64));
        let hmax = estimate_hmax(&g, &cobra, pairs, htrials, budget, &mut rng);
        let out = run_cover_trials(
            &g,
            &cobra,
            fam.adversarial_start(&g),
            &TrialPlan::new(
                ctrials,
                budget,
                stage_seed(cfg.seed, "e9", "cover", k as u64),
            ),
        );
        assert_eq!(out.censored, 0, "{}: raise budget", fam.name());
        let ratio = matthews_ratio(out.summary.mean(), hmax, n);
        worst_ratio = worst_ratio.max(ratio);
        println!(
            "| {} | {n} | {hmax:.1} | {:.1} | {ratio:.3} |",
            fam.name(),
            out.summary.mean()
        );
    }
    println!();
    // The constant in Theorem 1 is modest; empirically the ratio should
    // stay well below ~2 (sampled h_max underestimates the true max a
    // little, which inflates the ratio slightly).
    verdict(
        "Theorem 1: Matthews ratio cover/(h_max·ln n) bounded across families",
        worst_ratio < 2.5,
        &format!("worst ratio {worst_ratio:.3}"),
    );
}
