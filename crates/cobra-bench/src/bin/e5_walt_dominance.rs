//! **E5 — Lemma 10:** the cover time of the Walt process stochastically
//! dominates the cover time of the cobra walk started from the same
//! vertex (Walt is the analyzable pessimistic stand-in: any upper bound
//! proved for Walt transfers to the cobra walk).
//!
//! For several graph families we sample both cover-time distributions
//! from the same start and check first-order stochastic dominance of the
//! empirical CDFs: `F_walt(t) ≤ F_cobra(t) + ε_stat` for all `t` (Walt is
//! slower at every quantile), plus the implied mean/median orderings.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::{CobraWalk, WaltProcess};
use cobra_sim::runner::{run_cover_trials, TrialPlan};

/// Maximum CDF crossing allowed by sampling noise: a two-sample DKW-style
/// band at roughly 99% confidence for `trials` samples per side.
fn noise_band(trials: usize) -> f64 {
    2.0 * (((2.0f64 / 0.01).ln()) / (2.0 * trials as f64)).sqrt()
}

/// Empirical CDF evaluated at `t` for sorted samples.
fn ecdf(sorted: &[f64], t: f64) -> f64 {
    let idx = sorted.partition_point(|&x| x <= t);
    idx as f64 / sorted.len() as f64
}

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E5",
        "Lemma 10: Walt cover time stochastically dominates cobra cover time",
        &cfg,
    );

    let trials = cfg.scale(200, 1000);
    let band = noise_band(trials);
    println!("trials per process per family: {trials}; CDF noise band ±{band:.3}\n");

    let cases: Vec<(Family, usize)> = vec![
        (Family::Complete, cfg.scale(48, 128)),
        (Family::Hypercube, cfg.scale(6, 9)),
        (Family::RandomRegular { d: 4 }, cfg.scale(96, 512)),
        (Family::Torus { d: 2 }, cfg.scale(7, 15)),
    ];

    let cobra = CobraWalk::standard();
    let walt = WaltProcess::standard(0.5);

    println!("| family | n | cobra mean | walt mean | cobra p95 | walt p95 | max CDF violation |");
    println!("|--------|---|------------|-----------|-----------|----------|-------------------|");

    let mut all_pass = true;
    for (k, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e5", "graphs", k as u64));
        let n = g.num_vertices();
        let start = fam.adversarial_start(&g);
        let budget = 4000 * n + 100_000;
        let plan_c = TrialPlan::new(
            trials,
            budget,
            stage_seed(cfg.seed, "e5", "cobra", k as u64),
        );
        let plan_w = TrialPlan::new(trials, budget, stage_seed(cfg.seed, "e5", "walt", k as u64));
        let out_c = run_cover_trials(&g, &cobra, start, &plan_c);
        let out_w = run_cover_trials(&g, &walt, start, &plan_w);
        assert_eq!(out_c.censored, 0, "cobra runs censored; raise budget");
        assert_eq!(out_w.censored, 0, "walt runs censored; raise budget");

        // Collect sorted samples via quantiles of the summaries.
        let qs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let cobra_samples: Vec<f64> = qs.iter().map(|&q| out_c.summary.quantile(q)).collect();
        let walt_samples: Vec<f64> = qs.iter().map(|&q| out_w.summary.quantile(q)).collect();

        // Dominance: at every probe t, F_walt(t) ≤ F_cobra(t) + band.
        let mut max_violation = 0.0f64;
        for &t in cobra_samples.iter().chain(&walt_samples) {
            let fw = ecdf(&walt_samples, t);
            let fc = ecdf(&cobra_samples, t);
            max_violation = max_violation.max(fw - fc);
        }
        let pass = max_violation <= band && out_w.summary.mean() >= out_c.summary.mean() * 0.95;
        all_pass &= pass;
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.3} |",
            fam.name(),
            n,
            out_c.summary.mean(),
            out_w.summary.mean(),
            out_c.summary.quantile(0.95),
            out_w.summary.quantile(0.95),
            max_violation
        );
    }
    println!();
    verdict(
        "Lemma 10: Walt ⪰ cobra (stochastic dominance of cover times)",
        all_pass,
        &format!("max CDF violation within ±{band:.3} noise band on every family"),
    );
}
