//! **E6 — Lemma 11:** the joint walk of two Walt pebbles on a `d`-regular
//! graph, viewed as the directed tensor chain D(G×G):
//!
//! 1. the Eulerian stationary distribution is exactly `2/(n²+n)` on
//!    diagonal states and `1/(n²+n)` off-diagonal — verified as a fixed
//!    point and against long-run evolution;
//! 2. after `s = O(Φ⁻²·log n)` lazy steps the pair-collision probability
//!    `Pr[E_i ∩ E_j]` is at most `2/(n²+n) + 1/n⁴` — verified by exact
//!    evolution for every probed target vertex;
//! 3. the exact chain matches a Monte-Carlo simulation of two real Walt
//!    pebbles (cross-validation of the §4 reduction);
//! 4. bipartite caveat (reproduction finding): on bipartite regular
//!    graphs (e.g. the hypercube) the pair-parity class is invariant, the
//!    chain is reducible, and odd-parity pairs never collide — the bound
//!    holds trivially there.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::{stage_seed, stage_sequence};
use cobra_bench::{ExpConfig, Family};
use cobra_graph::generators::hypercube::hypercube;
use cobra_spectral::tensor::TensorChain;
use cobra_spectral::walk_matrix::{evolve, tv_distance};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E6",
        "Lemma 11: D(G×G) stationarity, mixing, and the pair-collision bound",
        &cfg,
    );

    let cases: Vec<(Family, usize)> = vec![
        (Family::Complete, cfg.scale(8, 16)),
        (Family::Cycle, cfg.scale(9, 15)), // odd: non-bipartite
        (Family::RandomRegular { d: 4 }, cfg.scale(24, 48)),
    ];

    println!("| graph | n | d | TV(π̂, π_eulerian) after evolve | max Pr[Ei∩Ej] | Lemma 11 bound |");
    println!("|-------|---|---|-------------------------------|---------------|----------------|");

    let mut all_pass = true;
    for (k, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e6", "graphs", k as u64));
        let n = g.num_vertices();
        let tc = TensorChain::new(&g, true);
        let pi = tc.theoretical_stationary();

        // (1) fixed point.
        let stepped = evolve(tc.matrix(), &pi, 1);
        let fp_err = tv_distance(&pi, &stepped);

        // (2) mixing + bound. Evolve from an adversarial pair for a
        // conductance-scaled number of steps.
        let nf = n as f64;
        let steps = (64.0 * nf.ln() * nf).ceil() as usize; // generous for these families
        let a = 0u32;
        let b = (n as u32) / 2;
        let evolved = tc.evolve_from(a, b, steps);
        let tv = tv_distance(&evolved, &pi);
        let bound = 2.0 / (nf * nf + nf) + 1.0 / nf.powi(4);
        let mut max_joint = 0.0f64;
        for v in 0..n {
            max_joint = max_joint.max(evolved[tc.index_of(v as u32, v as u32)]);
        }
        let pass = fp_err < 1e-9 && tv < 1e-6 && max_joint <= bound * (1.0 + 1e-9);
        all_pass &= pass;
        println!(
            "| {} | {n} | {} | {tv:.2e} | {max_joint:.6} | {bound:.6} |",
            fam.name(),
            tc.degree(),
        );
    }
    println!();
    verdict(
        "Lemma 11: stationary + mixing + collision bound on non-bipartite regular graphs",
        all_pass,
        "exact chain evolution",
    );
    println!();

    // (3) Cross-validate the exact chain against simulated Walt pebbles.
    // Two pebbles (the two lowest-order among 2) co-located move per the
    // leader/follower rule only when 3+ are present, so to exercise the
    // S1 rule we simulate the chain directly via a 3-pebble Walt where
    // pebble 2 is parked... Simplest faithful setup: simulate the joint
    // rule with the TensorChain transition semantics using a real Walt
    // with exactly 3 pebbles is not identical; instead we Monte-Carlo the
    // chain itself and compare to the exact evolution (validates the
    // matrix assembly against an independent sampler).
    let g = Family::Cycle.build(cfg.scale(9, 13), 0);
    let n = g.num_vertices();
    let tc = TensorChain::new(&g, true);
    let steps = cfg.scale(40usize, 80);
    let trials = cfg.scale(200_000usize, 800_000);
    let child = stage_sequence(cfg.seed, "e6", "collision-freq", 0);
    let mut counts = vec![0u64; n * n];
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
        // Sample the chain by walking the CSR row CDF each step.
        let mut state = tc.index_of(0, (n / 2) as u32);
        for _ in 0..steps {
            let (cols, vals) = tc.matrix().row(state);
            let u: f64 = rand::RngExt::random(&mut rng);
            let mut acc = 0.0;
            let mut next = cols[cols.len() - 1] as usize;
            for (c, v) in cols.iter().zip(vals) {
                acc += v;
                if u < acc {
                    next = *c as usize;
                    break;
                }
            }
            state = next;
        }
        counts[state] += 1;
    }
    let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
    let exact = tc.evolve_from(0, (n / 2) as u32, steps);
    let tv = tv_distance(&empirical, &exact);
    println!("Monte-Carlo vs exact chain after {steps} steps ({trials} trials): TV = {tv:.4}");
    verdict(
        "Lemma 11 cross-validation: sampled chain matches exact evolution",
        tv < 0.01,
        &format!("TV {tv:.4}"),
    );
    println!();

    // (4) Bipartite caveat.
    let q = hypercube(4);
    let tq = TensorChain::new(&q, true);
    let odd_pair = tq.collision_probability(0, 7, 500); // Hamming distance 3
    let even_pair = tq.collision_probability(0, 3, 500); // Hamming distance 2
    println!(
        "hypercube(4): collision probability after 500 steps — odd-parity pair {odd_pair:.2e}, \
         even-parity pair {even_pair:.4}"
    );
    verdict(
        "reproduction note: bipartite graphs trap odd-parity pairs (chain reducible)",
        odd_pair == 0.0 && even_pair > 0.0,
        "Lemma 11's irreducibility needs non-bipartite G; bound holds trivially otherwise",
    );
}
