//! **E2 — Lemmas 4–6 (§3):** the per-dimension drift chain ("queueing
//! system") behind the grid proof.
//!
//! Checks three things:
//!
//! 1. **Lemma 4 one-step drift** — in the worst case (only dimension `i`
//!    nonzero), conditioned on `z_i` changing it decreases with
//!    probability exactly `1/2 + 1/(8d−4)`, and the change probability
//!    matches `(2d−1)/d²`;
//! 2. **Lemma 5 emptying time** — from `z = (n, …, n)` the chain hits
//!    all-zeros within `O(d²·n)` steps w.h.p. (we fit the growth in `n`
//!    and check linearity, and report the p95/`d²n` ratio);
//! 3. **Lemma 6 excursions** — after first hitting 0, a dimension stays
//!    below `c·ln n` for the next `Θ(n²)` steps w.h.p.

use cobra_bench::report::{banner, emit_table, fit_and_report, verdict};
use cobra_bench::stages::{stage_seed, stage_sequence};
use cobra_bench::ExpConfig;
use cobra_core::queueing::{one_step_stats, DriftChain};
use cobra_sim::stats::Summary;
use cobra_sim::sweep::{SweepRow, SweepTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E2",
        "drift/queueing chain of §3: Lemma 4 drift, Lemma 5 O(d²n) emptying, Lemma 6 excursions",
        &cfg,
    );

    // ---- Lemma 4: one-step statistics in the worst-case state ----------
    println!("Lemma 4 one-step drift (worst case: single nonzero dimension):\n");
    println!("| d | P[change] measured | (2d-1)/d² | P[dec|change] measured | 1/2+1/(8d-4) |");
    println!("|---|--------------------|-----------|------------------------|--------------|");
    let mut lemma4_ok = true;
    let trials4 = cfg.scale(100_000, 400_000);
    for d in [2usize, 3, 4, 6] {
        let mut z = vec![0u32; d];
        z[0] = 50;
        let state = DriftChain::new(z, 1000);
        let mut rng = StdRng::seed_from_u64(stage_seed(cfg.seed, "e2", "step-stats", d as u64));
        let (p_change, p_dec) = one_step_stats(&state, 0, trials4, &mut rng);
        let d_f = d as f64;
        let exp_change = (2.0 * d_f - 1.0) / (d_f * d_f);
        let exp_dec = 0.5 + 1.0 / (8.0 * d_f - 4.0);
        println!("| {d} | {p_change:.4} | {exp_change:.4} | {p_dec:.4} | {exp_dec:.4} |");
        lemma4_ok &= (p_change - exp_change).abs() < 0.01 && (p_dec - exp_dec).abs() < 0.01;
    }
    println!();
    verdict(
        "Lemma 4: one-step drift matches the closed form",
        lemma4_ok,
        "tolerance ±0.01",
    );
    println!();

    // ---- Lemma 5: emptying time is linear in n -------------------------
    let trials5 = cfg.scale(30, 100);
    let ns = cfg.scale(vec![50usize, 100, 200, 400], vec![100, 200, 400, 800, 1600]);
    let mut all_linear = true;
    for d in [2usize, 3, 4] {
        let mut table = SweepTable::new(format!("drift-chain emptying time, d={d}"), "n");
        for (i, &n) in ns.iter().enumerate() {
            let child = stage_sequence(cfg.seed, "e2", "emptying", (d * 1000 + i) as u64);
            let mut summary = Summary::new();
            let mut censored = 0usize;
            let budget = 64 * d * d * n + 100_000;
            for t in 0..trials5 {
                let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
                let mut chain = DriftChain::uniform(d, n as u32, n as u32);
                match chain.time_to_empty(budget, &mut rng) {
                    Some(steps) => summary.push(steps as f64),
                    None => censored += 1,
                }
            }
            let row = SweepRow::from_summary(n as f64, &summary, censored)
                .with_context("p95_over_d2n", summary.quantile(0.95) / (d * d * n) as f64);
            table.push(row);
        }
        emit_table(&cfg, &table, &format!("e2_empty_d{d}"));
        let fit = fit_and_report(&table);
        all_linear &= fit.slope < 1.25 && fit.r_squared > 0.9;
        verdict(
            &format!("Lemma 5 (d={d}): emptying time grows ~ linearly in n"),
            fit.slope < 1.25 && fit.r_squared > 0.9,
            &format!("exponent {:.3}", fit.slope),
        );
        println!();
    }
    verdict(
        "Lemma 5 overall: O(d²n) emptying across d ∈ {2,3,4}",
        all_linear,
        "all fits ≈ linear",
    );
    println!();

    // ---- Lemma 6: post-zero excursions stay below c·ln n ---------------
    let d = 3usize;
    let n = cfg.scale(200usize, 1000);
    let horizon = cfg.scale(4 * n * n, 10 * n * n);
    let excursion_trials = cfg.scale(20, 60);
    let cap = 12.0 * (n as f64).ln(); // generous c_d
    let child = stage_sequence(cfg.seed, "e2", "excursion", 0);
    let mut violations = 0usize;
    let mut max_seen = 0.0f64;
    for t in 0..excursion_trials {
        let mut rng = StdRng::seed_from_u64(child.seed_at(t as u64));
        // Start at zero in dimension 0 (post-hit state), others small.
        let mut chain = DriftChain::new(vec![0, 3, 3], n as u32);
        let mut worst = 0u32;
        for _ in 0..horizon {
            chain.step(&mut rng);
            worst = worst.max(chain.distances()[0]);
        }
        max_seen = max_seen.max(worst as f64);
        if (worst as f64) > cap {
            violations += 1;
        }
    }
    println!(
        "Lemma 6 excursions: d={d}, n={n}, horizon={horizon}: max z₀ seen = {max_seen} \
         (cap 12·ln n = {cap:.1}), violations {violations}/{excursion_trials}"
    );
    verdict(
        "Lemma 6: post-zero excursions stay O(log n) over Θ(n²) steps",
        violations == 0,
        &format!("max excursion {max_seen:.0} vs cap {cap:.1}"),
    );
}
