//! Inspect a `cobra-obs/trace-v1` JSONL document.
//!
//! ```text
//! trace_view <trace.jsonl>           # summarize: histograms + waterfall
//! trace_view <trace.jsonl> --check   # validate only (CI trace-smoke)
//! ```
//!
//! The summary shows, from probe events: a trial-length (rounds)
//! histogram, mean draws per round, and the frontier-density curve
//! (mean frontier occupancy by round index); and from harness spans:
//! a waterfall of the orchestrator's cell/batch/retry timing.

use cobra_bench::Json;
use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("trace_view: {msg}");
    std::process::exit(1);
}

/// One parsed span line.
#[derive(Debug)]
struct Span {
    kind: String,
    name: String,
    start_ms: u64,
    end_ms: u64,
}

/// Everything a summary needs, accumulated in one pass over the lines.
#[derive(Debug, Default)]
struct TraceStats {
    events: usize,
    dropped: u64,
    /// Rounds per completed/censored trial, from `trial_end`.
    trial_rounds: Vec<u64>,
    /// (round index → (frontier sum, draws sum, samples)).
    per_round: BTreeMap<u64, (u64, u64, u64)>,
    /// Fault totals by kind string.
    faults: BTreeMap<String, u64>,
    spans: Vec<Span>,
}

/// Required u64 field of an event line; errors name the line.
fn req_u64(ev: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    ev.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("line {lineno}: missing or non-integer field {key:?}"))
}

fn req_str<'a>(ev: &'a Json, key: &str, lineno: usize) -> Result<&'a str, String> {
    ev.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("line {lineno}: missing or non-string field {key:?}"))
}

/// Parse and validate the whole document. Returns the accumulated
/// stats or the first validation error.
fn read_trace(text: &str) -> Result<TraceStats, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace (no header line)")?;
    let header = Json::parse(header).map_err(|e| format!("line 1 (header): {e}"))?;
    let schema = req_str(&header, "schema", 1)?;
    if schema != cobra_obs::TRACE_SCHEMA {
        return Err(format!(
            "unsupported trace schema {schema:?} (expected {:?})",
            cobra_obs::TRACE_SCHEMA
        ));
    }
    let declared = req_u64(&header, "events", 1)?;
    let mut stats = TraceStats {
        dropped: req_u64(&header, "dropped", 1)?,
        ..TraceStats::default()
    };
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line inside JSONL body"));
        }
        let ev = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        stats.events += 1;
        match req_str(&ev, "ev", lineno)? {
            "trial_begin" => {
                req_u64(&ev, "trial", lineno)?;
            }
            "round" => {
                let round = req_u64(&ev, "round", lineno)?;
                let frontier = req_u64(&ev, "frontier", lineno)?;
                let draws = req_u64(&ev, "draws", lineno)?;
                req_u64(&ev, "merged", lineno)?;
                let slot = stats.per_round.entry(round).or_insert((0, 0, 0));
                slot.0 += frontier;
                slot.1 += draws;
                slot.2 += 1;
            }
            "coverage" => {
                req_u64(&ev, "newly", lineno)?;
                req_u64(&ev, "total", lineno)?;
            }
            "fault" => {
                let kind = req_str(&ev, "kind", lineno)?.to_string();
                let count = req_u64(&ev, "count", lineno)?;
                *stats.faults.entry(kind).or_insert(0) += count;
            }
            "trial_end" => {
                let steps = req_u64(&ev, "steps", lineno)?;
                ev.get("completed")
                    .and_then(|v| v.as_bool())
                    .ok_or_else(|| format!("line {lineno}: missing boolean \"completed\""))?;
                stats.trial_rounds.push(steps);
            }
            "span" => {
                let start_ms = req_u64(&ev, "start_ms", lineno)?;
                let end_ms = req_u64(&ev, "end_ms", lineno)?;
                if end_ms < start_ms {
                    return Err(format!("line {lineno}: span ends before it starts"));
                }
                stats.spans.push(Span {
                    kind: req_str(&ev, "kind", lineno)?.to_string(),
                    name: req_str(&ev, "name", lineno)?.to_string(),
                    start_ms,
                    end_ms,
                });
            }
            other => return Err(format!("line {lineno}: unknown event type {other:?}")),
        }
    }
    if stats.events as u64 != declared {
        return Err(format!(
            "header declares {declared} events but the body has {}",
            stats.events
        ));
    }
    Ok(stats)
}

/// Fixed-width histogram of trial lengths (rounds to completion).
fn print_rounds_histogram(rounds: &[u64]) {
    let (min, max) = (*rounds.iter().min().unwrap(), *rounds.iter().max().unwrap());
    let buckets = 8u64.min(max - min + 1);
    let width = (max - min + 1).div_ceil(buckets);
    let mut counts = vec![0usize; buckets as usize];
    for &r in rounds {
        counts[((r - min) / width) as usize] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    println!("rounds histogram ({} trials):", rounds.len());
    for (b, &count) in counts.iter().enumerate() {
        let lo = min + b as u64 * width;
        let hi = (lo + width - 1).min(max);
        let bar = "#".repeat((count * 40).div_ceil(peak));
        println!("  {lo:>6}-{hi:<6} {count:>6} {bar}");
    }
}

/// Mean frontier occupancy and draws by round index.
fn print_round_curves(per_round: &BTreeMap<u64, (u64, u64, u64)>) {
    let total_draws: u64 = per_round.values().map(|v| v.1).sum();
    let total_rounds: u64 = per_round.values().map(|v| v.2).sum();
    println!(
        "draws/round: {:.2} mean over {} observed rounds",
        total_draws as f64 / total_rounds.max(1) as f64,
        total_rounds
    );
    println!("frontier-density curve (mean frontier by round):");
    let peak = per_round
        .values()
        .map(|(f, _, n)| f / n.max(&1))
        .max()
        .unwrap_or(1)
        .max(1);
    // Sample at most 16 rows evenly so deep traces stay readable.
    let keys: Vec<u64> = per_round.keys().copied().collect();
    let step = keys.len().div_ceil(16).max(1);
    for chunk in keys.chunks(step) {
        let round = chunk[0];
        let (f, _, n) = per_round[&round];
        let mean = f as f64 / n.max(1) as f64;
        let bar = "*".repeat(((mean * 40.0) / peak as f64).round() as usize);
        println!("  round {round:>6}: {mean:>10.2} {bar}");
    }
}

/// ASCII waterfall of the harness spans, in start order.
fn print_waterfall(spans: &[Span]) {
    let t0 = spans.iter().map(|s| s.start_ms).min().unwrap_or(0);
    let t1 = spans
        .iter()
        .map(|s| s.end_ms)
        .max()
        .unwrap_or(1)
        .max(t0 + 1);
    let scale = (t1 - t0) as f64;
    println!(
        "span waterfall ({} spans, {} ms total):",
        spans.len(),
        t1 - t0
    );
    let mut order: Vec<&Span> = spans.iter().collect();
    order.sort_by_key(|s| (s.start_ms, s.end_ms));
    for s in order {
        let lead = (((s.start_ms - t0) as f64 / scale) * 48.0).floor() as usize;
        let len = ((((s.end_ms - s.start_ms) as f64) / scale) * 48.0).ceil() as usize;
        println!(
            "  [{}{}{}] {:>6}ms {:<6} {}",
            " ".repeat(lead),
            "=".repeat(len.max(1)),
            " ".repeat(48usize.saturating_sub(lead + len.max(1))),
            s.end_ms - s.start_ms,
            s.kind,
            s.name
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut check = false;
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: trace_view <trace.jsonl> [--check]");
                std::process::exit(2);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let path = path.unwrap_or_else(|| fail("usage: trace_view <trace.jsonl> [--check]"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let stats = read_trace(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    if check {
        println!(
            "ok: {} event(s), {} dropped, {} span(s)",
            stats.events,
            stats.dropped,
            stats.spans.len()
        );
        return;
    }
    println!(
        "{path}: {} event(s), {} dropped",
        stats.events, stats.dropped
    );
    if !stats.trial_rounds.is_empty() {
        print_rounds_histogram(&stats.trial_rounds);
    }
    if !stats.per_round.is_empty() {
        print_round_curves(&stats.per_round);
    }
    if !stats.faults.is_empty() {
        println!("fault totals:");
        for (kind, count) in &stats.faults {
            println!("  {kind:<12} {count}");
        }
    }
    if !stats.spans.is_empty() {
        print_waterfall(&stats.spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_obs::{Probe, TraceDoc, TraceProbe};

    fn sample_doc() -> String {
        let mut probe = TraceProbe::new(64);
        probe.on_trial_begin(0);
        probe.on_draws(8, 3);
        probe.on_round(0, 5);
        probe.on_coverage(5, 6);
        probe.on_trial_end(1, true);
        let mut doc = TraceDoc::new();
        doc.push_probe(&probe);
        doc.push_span("cell", "c@24", 0, 10);
        doc.push_span("batch", "c@24", 2, 7);
        doc.render()
    }

    #[test]
    fn valid_trace_accumulates_stats() {
        let stats = read_trace(&sample_doc()).unwrap();
        assert_eq!(stats.trial_rounds, vec![1]);
        assert_eq!(stats.spans.len(), 2);
        assert_eq!(stats.per_round[&0], (5, 8, 1));
    }

    #[test]
    fn header_event_count_is_enforced() {
        let mut doc = sample_doc();
        doc.push_str("{\"ev\": \"trial_begin\", \"trial\": 9}\n");
        let err = read_trace(&doc).unwrap_err();
        assert!(err.contains("declares"), "{err}");
    }

    #[test]
    fn wrong_schema_and_malformed_lines_are_rejected() {
        let doc = sample_doc().replace("trace-v1", "trace-v9");
        assert!(read_trace(&doc).unwrap_err().contains("schema"));
        let doc = sample_doc().replace("\"frontier\": 5", "\"frontier\": \"x\"");
        assert!(read_trace(&doc).unwrap_err().contains("frontier"));
        let doc = sample_doc() + "not json\n";
        assert!(read_trace(&doc).is_err());
    }
}
