//! **E4 — Corollary 9:** on bounded-degree `d`-regular ε-expanders the
//! 2-cobra walk covers in O(log²n) rounds w.h.p.
//!
//! Random `d`-regular graphs (d ∈ {3, 4}) are expanders w.h.p. with
//! conductance bounded below by a constant, so the cover time should grow
//! like `log²n` — we sweep `n` over an order of magnitude, classify the
//! growth shape, and check the normalized ratio `cover/log²n` is flat.
//! The contrast series (simple random walk, Θ(n log n) on expanders)
//! shows the separation.

use cobra_analysis::compare::{is_bounded_by, ratio_flatness};
use cobra_analysis::growth::{classify_growth, GrowthShape};
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::{CobraWalk, SimpleWalk};
use cobra_sim::sweep::SweepCell;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E4",
        "Corollary 9: 2-cobra covers d-regular expanders in O(log²n)",
        &cfg,
    );

    let spec = ExperimentSpec::from_config(
        "e4",
        "Corollary 9: 2-cobra covers d-regular expanders in O(log\u{b2}n)",
        &cfg,
    );
    let mut orch = Orchestrator::for_run(spec, &cfg);

    let cobra = CobraWalk::standard();
    let ns = cfg.scale(
        vec![128usize, 256, 512, 1024, 2048],
        vec![256, 512, 1024, 2048, 4096, 8192, 16384],
    );

    let mut all_pass = true;
    for d in [3usize, 4] {
        let fam = Family::RandomRegular { d };
        // Typed scratch-engine sweep: one cell per n, each with its own
        // `O(log²n)` budget, exactly as the pre-sweep loop sized them.
        // Lazy iterator so only one cell's graph is alive at a time.
        let cells = ns.iter().enumerate().map(|(i, &n)| {
            let g = fam.build(
                n,
                stage_seed(cfg.seed, "e4", "graphs", (d as u64) * 100 + i as u64),
            );
            let logn = (g.num_vertices() as f64).ln();
            let budget = (300.0 * logn * logn) as usize + 5_000;
            SweepCell::new(g.num_vertices() as f64, g, 0u32).with_budget(budget)
        });
        let mut table = orch
            .cover_sweep(
                format!("cobra(k=2) on {}", fam.name()),
                "n",
                cells,
                &cobra,
                stage_seed(cfg.seed, "e4", "rr-sweep", d as u64),
            )
            .expect("an expander sweep cell completed zero trials — raise the budget");
        for row in &mut table.rows {
            let logn = row.scale.ln();
            row.context.push(("log2n".to_string(), logn * logn));
        }
        emit_table(&cfg, &table, &format!("e4_cobra_d{d}"));

        let xs = table.scales();
        let ys = table.means();
        let (shape, slope) = classify_growth(&xs, &ys);
        println!(
            "growth classification (d={d}): {} (residual slope {slope:+.3})",
            shape.name()
        );
        let log2: Vec<f64> = xs.iter().map(|&x| x.ln() * x.ln()).collect();
        let report = ratio_flatness(&xs, &ys, &log2);
        let pass = matches!(shape, GrowthShape::Log | GrowthShape::LogSquared)
            && is_bounded_by(&report, 0.10);
        all_pass &= pass;
        verdict(
            &format!("Corollary 9 (d={d}): cover ≈ O(log²n)"),
            pass,
            &format!(
                "shape {}, cover/log²n log-slope {:+.3}",
                shape.name(),
                report.log_slope
            ),
        );
        println!();
    }

    // Contrast: simple walk on the d=3 expander is Θ(n log n).
    let fam = Family::RandomRegular { d: 3 };
    let rw_ns = cfg.scale(
        vec![64usize, 128, 256, 512],
        vec![128, 256, 512, 1024, 2048],
    );
    let rw_cells = rw_ns.iter().enumerate().map(|(i, &n)| {
        let g = fam.build(n, stage_seed(cfg.seed, "e4", "rw-graphs", i as u64));
        let nn = g.num_vertices() as f64;
        let budget = (200.0 * nn * nn.ln()) as usize + 10_000;
        SweepCell::new(nn, g, 0u32).with_budget(budget)
    });
    let rw_table = orch
        .cover_sweep(
            "simple-rw on random-regular(d=3)",
            "n",
            rw_cells,
            &SimpleWalk::new(),
            stage_seed(cfg.seed, "e4", "rw-contrast", 0),
        )
        .expect("a contrast sweep cell completed zero trials — raise the budget");
    emit_table(&cfg, &rw_table, "e4_rw_d3");
    let (rw_shape, _) = classify_growth(&rw_table.scales(), &rw_table.means());
    println!("simple-rw growth classification: {}", rw_shape.name());
    verdict(
        "contrast: simple-rw on expanders is ~ n log n (≫ log²n)",
        matches!(rw_shape, GrowthShape::Linear | GrowthShape::NLogN),
        &format!("shape {}", rw_shape.name()),
    );
    verdict("Corollary 9 overall", all_pass, "all degrees polylog");
    println!();
    orch.finish(&cfg);
}
