//! **Adaptive-orchestration perf baseline:** compares the sequential-
//! stopping sweep engine against the fixed-trial plan **at equal
//! precision** and writes `BENCH_adaptive.json`.
//!
//! The workload is a deliberately heterogeneous cover sweep — the shape
//! every real experiment here has:
//!
//! * *easy but expensive* cells (grid/torus/hypercube covers: tightly
//!   concentrated cover times on thousands of vertices), where a fixed
//!   plan burns most of its wall-clock on trials that stop improving the
//!   CI almost immediately;
//! * a *hard but cheap* cell (the lollipop: 48 vertices, heavy-tailed
//!   cover), which is what forces a fixed plan's shared trial count up.
//!
//! Protocol, per cell: run the adaptive engine at relative CI half-width
//! target ε → it consumes `N_c` trials. A fixed-trial design that meets ε
//! on **every** cell must size its shared per-cell count to the hardest
//! cell, `N_fixed = max_c N_c` (that is exactly how the pre-adaptive
//! sweeps here were sized: generous enough for the worst cell). Then
//! time both plans over the whole sweep; the headline number is
//! `wall(fixed at N_fixed) / wall(adaptive)`. Equal precision is
//! verified, not assumed: the fixed run must achieve ≤ ε on every cell
//! the adaptive run did, and both engines' outcomes on the shared trial
//! prefix are asserted bit-identical before timing is trusted.
//!
//! Usage: `bench_adaptive [--quick] [--seed <u64>] [--out <path>]`
//! `--quick` is the CI smoke mode (looser ε, fewer reps, same cells).
//! The full-mode release run enforces the ≥ 1.3× gate (nonzero exit).

use cobra_bench::Family;
use cobra_core::CobraWalk;
use cobra_sim::{
    run_cover_trials_adaptive, run_cover_trials_typed, AdaptivePlan, StopRule, TrialPlan,
};
use std::hint::black_box;
use std::time::Instant;

struct Cell {
    name: &'static str,
    g: cobra_graph::Graph,
    start: u32,
    budget: usize,
}

struct CellResult {
    name: &'static str,
    n: usize,
    adaptive_trials: usize,
    adaptive_rel_half_width: f64,
    adaptive_secs: f64,
    fixed_secs: f64,
    fixed_rel_half_width: f64,
}

fn main() {
    let mut quick = false;
    let mut seed = 0xC0B7Au64;
    let mut out_path = "BENCH_adaptive.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("usage: bench_adaptive [--quick] [--seed <u64>] [--out <path>]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let (rule, warmup, reps) = if quick {
        (StopRule::new(8, 512, 0.10), 1, 3)
    } else {
        (StopRule::new(16, 4096, 0.05), 2, 8)
    };
    let batch = 32;
    let process = CobraWalk::standard();

    let mk = |fam: Family, scale: usize, name: &'static str| {
        let g = fam.build(scale, seed);
        let start = fam.adversarial_start(&g);
        let budget = fam.cobra_cover_budget(scale, g.num_vertices());
        Cell {
            name,
            g,
            start,
            budget,
        }
    };
    // Easy-but-expensive cells first, the hard-but-cheap lollipop last;
    // every real sweep here mixes exactly these two regimes.
    let cells = [
        mk(Family::Grid { d: 2 }, 47, "grid_48x48/cobra_k2/cover"),
        mk(Family::Torus { d: 2 }, 40, "torus_40x40/cobra_k2/cover"),
        mk(Family::Hypercube, 10, "hypercube_1024/cobra_k2/cover"),
        mk(Family::Lollipop, 48, "lollipop_48/cobra_k2/cover"),
    ];

    // --- Pass 1: adaptive trial counts + cross-engine identity ---------
    let master = cobra_sim::SeedSequence::new(seed);
    let plans: Vec<AdaptivePlan> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| AdaptivePlan::new(rule, batch, c.budget, master.child(i as u64).seed_at(0)))
        .collect();
    let adaptive_outs: Vec<_> = cells
        .iter()
        .zip(&plans)
        .map(|(c, p)| run_cover_trials_adaptive(&c.g, &process, c.start, p))
        .collect();
    for (c, (out, plan)) in cells.iter().zip(adaptive_outs.iter().zip(&plans)) {
        assert!(
            out.precision_met,
            "{}: adaptive run hit the {} trial cap before ε — raise the cap",
            c.name, rule.max_trials
        );
        // Identity: the adaptive prefix must equal the fixed plan run at
        // the same count (same seeds, same engine) bit-for-bit.
        let fixed = run_cover_trials_typed(
            &c.g,
            &process,
            c.start,
            &TrialPlan::new(out.trials_run(), plan.max_steps, plan.master_seed),
        );
        assert_eq!(out.summary.count(), fixed.summary.count(), "{}", c.name);
        assert_eq!(out.censored, fixed.censored, "{}", c.name);
        assert_eq!(out.summary.mean(), fixed.summary.mean(), "{}", c.name);
        assert_eq!(out.summary.max(), fixed.summary.max(), "{}", c.name);
    }
    let n_fixed = adaptive_outs
        .iter()
        .map(|o| o.trials_run())
        .max()
        .expect("cells");

    // --- Pass 2: wall-clock, whole sweep, both plans -------------------
    let time_sweep = |f: &dyn Fn() -> usize| -> f64 {
        for _ in 0..warmup {
            black_box(f());
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        t.elapsed().as_secs_f64() / reps as f64
    };
    let adaptive_sweep = || -> usize {
        cells
            .iter()
            .zip(&plans)
            .map(|(c, p)| run_cover_trials_adaptive(&c.g, &process, c.start, p).trials_run())
            .sum()
    };
    let fixed_sweep = || -> usize {
        cells
            .iter()
            .zip(&plans)
            .map(|(c, p)| {
                run_cover_trials_typed(
                    &c.g,
                    &process,
                    c.start,
                    &TrialPlan::new(n_fixed, p.max_steps, p.master_seed),
                )
                .summary
                .count()
            })
            .sum()
    };
    let adaptive_total = time_sweep(&adaptive_sweep);
    let fixed_total = time_sweep(&fixed_sweep);

    // Per-cell breakdown (timed separately, fewer reps needed for the
    // table — the gate uses the whole-sweep numbers above).
    let results: Vec<CellResult> = cells
        .iter()
        .zip(adaptive_outs.iter().zip(&plans))
        .map(|(c, (out, plan))| {
            let t_a = {
                let t = Instant::now();
                for _ in 0..reps {
                    black_box(run_cover_trials_adaptive(&c.g, &process, c.start, plan));
                }
                t.elapsed().as_secs_f64() / reps as f64
            };
            let fixed_plan = TrialPlan::new(n_fixed, plan.max_steps, plan.master_seed);
            let fixed_out = run_cover_trials_typed(&c.g, &process, c.start, &fixed_plan);
            let t_f = {
                let t = Instant::now();
                for _ in 0..reps {
                    black_box(run_cover_trials_typed(&c.g, &process, c.start, &fixed_plan));
                }
                t.elapsed().as_secs_f64() / reps as f64
            };
            let rel = |s: &cobra_sim::Summary| s.ci_half_width(rule.confidence) / s.mean();
            // Equal precision, verified: the fixed plan at N_fixed must
            // meet ε wherever the adaptive run did.
            let fixed_rel = rel(&fixed_out.summary);
            assert!(
                fixed_rel <= rule.rel_precision * 1.05,
                "{}: fixed plan at {n_fixed} trials missed ε ({fixed_rel:.4})",
                c.name
            );
            CellResult {
                name: c.name,
                n: c.g.num_vertices(),
                adaptive_trials: out.trials_run(),
                adaptive_rel_half_width: rel(&out.summary),
                adaptive_secs: t_a,
                fixed_secs: t_f,
                fixed_rel_half_width: fixed_rel,
            }
        })
        .collect();

    let speedup = fixed_total / adaptive_total;
    println!(
        "equal-precision target ε = {:.0}% relative CI half-width at {:.0}% confidence",
        rule.rel_precision * 100.0,
        rule.confidence * 100.0
    );
    println!("fixed-trial plan sized to the hardest cell: N_fixed = {n_fixed} trials/cell\n");
    for r in &results {
        println!(
            "{:30} n={:5}  adaptive {:4} trials ({:5.3}s, rel {:.4})  fixed {:4} trials ({:5.3}s, rel {:.4})  {:4.2}x",
            r.name,
            r.n,
            r.adaptive_trials,
            r.adaptive_secs,
            r.adaptive_rel_half_width,
            n_fixed,
            r.fixed_secs,
            r.fixed_rel_half_width,
            r.fixed_secs / r.adaptive_secs.max(1e-12),
        );
    }
    println!(
        "\nwhole sweep: fixed {fixed_total:.3}s vs adaptive {adaptive_total:.3}s  →  {speedup:.2}x at equal precision"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"cobra-bench/adaptive-v1\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!(
        "  \"rel_precision\": {}, \"confidence\": {}, \"n_fixed\": {n_fixed},\n",
        rule.rel_precision, rule.confidence
    ));
    json.push_str(&format!(
        "  \"fixed_sweep_secs\": {fixed_total:.6}, \"adaptive_sweep_secs\": {adaptive_total:.6}, \"speedup\": {speedup:.3},\n"
    ));
    json.push_str("  \"cells\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"adaptive_trials\": {}, \"fixed_trials\": {n_fixed}, \
             \"adaptive_secs\": {:.6}, \"fixed_secs\": {:.6}, \"adaptive_rel_half_width\": {:.5}, \
             \"fixed_rel_half_width\": {:.5}}}{}\n",
            r.name,
            r.n,
            r.adaptive_trials,
            r.adaptive_secs,
            r.fixed_secs,
            r.adaptive_rel_half_width,
            r.fixed_rel_half_width,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    cobra_sim::write_atomic_str(std::path::Path::new(&out_path), &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    // Acceptance gate: adaptive must beat the equal-precision fixed plan
    // by ≥ 1.3× wall-clock on the sweep. Enforced (nonzero exit) only for
    // full-mode release runs — quick mode's few reps and debug builds are
    // too noisy to gate on, so they just warn.
    if speedup < 1.3 {
        eprintln!("WARNING: equal-precision speedup {speedup:.2}x below the 1.3x gate");
        if !quick && !cfg!(debug_assertions) {
            std::process::exit(1);
        }
    }
}
