//! **E16 — fault-model degradation:** Theorem 3's O(n) grid-cover
//! behavior degrades gracefully under the fault model instead of
//! collapsing to random-walk-like cover times.
//!
//! Sweep the side extent of the 2-d grid for the 2-cobra walk under
//! per-round pebble-loss probability `p ∈ {0, 0.01, 0.05, 0.1, 0.2}`,
//! fit the growth exponent per loss level, and additionally measure
//! three structured fault regimes on a fixed grid: crash/recovery
//! (vertex outage windows), delayed pebble delivery (bounded in-flight
//! queue), and an adversarial deletion wave combined with background
//! loss. Verify:
//!
//! * fault-free (`p = 0`) the cover exponent matches E1 (≈ 1), and the
//!   fault-free mean on the smallest cell sits inside the spectral
//!   sandwich `log2(n) ≤ mean ≤ h_max · (1 + ln n)` (the lower bound is
//!   the doubling limit of a 2-cobra frontier, the upper is the Matthews
//!   bound on the *simple* walk computed exactly by `cobra-spectral`,
//!   which empirically dominates the cobra walk);
//! * losing up to 20% of pebbles inflates cover times but keeps the
//!   fitted exponent well below quadratic (graceful degradation);
//! * cover time is monotone in the loss rate at the largest side;
//! * all three structured regimes complete with finite means.
//!
//! Crash-safety flags (shared with every e-binary): `--resume` continues
//! an interrupted run bit-identically from its checkpoint, and
//! `--halt-after-checkpoints <n>` deterministically interrupts the run
//! (exit 3) for the kill-and-resume tests. `--poison-cell <key>` injects
//! a panic into the named cell (`"{sweep}@{scale}"`) to exercise the
//! quarantine path: the cell is recorded `failed` in the manifest and
//! the run continues.

use cobra_bench::report::{banner, emit_table, fit_and_report, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{CellOutcome, ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::{FaultPlan, FaultyCobraWalk};
use cobra_graph::Graph;
use cobra_sim::sweep::{SweepCell, SweepTable};

/// The pebble-loss levels of the degradation sweep.
const LOSSES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];

/// One loss level's cover sweep on the d=2 grid. Budgets grow with the
/// loss rate: thinned frontiers cover slower, and fully extinguished
/// trials (possible at high loss) must censor at the cap instead of
/// starving the cell.
fn loss_sweep(
    orch: &mut Orchestrator,
    cfg: &ExpConfig,
    sides: &[usize],
    arm: usize,
    p: f64,
) -> SweepTable {
    let family = Family::Grid { d: 2 };
    let process = FaultyCobraWalk::new(2, FaultPlan::none().with_pebble_loss(p));
    let cells = sides.iter().enumerate().map(|(i, &side)| {
        let g = family.build(side, stage_seed(cfg.seed, "e16", "graphs", i as u64));
        let start = family.adversarial_start(&g);
        let budget = (8_000 + 1_500 * side) * if p > 0.0 { 4 } else { 1 };
        SweepCell::new(side as f64, g, start).with_budget(budget)
    });
    let label = format!("cobra(k=2) loss={p} on grid d=2");
    orch.cover_sweep(
        label,
        "n",
        cells,
        &process,
        stage_seed(cfg.seed, "e16", "loss-sweep", arm as u64),
    )
    .expect("a loss-sweep cell completed zero trials — raise the step budget")
}

/// A structured fault regime measured as one cover cell on a fixed grid.
struct Regime {
    name: &'static str,
    plan: FaultPlan,
}

fn regimes(side: usize) -> Vec<Regime> {
    // Outage/deletion targets are interior vertices of the side×side
    // grid (row-major indexing); windows are early rounds, when the
    // frontier is still small and the fault actually bites.
    let mid = (side / 2) * side + side / 2;
    vec![
        Regime {
            name: "crash-recovery",
            plan: FaultPlan::none()
                .with_outage(mid as u32, 3, 12)
                .with_outage(1, 5, 20),
        },
        Regime {
            name: "delayed-delivery",
            plan: FaultPlan::none().with_delay(0.3, 64),
        },
        Regime {
            name: "adversarial-wave",
            plan: FaultPlan::none()
                .with_pebble_loss(0.05)
                .with_deletion_wave(8, (0..side as u32).collect()),
        },
    ]
}

/// Exact spectral sandwich on the fault-free smallest cell:
/// `log2(n) ≤ mean ≤ h_max · (1 + ln n)`.
fn spectral_sandwich(g: &Graph, mean: f64) -> (f64, f64, bool) {
    let n = g.num_vertices() as f64;
    let lower = n.log2();
    let upper = cobra_spectral::exact::exact_hmax(g) * (1.0 + n.ln());
    (lower, upper, lower <= mean && mean <= upper)
}

fn main() {
    // --poison-cell is e16-specific; strip it before the shared parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut poison: Option<String> = None;
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == "--poison-cell" {
            raw.remove(i);
            if i >= raw.len() {
                eprintln!("--poison-cell needs a cell key (\"{{sweep}}@{{scale}}\")");
                std::process::exit(2);
            }
            poison = Some(raw.remove(i));
        } else {
            i += 1;
        }
    }
    let cfg = match ExpConfig::parse(raw) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("e16 extra: [--poison-cell <sweep@scale>]");
            std::process::exit(2);
        }
    };
    banner(
        "E16",
        "Theorem 3's O(n) grid cover degrades gracefully under pebble loss, crashes, \
         delays, and deletions",
        &cfg,
    );
    let spec = ExperimentSpec::from_config(
        "e16",
        "grid cover degrades gracefully under the fault model",
        &cfg,
    );
    let mut orch = Orchestrator::for_run(spec, &cfg);
    if let Some(key) = poison {
        println!("(fault injection armed: cell {key:?} will panic)");
        orch.poison_cell(key);
    }

    // --- Degradation sweep: pebble loss on the d=2 grid ----------------
    let sides = cfg.scale(vec![6usize, 8, 12], vec![8, 12, 16, 24, 32]);
    let mut fits = Vec::new();
    let mut largest_means = Vec::new();
    let mut p0_smallest_mean = f64::NAN;
    for (arm, &p) in LOSSES.iter().enumerate() {
        let t = loss_sweep(&mut orch, &cfg, &sides, arm, p);
        emit_table(&cfg, &t, &format!("e16_loss_{arm}"));
        let fit = fit_and_report(&t);
        if let Some(last) = t.rows.last() {
            largest_means.push((p, last.mean));
        }
        if p == 0.0 {
            if let Some(first) = t.rows.first() {
                p0_smallest_mean = first.mean;
            }
        }
        fits.push((p, fit));
    }

    // --- Spectral cross-check on the fault-free column -----------------
    let g0 = Family::Grid { d: 2 }.build(sides[0], cfg.seed);
    let (lower, upper, sandwich_ok) = spectral_sandwich(&g0, p0_smallest_mean);
    println!(
        "spectral sandwich at p=0, n={}: {lower:.2} ≤ mean {p0_smallest_mean:.2} ≤ {upper:.2}\n",
        g0.num_vertices()
    );

    // --- Structured fault regimes --------------------------------------
    let regime_side = cfg.scale(8usize, 16);
    let family = Family::Grid { d: 2 };
    let g = family.build(regime_side, cfg.seed);
    let start = family.adversarial_start(&g);
    let n = g.num_vertices() as f64;
    let budget = (8_000 + 1_500 * regime_side) * 4;
    let mut regime_means = Vec::new();
    let mut regime_failures = Vec::new();
    for (arm, regime) in regimes(regime_side).into_iter().enumerate() {
        let process = FaultyCobraWalk::new(2, regime.plan);
        let sweep_name = format!("regime {}", regime.name);
        let outcome = match orch.try_cover_cell(
            &sweep_name,
            regime_side as f64,
            &g,
            &process,
            start,
            budget,
            stage_seed(cfg.seed, "e16", "regimes", arm as u64),
        ) {
            Ok(o) => o,
            Err(i) => i.exit(),
        };
        match outcome {
            CellOutcome::Done(out) => {
                let mean = out.summary.try_mean().unwrap_or(f64::NAN);
                println!(
                    "regime {:<18} mean cover {:>10.2}  ({} trials, {} censored)",
                    regime.name,
                    mean,
                    out.trials_run(),
                    out.censored
                );
                regime_means.push((regime.name, mean));
            }
            CellOutcome::Failed(e) => {
                println!("regime {:<18} QUARANTINED: {e}", regime.name);
                regime_failures.push(regime.name);
            }
        }
    }
    println!();
    orch.finish(&cfg);
    println!();

    // --- Verdicts ------------------------------------------------------
    let p0_fit = &fits[0].1;
    verdict(
        "fault-free column reproduces Theorem 3: cover exponent ≈ 1",
        p0_fit.slope < 1.30 && p0_fit.r_squared > 0.9,
        &format!("exponent {:.3}, R² {:.3}", p0_fit.slope, p0_fit.r_squared),
    );
    verdict(
        "spectral cross-check (p=0): mean inside [log2 n, h_max·(1+ln n)]",
        sandwich_ok,
        &format!("{lower:.2} ≤ {p0_smallest_mean:.2} ≤ {upper:.2}"),
    );
    let max_slope = fits
        .iter()
        .map(|(_, f)| f.slope)
        .fold(f64::NEG_INFINITY, f64::max);
    verdict(
        "graceful degradation: exponent stays sub-quadratic up to 20% loss",
        fits.iter().all(|(_, f)| f.slope < 2.0),
        &format!("worst exponent {max_slope:.3}"),
    );
    let monotone = largest_means
        .windows(2)
        .all(|w| w[1].1 >= w[0].1 * 0.95 && w[1].1.is_finite());
    verdict(
        "cover time is monotone in the loss rate (largest side, 5% slack)",
        monotone && largest_means.len() == LOSSES.len(),
        &format!(
            "means by loss: {}",
            largest_means
                .iter()
                .map(|(p, m)| format!("p={p}: {m:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );
    verdict(
        "structured regimes (crash/recovery, delay, adversarial) complete sanely",
        regime_failures.is_empty()
            && regime_means.len() == 3
            && regime_means
                .iter()
                .all(|(_, m)| m.is_finite() && *m >= n.log2()),
        &format!(
            "{}{}",
            regime_means
                .iter()
                .map(|(r, m)| format!("{r}: {m:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            if regime_failures.is_empty() {
                String::new()
            } else {
                format!("; quarantined: {}", regime_failures.join(", "))
            }
        ),
    );
}
