//! **E13 — ablation of Walt's design choices (§4):**
//!
//! * **laziness** — the paper makes Walt lazy "for technical reasons"
//!   (the directed Cheeger machinery needs it). Dynamically the lazy coin
//!   should cost almost exactly 2× in cover time and nothing else;
//! * **three-pebble threshold** — the herd rule only activates at 3+
//!   co-located pebbles. Lowering it to 2 couples pairs too and should
//!   slow coverage (it weakens scattering) but not break it;
//! * **pebble budget δ** — the analysis wants δn pebbles; fewer pebbles
//!   degrade gracefully toward multi-walk behavior.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::WaltProcess;
use cobra_sim::runner::{run_cover_trials, TrialPlan};

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E13",
        "ablation: Walt laziness, coalescence threshold, and pebble fraction δ",
        &cfg,
    );

    let trials = cfg.scale(40, 150);
    let cases: Vec<(Family, usize)> = vec![
        (Family::Hypercube, cfg.scale(7, 10)),
        (Family::RandomRegular { d: 4 }, cfg.scale(256, 1024)),
    ];

    let mut lazy_ratio_ok = true;
    let mut threshold_ok = true;
    let mut delta_monotone_ok = true;

    for (c, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e13", "graphs", c as u64));
        let n = g.num_vertices();
        let budget = 3000 * ((n as f64).ln() as usize + 1) * 10 + 200_000;
        println!("### {} (n = {n})\n", fam.name());

        let measure = |proc_: &WaltProcess, tag: u64| -> f64 {
            let out = run_cover_trials(
                &g,
                proc_,
                0,
                &TrialPlan::new(trials, budget, stage_seed(cfg.seed, "e13", "ablation", tag)),
            );
            assert_eq!(out.censored, 0, "raise budget");
            out.summary.mean()
        };

        // Laziness.
        let lazy = measure(&WaltProcess::standard(0.5), (c * 100) as u64);
        let eager = measure(
            &WaltProcess::standard(0.5).lazy(false),
            (c * 100 + 1) as u64,
        );
        let ratio = lazy / eager;
        println!("laziness: lazy {lazy:.1} vs eager {eager:.1} → ratio {ratio:.2} (expect ≈ 2)");
        lazy_ratio_ok &= (1.6..=2.4).contains(&ratio);

        // Threshold 3 (paper) vs 2.
        let thr3 = measure(
            &WaltProcess::standard(0.5).lazy(false),
            (c * 100 + 2) as u64,
        );
        let thr2 = measure(
            &WaltProcess::standard(0.5).lazy(false).threshold(2),
            (c * 100 + 3) as u64,
        );
        println!("threshold: thr=3 {thr3:.1} vs thr=2 {thr2:.1} (herding pairs should not help)");
        threshold_ok &= thr2 >= thr3 * 0.9;

        // Pebble fraction sweep.
        print!("δ sweep:");
        let mut prev = f64::INFINITY;
        let mut monotone = true;
        for (j, delta) in [0.05f64, 0.125, 0.25, 0.5].iter().enumerate() {
            let t = measure(
                &WaltProcess::standard(*delta).lazy(false),
                (c * 100 + 10 + j) as u64,
            );
            print!("  δ={delta}: {t:.1}");
            // Allow 10% noise in the monotonicity check.
            if t > prev * 1.10 {
                monotone = false;
            }
            prev = t;
        }
        println!("\n");
        delta_monotone_ok &= monotone;
    }

    verdict(
        "laziness costs ≈ 2× and nothing else",
        lazy_ratio_ok,
        "lazy/eager cover ratio within [1.6, 2.4]",
    );
    verdict(
        "three-pebble threshold: herding pairs (thr=2) never speeds coverage",
        threshold_ok,
        "thr=2 ≥ 0.9 × thr=3",
    );
    verdict(
        "more pebbles help monotonically (δ sweep)",
        delta_monotone_ok,
        "cover time non-increasing in δ up to 10% noise",
    );
}
