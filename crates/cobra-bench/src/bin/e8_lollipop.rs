//! **E8 — Theorem 20:** on *general* graphs the 2-cobra walk's cover time
//! is O(n^{11/4}·log n) — strictly inside the simple walk's Θ(n³)
//! worst case.
//!
//! The witness family is the lollipop graph (clique of n/2 + path of
//! n/2), the standard Θ(n³)-cover-time instance for the simple walk. We
//! sweep n, measure both processes from the adversarial start (the far
//! end of the path for the RW; for the cobra the clique side is the hard
//! direction since the walk must push down the handle), and check:
//!
//! * simple-walk exponent ≈ 3;
//! * cobra exponent strictly below 2.75 (the paper's 11/4);
//! * cobra is absolutely faster at every measured size.

use cobra_analysis::bootstrap::bootstrap_exponent_ci;
use cobra_analysis::fit::power_law_fit;
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::{CobraWalk, SimpleWalk};
use cobra_sim::sweep::{SweepRow, SweepTable};
use cobra_sim::StopRule;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E8",
        "Theorem 20: cobra cover on general graphs is O(n^{11/4} log n) — beats the RW's Θ(n³) lollipop",
        &cfg,
    );

    // Lollipop cells are the workspace's most expensive (n\u{b3}-scale
    // step budgets), so cap the adaptive envelope at a modest multiple
    // of the old fixed plan instead of the run-wide default.
    let rule = if cfg.full {
        StopRule::new(20, 120, 0.02)
    } else if cfg.quick {
        StopRule::new(5, 15, 0.20)
    } else {
        StopRule::new(10, 60, 0.04)
    };
    let spec = ExperimentSpec::from_config(
        "e8",
        "Theorem 20: cobra cover on general graphs beats the RW's lollipop n\u{b3}",
        &cfg,
    )
    .with_rule(rule);
    let mut orch = Orchestrator::for_run(spec, &cfg);

    let fam = Family::Lollipop;
    let ns = cfg.scale(
        vec![32usize, 48, 64, 96, 128, 192],
        vec![48, 64, 96, 128, 192, 256, 384],
    );
    let cobra = CobraWalk::standard();
    let rw = SimpleWalk::new();

    let mut t_cobra = SweepTable::new("cobra(k=2) cover on lollipop", "n");
    let mut t_rw = SweepTable::new("simple-rw cover on lollipop", "n");
    for (i, &n) in ns.iter().enumerate() {
        let g = fam.build(n, 0);
        let start = fam.adversarial_start(&g); // clique interior
        let nf = n as f64;
        // RW needs ~ n³/4 steps; budget 1.5 n³ + slack. Cobra far less.
        let rw_budget = (1.5 * nf * nf * nf) as usize + 200_000;
        let cobra_budget = (4.0 * nf * nf * nf.ln()) as usize + 100_000;

        let out_c = orch.cover_cell(
            "cobra(k=2) cover on lollipop",
            nf,
            &g,
            &cobra,
            start,
            cobra_budget,
            stage_seed(cfg.seed, "e8", "cobra", i as u64),
        );
        t_cobra.push(SweepRow::from_summary(nf, &out_c.summary, out_c.censored));

        let out_r = orch.cover_cell(
            "simple-rw cover on lollipop",
            nf,
            &g,
            &rw,
            start,
            rw_budget,
            stage_seed(cfg.seed, "e8", "rw", i as u64),
        );
        t_rw.push(SweepRow::from_summary(nf, &out_r.summary, out_r.censored));
    }
    emit_table(&cfg, &t_cobra, "e8_cobra");
    emit_table(&cfg, &t_rw, "e8_rw");

    let fit_c = power_law_fit(&t_cobra.scales(), &t_cobra.means());
    // The RW's n³ regime emerges slowly (the clique-escape term dominates
    // only once n is large); judge its exponent on the upper half of the
    // sweep, and additionally report the local exponent between the two
    // largest sizes.
    let half = t_rw.rows.len() / 2;
    let rw_xs: Vec<f64> = t_rw.scales()[half..].to_vec();
    let rw_ys: Vec<f64> = t_rw.means()[half..].to_vec();
    let fit_r = power_law_fit(&rw_xs, &rw_ys);
    let last = t_rw.rows.len() - 1;
    let local_exp = (t_rw.means()[last] / t_rw.means()[last - 1]).ln()
        / (t_rw.scales()[last] / t_rw.scales()[last - 1]).ln();
    let mut rng = StdRng::seed_from_u64(stage_seed(cfg.seed, "e8", "bootstrap", 0));
    let (c_lo, c_hi) =
        bootstrap_exponent_ci(&t_cobra.scales(), &t_cobra.means(), 600, 0.95, &mut rng);
    let (r_lo, r_hi) = bootstrap_exponent_ci(&rw_xs, &rw_ys, 600, 0.95, &mut rng);
    println!("simple-rw local exponent between the two largest n: {local_exp:.3}");

    println!(
        "cobra cover exponent: {:.3} (95% CI [{:.3}, {:.3}]), R² {:.4}",
        fit_c.slope, c_lo, c_hi, fit_c.r_squared
    );
    println!(
        "simple-rw cover exponent: {:.3} (95% CI [{:.3}, {:.3}]), R² {:.4}",
        fit_r.slope, r_lo, r_hi, fit_r.r_squared
    );
    println!();

    verdict(
        "baseline: simple-rw cover on lollipop approaches ~ n³ (upper-half exponent > 2.5)",
        fit_r.slope > 2.5,
        &format!(
            "upper-half exponent {:.3}, local exponent {local_exp:.3}",
            fit_r.slope
        ),
    );
    verdict(
        "Theorem 20: cobra exponent < 11/4 = 2.75",
        c_hi < 2.75,
        &format!("95% CI upper end {c_hi:.3}"),
    );
    let all_faster = t_cobra
        .means()
        .iter()
        .zip(t_rw.means())
        .all(|(&c, r)| c < r);
    verdict(
        "cobra absolutely faster than the RW at every measured n",
        all_faster,
        "pointwise comparison of means",
    );
    let gap = fit_r.slope - fit_c.slope;
    verdict(
        "polynomial separation (exponent gap > 0.25)",
        gap > 0.25,
        &format!("gap {gap:.3}"),
    );
    println!();
    orch.finish(&cfg);
}
