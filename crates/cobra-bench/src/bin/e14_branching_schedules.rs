//! **E14 — extension (§1's open variation):** branching that varies by
//! time step, by randomness, or by vertex.
//!
//! The paper: *"One could further study variations where the branching
//! varied based on the vertex or the time step, or was governed by a
//! random distribution; we do not do that here."* We do it here:
//! schedules with the **same mean branching E\[k\] = 2** are compared
//! against the fixed 2-cobra walk on three graph families, asking whether
//! the mean is the governing quantity — plus a vertex-dependent
//! (degree-scaled) schedule that concentrates branching at hubs.

use cobra_bench::report::{banner, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, Family};
use cobra_core::{BranchingSchedule, Process, ScheduledCobraWalk};
use cobra_sim::runner::{run_cover_trials, TrialPlan};

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E14",
        "extension: time-varying / random / vertex-dependent branching at equal mean E[k]=2",
        &cfg,
    );

    let trials = cfg.scale(30, 100);
    let schedules = [
        BranchingSchedule::Fixed(2),
        BranchingSchedule::Alternating { even: 1, odd: 3 },
        BranchingSchedule::Alternating { even: 3, odd: 1 },
        BranchingSchedule::Bernoulli {
            base: 1,
            extra_prob: 1.0,
        }, // degenerate = fixed 2
        BranchingSchedule::Bernoulli {
            base: 1,
            extra_prob: 0.5,
        }, // mean 1.5
    ];

    let cases: Vec<(Family, usize)> = vec![
        (Family::Grid { d: 2 }, cfg.scale(16, 32)),
        (Family::RandomRegular { d: 4 }, cfg.scale(256, 1024)),
        (Family::Star, cfg.scale(256, 1024)),
    ];

    let mut equal_mean_close = true;
    let mut lower_mean_slower = true;
    let mut star_phase_gap = 0.0f64;
    for (c, (fam, scale)) in cases.iter().enumerate() {
        let g = fam.build(*scale, stage_seed(cfg.seed, "e14", "graphs", c as u64));
        let n = g.num_vertices();
        let start = fam.adversarial_start(&g);
        println!("### {} (n = {n})\n", fam.name());
        println!("| schedule | E[k] | cover mean | cover p95 |");
        println!("|----------|------|------------|-----------|");
        let mut means = Vec::new();
        for (i, sched) in schedules.iter().enumerate() {
            let process = ScheduledCobraWalk::new(*sched);
            let budget = 3000 * n + 500_000;
            let out = run_cover_trials(
                &g,
                &process,
                start,
                &TrialPlan::new(
                    trials,
                    budget,
                    stage_seed(cfg.seed, "e14", "cover", (c * 10 + i) as u64),
                ),
            );
            assert_eq!(
                out.censored,
                0,
                "{} {}: raise budget",
                fam.name(),
                process.name()
            );
            means.push(out.summary.mean());
            println!(
                "| {} | {} | {:.1} | {:.1} |",
                sched.name(),
                sched.mean_branching(4),
                out.summary.mean(),
                out.summary.quantile(0.95)
            );
        }
        println!();
        let equal_mean = &means[0..4];
        let max = equal_mean.iter().cloned().fold(f64::MIN, f64::max);
        let min = equal_mean.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "equal-mean schedules spread: {:.2}× (max {max:.1} / min {min:.1})\n",
            max / min
        );
        if matches!(fam, Family::Star) {
            // Finding: the star is 2-periodic (hub occupied on even
            // rounds), so alternation phase matters enormously — means[1]
            // is alt(1,3) (weak at the hub), means[2] is alt(3,1).
            star_phase_gap = means[1] / means[2];
        } else {
            // On aperiodic-ish families E[k] should govern: mean-2
            // schedules agree within ~1.6×, and mean-1.5 is slower than
            // all of them.
            equal_mean_close &= max / min < 1.6;
            lower_mean_slower &= means[4] > max;
        }
    }

    // Degree-scaled branching on the star: branching at the hub is what
    // matters there — compare fixed(2) vs hub-heavy schedule at matched
    // *hub* branching.
    let g = Family::Star.build(cfg.scale(256, 1024), 0);
    let start = 0u32;
    let heavy = ScheduledCobraWalk::new(BranchingSchedule::DegreeScaled {
        divisor: 64,
        max_k: 4,
    });
    let fixed = ScheduledCobraWalk::new(BranchingSchedule::Fixed(2));
    let budget = 3000 * g.num_vertices() + 500_000;
    let out_h = run_cover_trials(
        &g,
        &heavy,
        start,
        &TrialPlan::new(
            trials,
            budget,
            stage_seed(cfg.seed, "e14", "star-branching", 0),
        ),
    );
    let out_f = run_cover_trials(
        &g,
        &fixed,
        start,
        &TrialPlan::new(
            trials,
            budget,
            stage_seed(cfg.seed, "e14", "star-branching", 1),
        ),
    );
    println!(
        "star, vertex-dependent branching: degree-scaled (hub k=4, leaves k=1) covers in {:.1} \
         vs fixed-2 {:.1}",
        out_h.summary.mean(),
        out_f.summary.mean()
    );
    let hub_focus_wins = out_h.summary.mean() < out_f.summary.mean();

    println!();
    verdict(
        "on aperiodic families, E[k] governs: equal-mean schedules within 1.6×",
        equal_mean_close,
        "grid + expander",
    );
    verdict(
        "lower mean branching (1.5) is strictly slower on aperiodic families",
        lower_mean_slower,
        "monotonicity in E[k]",
    );
    verdict(
        "finding: on periodic graphs the schedule PHASE matters — star alt(1,3) ≫ alt(3,1)",
        star_phase_gap > 2.0,
        &format!(
            "alt(1,3)/alt(3,1) = {star_phase_gap:.2}× (hub is occupied on even rounds; \
             branching there is what counts)"
        ),
    );
    verdict(
        "vertex-dependent branching helps where branching is bottlenecked (star hub)",
        hub_focus_wins,
        &format!("{:.1} vs {:.1}", out_h.summary.mean(), out_f.summary.mean()),
    );
}
