//! **E3 — Theorem 8:** a 2-cobra walk covers a bounded-degree `d`-regular
//! graph with conductance `Φ` in `O(d⁴·Φ⁻²·log²n)` rounds w.h.p.
//!
//! Families spanning two orders of magnitude in conductance:
//!
//! * hypercube (Φ = 1/dim exactly);
//! * 2-d torus (Φ = Θ(1/side));
//! * ring of cliques (Φ = Θ(1/(cliques·size)));
//! * random 4-regular graphs (Φ = Θ(1)).
//!
//! For each instance we record the measured cover time and the bound
//! parameter `Φ⁻²·log²n`; the claim passes when the normalized ratio
//! `cover / (Φ⁻²·log²n)` does not grow with the parameter (log-slope
//! ≤ small tolerance), i.e. the bound's *shape* holds across families.

use cobra_analysis::compare::{is_bounded_by, ratio_flatness};
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::CobraWalk;
use cobra_graph::Graph;
use cobra_sim::sweep::{SweepRow, SweepTable};
use cobra_spectral::laplacian::spectral_sweep_conductance;

struct Cell {
    family: String,
    n: usize,
    phi: f64,
    cover_mean: f64,
    cover_p95: f64,
}

fn conductance_of(cfg_full: bool, fam: &Family, scale: usize, g: &Graph) -> f64 {
    if let Some(phi) = fam.exact_conductance(scale) {
        return phi;
    }
    // Spectral sweep-cut estimate (Cheeger quality).
    let iters = if cfg_full { 60_000 } else { 20_000 };
    spectral_sweep_conductance(g, iters, 1e-11).expect("connected graph with edges")
}

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E3",
        "Theorem 8: cover time of 2-cobra on d-regular graphs is O(d⁴·Φ⁻²·log²n)",
        &cfg,
    );

    let spec = ExperimentSpec::from_config(
        "e3",
        "Theorem 8: cobra cover on d-regular graphs is O(d\u{2074}\u{b7}\u{3a6}\u{207b}\u{b2}\u{b7}log\u{b2}n)",
        &cfg,
    );
    let mut orch = Orchestrator::for_run(spec, &cfg);

    let cobra = CobraWalk::standard();
    let mut cells: Vec<Cell> = Vec::new();

    let sweeps: Vec<(Family, Vec<usize>)> = vec![
        (
            Family::Hypercube,
            cfg.scale(vec![4, 6, 8, 10], vec![6, 8, 10, 12, 14]),
        ),
        (
            Family::Torus { d: 2 },
            cfg.scale(vec![6, 10, 16, 24], vec![8, 16, 24, 32, 48]),
        ),
        (
            Family::RingOfCliques { size: 6 },
            cfg.scale(vec![4, 8, 12, 16], vec![8, 16, 24, 32, 48]),
        ),
        (
            Family::RandomRegular { d: 4 },
            cfg.scale(vec![64, 128, 256, 512], vec![128, 256, 512, 1024, 2048]),
        ),
    ];

    for (fam, scales) in &sweeps {
        let mut table = SweepTable::new(format!("cobra(k=2) on {}", fam.name()), "scale");
        for (i, &scale) in scales.iter().enumerate() {
            let g = fam.build(scale, stage_seed(cfg.seed, "e3", "graphs", i as u64));
            let n = g.num_vertices();
            let phi = conductance_of(cfg.full, fam, scale, &g);
            let logn = (n as f64).ln();
            let param = logn * logn / (phi * phi);
            // Budget: generous multiple of the bound parameter.
            let budget = (40.0 * param) as usize + 20_000;
            let out = orch.cover_cell(
                &format!("cobra(k=2) on {}", fam.name()),
                scale as f64,
                &g,
                &cobra,
                fam.adversarial_start(&g),
                budget,
                stage_seed(cfg.seed, "e3", "cover-cells", i as u64),
            );
            let row = SweepRow::from_summary(scale as f64, &out.summary, out.censored)
                .with_context("n", n as f64)
                .with_context("phi", phi)
                .with_context("bound_param", param);
            cells.push(Cell {
                family: fam.name(),
                n,
                phi,
                cover_mean: row.mean,
                // Already computed by the row's single sort; don't pay a
                // second clone-and-sort for the same order statistic.
                cover_p95: row.p95,
            });
            table.push(row);
        }
        emit_table(
            &cfg,
            &table,
            &format!("e3_{}", fam.name().replace(['(', ')', '=', ','], "_")),
        );
    }

    // Cross-family ratio test against the bound parameter Φ⁻²·log²n.
    println!("Cross-family normalized ratios (cover / (Φ⁻²·log²n)):\n");
    println!("| family | n | Φ | bound param | cover mean | ratio |");
    println!("|--------|---|---|-------------|------------|-------|");
    let mut params = Vec::new();
    let mut covers = Vec::new();
    for c in &cells {
        let logn = (c.n as f64).ln();
        let param = logn * logn / (c.phi * c.phi);
        params.push(param);
        covers.push(c.cover_mean.max(1.0));
        println!(
            "| {} | {} | {:.4} | {:.1} | {:.1} | {:.4} |",
            c.family,
            c.n,
            c.phi,
            param,
            c.cover_mean,
            c.cover_mean / param
        );
    }
    println!();
    // Sort by parameter for the flatness fit.
    let mut idx: Vec<usize> = (0..params.len()).collect();
    idx.sort_by(|&a, &b| params[a].partial_cmp(&params[b]).unwrap());
    let xs: Vec<f64> = idx.iter().map(|&i| params[i]).collect();
    let ys: Vec<f64> = idx.iter().map(|&i| covers[i]).collect();
    let report = ratio_flatness(&xs, &ys, &xs);
    println!(
        "ratio log-slope vs bound parameter: {:+.3} (≤ 0 means the Φ⁻²log²n shape upper-bounds growth)",
        report.log_slope
    );
    verdict(
        "Theorem 8: cover = O(Φ⁻²·log²n) shape across families",
        is_bounded_by(&report, 0.15),
        &format!(
            "ratio log-slope {:+.3}, spread {:.2}×",
            report.log_slope, report.spread
        ),
    );

    // w.h.p. check: p95 should track the mean within a small factor.
    let worst_tail = cells
        .iter()
        .map(|c| c.cover_p95 / c.cover_mean.max(1.0))
        .fold(0.0f64, f64::max);
    verdict(
        "Theorem 8 (w.h.p.): p95/mean stays a small constant",
        worst_tail < 3.0,
        &format!("worst p95/mean = {worst_tail:.2}"),
    );
    println!();
    orch.finish(&cfg);
}
