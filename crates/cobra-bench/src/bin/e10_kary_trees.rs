//! **E10 — §3 closing remark & conjecture:** 2-cobra walks on `k`-ary
//! trees cover in time proportional to the tree's diameter for
//! `k ∈ {2, 3}` (shown via the Lemma 2 multi-step case analysis), and
//! conjectured for every constant `k`.
//!
//! We sweep depth for `k ∈ {2, 3, 4, 5}`, measure cover time, and fit
//! cover against the diameter `2·depth`. Proportional-to-diameter means
//! the cover/diameter ratio may depend on `k` but not on the depth:
//! log-slope of the ratio vs diameter ≈ 0. (Note the number of vertices
//! grows exponentially in the diameter, so "∝ diameter" is an extremely
//! strong claim: it is cover ∝ log n.)

use cobra_analysis::compare::ratio_flatness;
use cobra_bench::report::{banner, emit_table, verdict};
use cobra_bench::stages::stage_seed;
use cobra_bench::{ExpConfig, ExperimentSpec, Family, Orchestrator};
use cobra_core::CobraWalk;
use cobra_sim::sweep::{SweepRow, SweepTable};
use cobra_sim::StopRule;

fn main() {
    let cfg = ExpConfig::from_env();
    banner(
        "E10",
        "§3 remark/conjecture: k-ary tree cover time ∝ diameter (k=2,3 shown; all k conjectured)",
        &cfg,
    );

    // Tree cover/diameter ratios sit within noise of the 0.15 flatness
    // threshold at reachable depths (a c\u{b7}diam law and c\u{b7}diam\u{b7}log(diam)
    // are nearly indistinguishable), so changing the sample size moves
    // the measured log-slope across the line in either direction. Pin
    // the historical per-cell sample exactly (min = max) so the recorded
    // verdicts stay comparable across PRs; quick mode keeps the small
    // adaptive envelope.
    let rule = if cfg.full {
        StopRule::new(80, 80, 0.02)
    } else if cfg.quick {
        StopRule::new(6, 20, 0.20)
    } else {
        StopRule::new(25, 25, 0.04)
    };
    let spec = ExperimentSpec::from_config(
        "e10",
        "\u{a7}3 remark/conjecture: k-ary tree cover time \u{221d} diameter",
        &cfg,
    )
    .with_rule(rule);
    let mut orch = Orchestrator::for_run(spec, &cfg);

    let cobra = CobraWalk::standard();

    let mut all_proportional = true;
    for k in [2usize, 3, 4, 5] {
        let fam = Family::KaryTree { k };
        // Depth ranges keep the biggest tree around ~100k-1M vertices.
        let depths: Vec<usize> = match (k, cfg.full) {
            (2, false) => vec![4, 6, 8, 10, 12],
            (2, true) => vec![6, 8, 10, 12, 14, 16],
            (3, false) => vec![3, 4, 5, 6, 7],
            (3, true) => vec![4, 5, 6, 7, 8, 10],
            (4, false) => vec![2, 3, 4, 5, 6],
            (4, true) => vec![3, 4, 5, 6, 7],
            (_, false) => vec![2, 3, 4, 5],
            (_, true) => vec![3, 4, 5, 6, 7],
        };
        let mut table = SweepTable::new(format!("cobra(k=2) cover on {}", fam.name()), "diameter");
        for (i, &depth) in depths.iter().enumerate() {
            let g = fam.build(depth, 0);
            let n = g.num_vertices();
            let diam = 2 * depth;
            // Cover ∝ diameter with a k-dependent constant; budget is a
            // generous multiple plus slack for the conjectured k ≥ 4 cases
            // where the constant may be larger.
            let budget = 3000 * diam * (k + 1) + 200_000;
            let out = orch.cover_cell(
                &fam.name(),
                diam as f64,
                &g,
                &cobra,
                0,
                budget,
                stage_seed(cfg.seed, "e10", "cover", (k * 100 + i) as u64),
            );
            table.push(
                SweepRow::from_summary(diam as f64, &out.summary, out.censored)
                    .with_context("n", n as f64)
                    .with_context("cover_per_diam", out.summary.mean() / diam as f64),
            );
        }
        emit_table(&cfg, &table, &format!("e10_k{k}"));

        let xs = table.scales();
        let ys = table.means();
        let rep_diam = ratio_flatness(&xs, &ys, &xs);
        let diamlog: Vec<f64> = xs.iter().map(|&d| d * d.ln()).collect();
        let rep_diamlog = ratio_flatness(&xs, &ys, &diamlog);
        println!(
            "cover/diam log-slope {:+.3}; cover/(diam·ln diam) log-slope {:+.3}",
            rep_diam.log_slope, rep_diamlog.log_slope
        );
        // Finite-size caveat: n = k^depth, so reachable depths are small
        // and a c·diam law is indistinguishable from c·diam·log(diam)
        // here (log diam spans < 2× across the sweep). We accept the
        // theorem's shape if cover is at worst diameter-times-log flat —
        // i.e. clearly sub-polynomial in n (cover ∝ polylog n), which is
        // the substance of the claim (n grows exponentially in diameter).
        let pass = rep_diamlog.log_slope.abs() < 0.15 || rep_diam.log_slope.abs() < 0.15;
        all_proportional &= pass || k >= 4; // conjectured cases reported, not enforced
        let status = if k <= 3 {
            "Theorem-backed"
        } else {
            "conjecture"
        };
        verdict(
            &format!("{status} (k={k}): cover ∝ diameter (up to log(diam) at these depths)"),
            pass,
            &format!(
                "diam-ratio slope {:+.3}, diam·log-ratio slope {:+.3}, spread {:.2}×",
                rep_diam.log_slope, rep_diamlog.log_slope, rep_diam.spread
            ),
        );
        println!();
    }
    verdict(
        "E10 overall: proven cases (k=2,3) scale with diameter (≙ log n), not with n",
        all_proportional,
        "conjectured k ∈ {4,5} reported informationally; cover ∝ diam vs diam·log(diam) \
         needs exponentially deeper trees to separate",
    );
    println!();
    orch.finish(&cfg);
}
