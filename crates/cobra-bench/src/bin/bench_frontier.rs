//! **Frontier-engine perf baseline:** times three routes through a full
//! cover measurement on pinned instances and writes the results to
//! `BENCH_frontier.json`, so every PR leaves a perf trajectory the next
//! one has to beat:
//!
//! * `legacy` — a frozen copy of the pre-frontier-engine (PR 1) cobra
//!   kernel and cover loop (insertion-order `Vec` active set, epoch
//!   `DenseSet` dedup, `Vec<bool>` coverage). This is the fixed
//!   reference the ISSUE-2 "≥ 2× on the 64×64 grid" gate is measured
//!   against; it never changes again.
//! * `dyn` — the current engine through the `Box<dyn ProcessState>` API.
//! * `typed` — the current engine through the monomorphized
//!   [`CoverDriver::run_typed`] fast path (frontier iteration in
//!   ascending vertex order, bitset dedup, word-parallel coverage union).
//!
//! The headline case is the 64×64 grid with the 2-cobra walk.
//!
//! Usage: `bench_frontier [--quick] [--seed <u64>] [--out <path>]`
//! `--quick` is the CI smoke mode (fewer repetitions, same cases).

use cobra_bench::Family;
use cobra_core::{CobraWalk, CoverDriver, SisProcess, TypedProcess};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Frozen replica of the seed (pre-PR-2) cobra kernel and cover loop.
/// Deliberately *not* shared with `cobra-core`: this is a measurement
/// artifact pinned to the old algorithm, kept verbatim so the recorded
/// speedups keep meaning the same thing in later PRs.
mod legacy {
    use cobra_core::process::sample_index;
    use cobra_core::DenseSet;
    use cobra_graph::{Graph, Vertex};
    use rand::Rng;

    pub struct LegacyCobra {
        k: u32,
        active: Vec<Vertex>,
        next: Vec<Vertex>,
        dedup: DenseSet,
    }

    impl LegacyCobra {
        pub fn new(g: &Graph, start: Vertex, k: u32) -> Self {
            LegacyCobra {
                k,
                active: vec![start],
                next: Vec::new(),
                dedup: DenseSet::new(g.num_vertices()),
            }
        }

        fn step(&mut self, g: &Graph, rng: &mut dyn Rng) {
            self.next.clear();
            self.dedup.clear();
            for &v in &self.active {
                let ns = g.neighbors(v);
                for _ in 0..self.k {
                    let u = ns[sample_index(ns.len(), rng)];
                    if self.dedup.insert(u) {
                        self.next.push(u);
                    }
                }
            }
            std::mem::swap(&mut self.active, &mut self.next);
        }
    }

    /// The seed's `CoverDriver::run` loop: `Vec<bool>` coverage, per-vertex
    /// marking.
    pub fn cover(g: &Graph, start: Vertex, k: u32, max_steps: usize, rng: &mut dyn Rng) -> usize {
        let n = g.num_vertices();
        let mut state = LegacyCobra::new(g, start, k);
        let mut covered = vec![false; n];
        let mut covered_count = 0usize;
        let mark = |occ: &[Vertex], covered: &mut [bool], count: &mut usize| {
            for &v in occ {
                if !covered[v as usize] {
                    covered[v as usize] = true;
                    *count += 1;
                }
            }
        };
        mark(&state.active, &mut covered, &mut covered_count);
        for t in 1..=max_steps {
            state.step(g, rng);
            mark(&state.active, &mut covered, &mut covered_count);
            if covered_count == n {
                return t;
            }
        }
        panic!("legacy cover failed to complete within {max_steps} steps");
    }
}

struct CaseResult {
    name: &'static str,
    n: usize,
    reps: usize,
    /// Pre-PR reference; `None` for non-cobra processes the legacy kernel
    /// cannot run.
    legacy_ms: Option<f64>,
    dyn_ms: f64,
    typed_ms: f64,
}

impl CaseResult {
    /// Headline number: typed fast path vs the frozen pre-PR kernel
    /// (falling back to the in-repo dyn path where legacy can't run).
    fn speedup(&self) -> f64 {
        self.legacy_ms.unwrap_or(self.dyn_ms) / self.typed_ms
    }
}

/// Measurement knobs shared by every case.
#[derive(Clone, Copy)]
struct Timing {
    seed: u64,
    warmup: usize,
    reps: usize,
}

/// Mean wall-clock milliseconds per full cover for each route, over
/// `timing.reps` measured runs after `timing.warmup` discarded ones.
/// Each route gets its own identically seeded RNG, so per-rep work is
/// comparable (the legacy route draws a different stream — it iterates
/// in insertion order — but measures the same distribution of covers).
fn time_case<P: TypedProcess>(
    name: &'static str,
    g: &cobra_graph::Graph,
    process: &P,
    legacy_k: Option<u32>,
    start: u32,
    timing: Timing,
) -> CaseResult {
    const BUDGET: usize = 10_000_000;
    let Timing { seed, warmup, reps } = timing;
    let driver = CoverDriver::new(g);

    let legacy_ms = legacy_k.map(|k| {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..warmup {
            black_box(legacy::cover(g, start, k, BUDGET, &mut rng));
        }
        let t = Instant::now();
        for _ in 0..reps {
            black_box(legacy::cover(g, start, k, BUDGET, &mut rng));
        }
        t.elapsed().as_secs_f64() * 1e3 / reps as f64
    });

    let mut dyn_rng = StdRng::seed_from_u64(seed);
    for _ in 0..warmup {
        black_box(driver.run(process, start, BUDGET, &mut dyn_rng));
    }
    let t = Instant::now();
    for _ in 0..reps {
        let res = driver.run(process, start, BUDGET, &mut dyn_rng).unwrap();
        assert!(res.completed, "{name}: dyn path failed to cover");
        black_box(res.steps);
    }
    let dyn_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let mut typed_rng = StdRng::seed_from_u64(seed);
    for _ in 0..warmup {
        black_box(driver.run_typed(process, start, BUDGET, &mut typed_rng));
    }
    let t = Instant::now();
    for _ in 0..reps {
        let res = driver
            .run_typed(process, start, BUDGET, &mut typed_rng)
            .unwrap();
        assert!(res.completed, "{name}: typed path failed to cover");
        black_box(res.steps);
    }
    let typed_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    CaseResult {
        name,
        n: g.num_vertices(),
        reps,
        legacy_ms,
        dyn_ms,
        typed_ms,
    }
}

fn render_json(mode: &str, results: &[CaseResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cobra-bench/frontier-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let legacy_field = match r.legacy_ms {
            Some(ms) => format!("{ms:.3}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"reps\": {}, \
             \"legacy_ms_per_cover\": {legacy_field}, \
             \"dyn_ms_per_cover\": {:.3}, \"typed_ms_per_cover\": {:.3}, \
             \"speedup_vs_legacy\": {:.2}}}{}\n",
            r.name,
            r.n,
            r.reps,
            r.dyn_ms,
            r.typed_ms,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut seed = 0xC0B7Au64;
    let mut out_path = "BENCH_frontier.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                })
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("usage: bench_frontier [--quick] [--seed <u64>] [--out <path>]");
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (warmup, reps) = if quick { (1, 5) } else { (5, 60) };
    let timing = Timing { seed, warmup, reps };
    let mode = if quick { "quick" } else { "full" };

    let grid64 = Family::Grid { d: 2 }.build(63, seed); // 64×64 = 4096
    let rr4096 = Family::RandomRegular { d: 4 }.build(4096, seed);
    let cycle4096 = Family::Cycle.build(4096, seed);
    let cube12 = Family::Hypercube.build(12, seed); // 4096, conductance 1/12

    let results = vec![
        time_case(
            "grid_64x64/cobra_k2",
            &grid64,
            &CobraWalk::standard(),
            Some(2),
            0,
            timing,
        ),
        time_case(
            "random_regular_d4_4096/cobra_k2",
            &rr4096,
            &CobraWalk::standard(),
            Some(2),
            0,
            timing,
        ),
        time_case(
            "cycle_4096/cobra_k2",
            &cycle4096,
            &CobraWalk::standard(),
            Some(2),
            0,
            timing,
        ),
        time_case(
            "hypercube_12/cobra_k2",
            &cube12,
            &CobraWalk::standard(),
            Some(2),
            0,
            timing,
        ),
        time_case(
            "grid_64x64/sis_k3_p1.0",
            &grid64,
            &SisProcess::new(3, 1.0),
            None,
            0,
            timing,
        ),
    ];

    for r in &results {
        let legacy = match r.legacy_ms {
            Some(ms) => format!("{ms:9.3}"),
            None => "      n/a".to_string(),
        };
        println!(
            "{:32} n={:5}  legacy {legacy} ms  dyn {:9.3} ms  typed {:9.3} ms  speedup {:5.2}x",
            r.name,
            r.n,
            r.dyn_ms,
            r.typed_ms,
            r.speedup()
        );
    }

    let json = render_json(mode, &results);
    cobra_sim::write_atomic_str(std::path::Path::new(&out_path), &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    // The acceptance gate for the engine: the typed path must be at least
    // 2× faster than the frozen pre-PR kernel on the headline grid case.
    // Enforced (nonzero exit) only for full-mode release runs — quick
    // mode's few reps and debug builds are too noisy to gate on, so they
    // just warn.
    let headline = &results[0];
    if headline.speedup() < 2.0 {
        eprintln!(
            "WARNING: headline speedup {:.2}x below the 2x gate",
            headline.speedup()
        );
        if !quick && !cfg!(debug_assertions) {
            std::process::exit(1);
        }
    }
}
