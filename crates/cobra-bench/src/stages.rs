//! Stage-seed registry: namespaced master-seed derivation for the
//! experiment binaries.
//!
//! Every experiment binary runs several *stages* — graph construction,
//! per-arm trial batches, control sweeps — and each stage needs its own
//! independent seed stream derived from the run's one `--seed` master.
//! Historically each binary improvised its own offsets
//! (`cfg.seed.wrapping_add(1000 + k)`, `seq.child(4242 + k)`, raw XORs),
//! which had two failure modes:
//!
//! * **collision by growth** — `wrapping_add(k)` and
//!   `wrapping_add(1000 + k)` silently alias the moment a sweep grows
//!   past 1000 arms, correlating two stages that the experiment's
//!   statistics assume independent;
//! * **weak separation** — master seeds differing by small additive
//!   offsets lean entirely on the downstream generator's avalanche;
//!   [`SeedSequence::child`] exists precisely to give each label an
//!   independently mixed stream.
//!
//! This module replaces the improvisation with a declared registry: each
//! `(binary, stage)` pair owns a fixed label block `[base, base + width)`
//! in the child-label space of the run's master [`SeedSequence`], blocks
//! are globally disjoint (binary `b` owns `b·0x1_0000`, stage slot `s`
//! owns `0x1000` labels at `b·0x1_0000 + s·0x1000`), and every
//! derivation goes through [`stage_seed`] / [`stage_sequence`], which
//! assert the arm fits its block. The collision test below proves the
//! registry's blocks are pairwise disjoint, so adding a stage can never
//! silently alias an existing one.

use cobra_sim::SeedSequence;

/// One stage's label block: `width` consecutive child labels starting at
/// `base`, owned by one `(binary, stage)` pair.
#[derive(Clone, Copy, Debug)]
pub struct StageBlock {
    /// The experiment binary that owns the block (`"e7"`, `"e9"`, …).
    pub binary: &'static str,
    /// Stage name within the binary (`"graphs"`, `"cobra-hitting"`, …).
    pub stage: &'static str,
    /// First child label of the block.
    pub base: u64,
    /// Number of labels (arms) the block may use.
    pub width: u64,
}

impl StageBlock {
    /// The block's half-open label range.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.base..self.base + self.width
    }
}

/// Stage slot helper: binary `b`, slot `s` → base label.
const fn slot(b: u64, s: u64) -> u64 {
    b * 0x1_0000 + s * 0x1000
}

/// Default block width: 4096 arms. Composite arms (e.g. `d * 1000 + i`)
/// must still land inside the block — [`stage_seed`] asserts it.
const WIDTH: u64 = 0x1000;

/// The registry: every seeded stage of every experiment binary. New
/// stages append here with a fresh slot; the `blocks_are_disjoint` test
/// makes aliasing a compile-adjacent failure instead of a silent
/// correlation.
pub const STAGE_BLOCKS: &[StageBlock] = &[
    // e1: grid cover sweep.
    block("e1", "graphs", slot(1, 0)),
    // e2: multi-dimensional drift chain (Theorem 3's queueing system).
    block("e2", "step-stats", slot(2, 0)),
    block("e2", "emptying", slot(2, 1)), // arm = d * 1000 + i
    block("e2", "excursion", slot(2, 2)),
    // e3: conductance sweep.
    block("e3", "cover-cells", slot(3, 0)),
    block("e3", "graphs", slot(3, 1)),
    // e4: expander cover + simple-walk contrast.
    block("e4", "rr-sweep", slot(4, 0)), // arm = degree d
    block("e4", "rw-contrast", slot(4, 1)),
    block("e4", "graphs", slot(4, 2)), // arm = d * 100 + i
    block("e4", "rw-graphs", slot(4, 3)),
    // e5: Walt dominance (Lemma 10).
    block("e5", "graphs", slot(5, 0)),
    block("e5", "cobra", slot(5, 1)),
    block("e5", "walt", slot(5, 2)),
    // e6: tensor-chain collision (Lemma 11).
    block("e6", "graphs", slot(6, 0)),
    block("e6", "collision-freq", slot(6, 1)),
    // e7: regular-graph hitting (Lemmas 14-16, Theorem 15).
    block("e7", "graphs", slot(7, 0)),
    block("e7", "cobra-hitting", slot(7, 1)),
    block("e7", "biased-hitting", slot(7, 2)),
    block("e7", "cycle-cobra", slot(7, 3)),
    block("e7", "cycle-rw", slot(7, 4)),
    block("e7", "return-time", slot(7, 5)),
    // e8: lollipop worst case.
    block("e8", "cobra", slot(8, 0)),
    block("e8", "rw", slot(8, 1)),
    block("e8", "bootstrap", slot(8, 2)),
    // e9: Matthews bound (Theorem 1).
    block("e9", "estimator-sanity", slot(9, 0)),
    block("e9", "graphs", slot(9, 1)),
    block("e9", "hmax", slot(9, 2)),
    block("e9", "cover", slot(9, 3)),
    // e10: k-ary trees.
    block("e10", "cover", slot(10, 0)), // arm = k * 100 + i
    // e11: star lower bound vs push gossip.
    block("e11", "cobra", slot(11, 0)),
    block("e11", "push", slot(11, 1)),
    // e12: branching-factor ablation.
    block("e12", "cover", slot(12, 0)), // arm = c * 10 + i
    block("e12", "graphs", slot(12, 1)),
    // e13: Walt ablation.
    block("e13", "ablation", slot(13, 0)), // arm = c * 100 + variant
    block("e13", "graphs", slot(13, 1)),
    // e14: branching schedules.
    block("e14", "cover", slot(14, 0)), // arm = c * 10 + i
    block("e14", "graphs", slot(14, 1)),
    block("e14", "star-branching", slot(14, 2)), // arm = schedule index
    // e15: growth-phase decomposition.
    block("e15", "graphs", slot(15, 0)),
    block("e15", "growth", slot(15, 1)),
    block("e15", "cycle-refresh", slot(15, 2)),
    // e16: fault-model degradation (loss sweep + structured regimes).
    block("e16", "loss-sweep", slot(16, 0)), // arm = loss-level index
    block("e16", "regimes", slot(16, 1)),    // arm = regime index
    block("e16", "graphs", slot(16, 2)),
    // bench_implicit: implicit-graph allocation benchmark.
    block("bench-implicit", "giant", slot(30, 0)),
];

const fn block(binary: &'static str, stage: &'static str, base: u64) -> StageBlock {
    StageBlock {
        binary,
        stage,
        base,
        width: WIDTH,
    }
}

/// Look up a registered block; panics on an unregistered pair so a typo
/// fails the first run instead of silently deriving from label 0.
pub fn stage_block(binary: &str, stage: &str) -> &'static StageBlock {
    STAGE_BLOCKS
        .iter()
        .find(|b| b.binary == binary && b.stage == stage)
        .unwrap_or_else(|| panic!("unregistered stage {binary}/{stage} — add it to STAGE_BLOCKS"))
}

/// The [`SeedSequence`] for arm `arm` of a registered stage, derived
/// from the run's master seed. Use this when a stage draws several
/// seeds/RNGs itself; for a single master-seed value use [`stage_seed`].
pub fn stage_sequence(master: u64, binary: &str, stage: &str, arm: u64) -> SeedSequence {
    let b = stage_block(binary, stage);
    assert!(
        arm < b.width,
        "arm {arm} outside {binary}/{stage}'s block (width {})",
        b.width
    );
    SeedSequence::new(master).child(b.base + arm)
}

/// A single derived master seed for arm `arm` of a registered stage —
/// what [`cobra_sim::TrialPlan`]-style call sites consume.
pub fn stage_seed(master: u64, binary: &str, stage: &str, arm: u64) -> u64 {
    stage_sequence(master, binary, stage, arm).seed_at(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_disjoint() {
        // Global pairwise disjointness: no stage of any binary can ever
        // alias another, regardless of arm. This is the whole point of
        // the registry — the old wrapping_add offsets had no such proof.
        for (i, a) in STAGE_BLOCKS.iter().enumerate() {
            assert!(a.width >= 1, "{}/{} has empty block", a.binary, a.stage);
            for b in &STAGE_BLOCKS[i + 1..] {
                assert!(
                    !(a.binary == b.binary && a.stage == b.stage),
                    "duplicate registration {}/{}",
                    a.binary,
                    a.stage
                );
                let disjoint = a.base + a.width <= b.base || b.base + b.width <= a.base;
                assert!(
                    disjoint,
                    "{}/{} [{:#x}, {:#x}) overlaps {}/{} [{:#x}, {:#x})",
                    a.binary,
                    a.stage,
                    a.base,
                    a.base + a.width,
                    b.binary,
                    b.stage,
                    b.base,
                    b.base + b.width
                );
            }
        }
    }

    #[test]
    fn derived_seeds_are_distinct_across_stages_and_arms() {
        // Spot-check the end product: across every registered stage and a
        // handful of arms, all derived master seeds differ (for a fixed
        // run master). A collision here would correlate two stages'
        // entire trial streams.
        let master = 0xC0B7A;
        let mut seen = std::collections::HashMap::new();
        for b in STAGE_BLOCKS {
            for arm in [0u64, 1, 7, 1000, WIDTH - 1] {
                let s = stage_seed(master, b.binary, b.stage, arm);
                if let Some(prev) = seen.insert(s, (b.binary, b.stage, arm)) {
                    panic!(
                        "seed collision: {}/{} arm {arm} == {}/{} arm {}",
                        b.binary, b.stage, prev.0, prev.1, prev.2
                    );
                }
            }
        }
    }

    #[test]
    fn stage_seed_is_deterministic_and_master_sensitive() {
        let a = stage_seed(1, "e7", "cobra-hitting", 2);
        assert_eq!(a, stage_seed(1, "e7", "cobra-hitting", 2));
        assert_ne!(a, stage_seed(2, "e7", "cobra-hitting", 2));
        assert_ne!(a, stage_seed(1, "e7", "cobra-hitting", 3));
        assert_ne!(a, stage_seed(1, "e7", "biased-hitting", 2));
    }

    #[test]
    fn stage_sequence_matches_stage_seed() {
        let seq = stage_sequence(9, "e9", "hmax", 1);
        assert_eq!(seq.seed_at(0), stage_seed(9, "e9", "hmax", 1));
    }

    #[test]
    #[should_panic(expected = "unregistered stage")]
    fn unregistered_stage_panics() {
        stage_seed(0, "e99", "nope", 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn oversized_arm_panics() {
        stage_seed(0, "e3", "cover-cells", WIDTH);
    }
}
