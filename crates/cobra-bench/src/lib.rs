//! # cobra-bench
//!
//! Experiment harness for the cobra-walk reproduction. Each empirically
//! checkable claim of the paper has a binary (`e1_grid_cover` …
//! `e13_walt_ablation`); shared sweep/reporting plumbing lives here.
//!
//! Every binary supports:
//!
//! * default mode — CI-friendly sizes (seconds to a few minutes);
//! * `--full` — paper-scale sweeps;
//! * `--quick` — smoke mode (CI-scale sweeps, minimal adaptive trial
//!   envelope — what the CI bench-smoke job runs);
//! * `--seed <u64>` — override the master seed;
//! * `--csv <dir>` — also write each table as CSV;
//! * `--manifest <path>` — write the per-run JSON manifest (per-cell
//!   trials used, censoring, achieved CI half-width, precision flag);
//! * `--resume <manifest>` — continue an interrupted run bit-identically
//!   from its checkpoint (written atomically next to the manifest at
//!   every batch boundary);
//! * `--halt-after-checkpoints <n>` — deterministic fault injection:
//!   stop with exit code 3 after the n-th checkpoint write (used by the
//!   kill-and-resume tests and the CI resume-smoke step);
//! * `--trace <path>` — write the run's span timeline (one JSONL span
//!   per cell attempt, batch boundary, and retry backoff; schema
//!   `cobra-obs/trace-v1`) for the `trace_view` binary to validate and
//!   render.
//!
//! Sweep-style binaries run through the adaptive orchestrator
//! ([`orchestrator::Orchestrator`]): per-cell trial counts follow a
//! sequential stopping rule instead of a fixed plan, so easy cells stop
//! early and hard cells keep sampling until their CI is tight.
//!
//! See `EXPERIMENTS.md` at the workspace root for the experiment ↔ claim
//! index and recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod cli;
pub mod families;
pub mod json;
pub mod orchestrator;
pub mod report;
pub mod stages;

pub use checkpoint::{checkpoint_path_for, CellCheckpoint, CellStatus, Checkpoint};
pub use cli::ExpConfig;
pub use families::Family;
pub use json::Json;
pub use orchestrator::{CellOutcome, ExperimentSpec, Interrupted, Orchestrator, SweepError};
pub use stages::{stage_seed, stage_sequence, StageBlock};
