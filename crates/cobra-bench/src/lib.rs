//! # cobra-bench
//!
//! Experiment harness for the cobra-walk reproduction. Each empirically
//! checkable claim of the paper has a binary (`e1_grid_cover` …
//! `e13_walt_ablation`); shared sweep/reporting plumbing lives here.
//!
//! Every binary supports:
//!
//! * default mode — CI-friendly sizes (seconds to a few minutes);
//! * `--full` — paper-scale sweeps;
//! * `--seed <u64>` — override the master seed;
//! * `--csv <dir>` — also write each table as CSV.
//!
//! See `EXPERIMENTS.md` at the workspace root for the experiment ↔ claim
//! index and recorded results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod families;
pub mod report;

pub use cli::ExpConfig;
pub use families::Family;
