//! Minimal hand-rolled JSON parsing for the harness's own artifacts.
//!
//! The workspace has no serde; manifests, checkpoints, and bench
//! baselines are written with hand-rolled formatters. Resuming a run
//! (`--resume`) needs the reverse direction, so this module provides a
//! small recursive-descent parser for exactly the JSON subset those
//! writers emit: objects, arrays, strings (with the common escapes),
//! numbers, booleans, and `null`.
//!
//! Numbers are kept as their **raw source token** ([`Json::Num`]) and
//! only converted on access: a `u64` seed like `0xFFFF_FFFF_FFFF_FFFF`
//! written in decimal does not survive a round-trip through `f64`, and
//! checkpoint fingerprints must match exactly.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw source token (see module docs).
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as key/value pairs in source order (keys are not
    /// deduplicated — the writers never emit duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error). Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer number. Goes
    /// through the raw token, so full-range seeds round-trip exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize back to a compact JSON document. Numbers re-emit their
    /// raw source token, so parse → render → parse is lossless even for
    /// full-range `u64` seeds that do not survive `f64`.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(raw) => raw.clone(),
            Json::Str(s) => format!("\"{}\"", escape_str(s)),
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape_str(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Escape a string for embedding in a JSON document (quotes,
/// backslashes, and control characters — the full set a reader of our
/// own output could trip on, superset of the manifest writer's needs).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nesting cap for the recursive-descent parser: our own writers emit a
/// handful of levels, so anything near this bound is hostile or corrupt
/// input, and refusing it beats overflowing the stack.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(open @ (b'{' | b'[')) => {
                self.depth += 1;
                if self.depth > MAX_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_DEPTH} at byte {}",
                        self.pos
                    ));
                }
                let v = if open == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs never appear in our writers'
                            // output; reject rather than mis-decode.
                            let c = char::from_u32(code).ok_or_else(|| {
                                format!("unpaired surrogate at byte {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid; copy the raw bytes).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a &str, so code-point spans are valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII digits/sign/dot/exponent only");
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number at byte {start}"));
        }
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        // 2^64 - 1 is not representable in f64; the raw-token storage
        // must preserve it anyway.
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, null, {"b": "x"}], "c": -2}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_usize(), Some(1));
        assert!(arr[1].is_null());
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-2.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn decodes_escapes() {
        let v = Json::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape_str(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            r#"{"a" 1}"#,
            "1 2",
            "{'a': 1}",
            r#""unterminated"#,
            "--3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""héllo — ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo — ✓"));
    }
}
