//! Adaptive experiment orchestration: one [`ExperimentSpec`] per binary,
//! one [`Orchestrator`] per run.
//!
//! The orchestrator is the glue between the adaptive trial engine in
//! `cobra-sim` and the experiment binaries: it owns the run-wide
//! [`StopRule`] envelope (scaled by `--quick` / default / `--full`),
//! runs whole sweeps or single cells through the batched adaptive
//! runners, accumulates a per-cell audit trail, and at the end writes a
//! JSON **run manifest** next to the CSV/Markdown output: per cell, the
//! trials actually consumed, the censored count, the achieved CI
//! half-width, and whether the precision target was met. The manifest is
//! what makes an adaptive run auditable — a fixed-trial sweep's cost is
//! visible in its plan, an adaptive sweep's cost only in its record.

use crate::cli::ExpConfig;
use cobra_core::TypedProcess;
use cobra_graph::{Graph, Vertex};
use cobra_sim::runner::AdaptiveOutcome;
use cobra_sim::sweep::AdaptiveCellReport;
use cobra_sim::{
    run_cover_sweep_cells_adaptive, run_cover_trials_adaptive_auto, run_hitting_trials_adaptive,
    AdaptivePlan, EmptySummary, StopRule, SweepCell, SweepTable,
};
use std::path::PathBuf;

/// What an experiment run is: identity, claim, mode, master seed, and
/// the adaptive trial envelope every sweep in the run uses.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment id (`"e1"`, `"e4"`, …) — names the manifest file when
    /// only a CSV directory is given.
    pub id: String,
    /// One-line claim the experiment checks.
    pub claim: String,
    /// Mode name (`"quick"` / `"ci"` / `"full"`), echoed into the
    /// manifest so recorded runs are self-describing.
    pub mode: String,
    /// Master seed for the run (sweeps derive their own streams).
    pub seed: u64,
    /// Sequential stopping envelope for every adaptive sweep/cell.
    pub rule: StopRule,
    /// Trials launched in parallel between CI consultations.
    pub batch: usize,
}

impl ExperimentSpec {
    /// The default adaptive envelope for a mode:
    ///
    /// * `--quick` — a handful of trials at loose precision (smoke);
    /// * default (CI) — stop at 4% relative CI half-width, 10..=120
    ///   trials per cell;
    /// * `--full` — 2% half-width, 24..=400 trials per cell.
    ///
    /// Easy (low-variance) cells stop at the minimum; hard cells run
    /// until the CI is tight or the cap is hit, and the manifest records
    /// which happened.
    pub fn from_config(id: &str, claim: &str, cfg: &ExpConfig) -> Self {
        let (rule, batch) = if cfg.full {
            (StopRule::new(24, 400, 0.02), 32)
        } else if cfg.quick {
            (StopRule::new(6, 20, 0.20), 8)
        } else {
            (StopRule::new(10, 120, 0.04), 16)
        };
        ExperimentSpec {
            id: id.to_string(),
            claim: claim.to_string(),
            mode: cfg.mode_name().to_string(),
            seed: cfg.seed,
            rule,
            batch,
        }
    }

    /// Override the stopping envelope (builder style) — binaries whose
    /// cells are unusually expensive (e8's lollipop baseline) or whose
    /// comparisons need unusually tight means (e7's dominance check)
    /// tune the defaults.
    pub fn with_rule(mut self, rule: StopRule) -> Self {
        self.rule = rule;
        self
    }

    /// An [`AdaptivePlan`] of this spec at a given step budget and
    /// master seed.
    pub fn plan(&self, max_steps: usize, master_seed: u64) -> AdaptivePlan {
        AdaptivePlan::new(self.rule, self.batch, max_steps, master_seed)
    }
}

/// One manifest line: a measured cell and how much it cost.
#[derive(Clone, Debug)]
struct ManifestCell {
    sweep: String,
    report: AdaptiveCellReport,
    mean: f64,
}

/// Runs adaptive sweeps/cells for one experiment and accumulates the
/// per-cell audit trail; [`Orchestrator::finish`] writes the manifest.
#[derive(Debug)]
pub struct Orchestrator {
    spec: ExperimentSpec,
    cells: Vec<ManifestCell>,
}

impl Orchestrator {
    /// Start a run.
    pub fn new(spec: ExperimentSpec) -> Self {
        Orchestrator {
            spec,
            cells: Vec::new(),
        }
    }

    /// The run's spec (mode, rule, seed).
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Run a whole cover sweep adaptively (cells carry per-cell step
    /// budgets; per-cell seeds derive from `master_seed` exactly as in
    /// the fixed-trial sweep) and record every cell in the manifest.
    pub fn cover_sweep(
        &mut self,
        label: impl Into<String>,
        scale_name: impl Into<String>,
        cells: impl IntoIterator<Item = SweepCell>,
        process: &(impl TypedProcess + Sync),
        master_seed: u64,
    ) -> Result<SweepTable, EmptySummary> {
        let label = label.into();
        // Budget is per cell; the plan's own max_steps is a fallback for
        // cells without one. 1 is never used unless a cell omits its
        // budget, matching the fixed-sweep calling convention.
        let plan = self.spec.plan(1, master_seed);
        let sweep =
            run_cover_sweep_cells_adaptive(label.clone(), scale_name, cells, process, &plan)?;
        for (report, row) in sweep.reports.iter().zip(&sweep.table.rows) {
            self.cells.push(ManifestCell {
                sweep: label.clone(),
                report: report.clone(),
                mean: row.mean,
            });
        }
        Ok(sweep.table)
    }

    /// Measure one cover cell adaptively and record it. Routes through
    /// the engine-selection heuristic: small lane-friendly cells use the
    /// bit-sliced 64-lane engine, everything else the scratch engine.
    #[allow(clippy::too_many_arguments)] // mirrors run_cover_trials' shape
    pub fn cover_cell(
        &mut self,
        sweep: &str,
        scale: f64,
        g: &Graph,
        process: &(impl TypedProcess + Sync),
        start: Vertex,
        max_steps: usize,
        master_seed: u64,
    ) -> AdaptiveOutcome {
        let plan = self.spec.plan(max_steps, master_seed);
        let out = run_cover_trials_adaptive_auto(g, process, start, &plan);
        self.record(sweep, scale, &out);
        out
    }

    /// Measure one hitting cell adaptively and record it.
    #[allow(clippy::too_many_arguments)] // mirrors run_hitting_trials' shape
    pub fn hitting_cell(
        &mut self,
        sweep: &str,
        scale: f64,
        g: &Graph,
        process: &(impl TypedProcess + Sync),
        start: Vertex,
        target: Vertex,
        max_steps: usize,
        master_seed: u64,
    ) -> AdaptiveOutcome {
        let plan = self.spec.plan(max_steps, master_seed);
        let out = run_hitting_trials_adaptive(g, process, start, target, &plan);
        self.record(sweep, scale, &out);
        out
    }

    fn record(&mut self, sweep: &str, scale: f64, out: &AdaptiveOutcome) {
        let report = AdaptiveCellReport::from_outcome(scale, out, self.spec.rule.confidence);
        let mean = out.summary.try_mean().unwrap_or(f64::NAN);
        self.cells.push(ManifestCell {
            sweep: sweep.to_string(),
            report,
            mean,
        });
    }

    /// Total trials consumed so far across all recorded cells.
    pub fn total_trials(&self) -> usize {
        self.cells.iter().map(|c| c.report.trials_used).sum()
    }

    /// Cells that met the precision target so far.
    pub fn precise_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.report.precision_met).count()
    }

    /// Render the run manifest as JSON (hand-rolled, like the bench
    /// baselines — no serde in the workspace).
    pub fn render_manifest(&self) -> String {
        let r = &self.spec.rule;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"cobra-bench/run-manifest-v1\",\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n  \"claim\": \"{}\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n",
            escape(&self.spec.id),
            escape(&self.spec.claim),
            escape(&self.spec.mode),
            self.spec.seed
        ));
        out.push_str(&format!(
            "  \"rule\": {{\"min_trials\": {}, \"max_trials\": {}, \"rel_precision\": {}, \
             \"confidence\": {}, \"batch\": {}}},\n",
            r.min_trials, r.max_trials, r.rel_precision, r.confidence, self.spec.batch
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let rep = &c.report;
            out.push_str(&format!(
                "    {{\"sweep\": \"{}\", \"scale\": {}, \"trials_used\": {}, \
                 \"completed\": {}, \"censored\": {}, \"mean\": {}, \"ci_half_width\": {:.6}, \
                 \"rel_half_width\": {:.6}, \"precision_met\": {}}}{}\n",
                escape(&c.sweep),
                rep.scale,
                rep.trials_used,
                rep.completed,
                rep.censored,
                if c.mean.is_finite() {
                    format!("{:.4}", c.mean)
                } else {
                    "null".to_string()
                },
                rep.ci_half_width,
                rep.rel_half_width,
                rep.precision_met,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let censored: usize = self.cells.iter().map(|c| c.report.censored).sum();
        out.push_str(&format!(
            "  \"totals\": {{\"cells\": {}, \"trials_used\": {}, \"censored\": {}, \
             \"precision_met_cells\": {}}}\n",
            self.cells.len(),
            self.total_trials(),
            censored,
            self.precise_cells()
        ));
        out.push_str("}\n");
        out
    }

    /// Where the manifest goes for a config: the explicit `--manifest`
    /// path, else `<csv_dir>/<id>_manifest.json`, else nowhere.
    pub fn manifest_path(&self, cfg: &ExpConfig) -> Option<PathBuf> {
        cfg.manifest.clone().or_else(|| {
            cfg.csv_dir
                .as_ref()
                .map(|d| d.join(format!("{}_manifest.json", self.spec.id)))
        })
    }

    /// Print the run's cost line and write the JSON manifest (if the
    /// config names a destination). Call once, after the last sweep.
    pub fn finish(self, cfg: &ExpConfig) {
        println!(
            "adaptive run: {} cells, {} trials consumed, {}/{} cells met \
             the {:.1}% half-width target",
            self.cells.len(),
            self.total_trials(),
            self.precise_cells(),
            self.cells.len(),
            self.spec.rule.rel_precision * 100.0
        );
        if let Some(path) = self.manifest_path(cfg) {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("cannot create {}: {e}", parent.display());
                        return;
                    }
                }
            }
            match std::fs::write(&path, self.render_manifest()) {
                Ok(()) => println!("(run manifest written to {})", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

/// Minimal JSON string escaping for labels (quotes and backslashes; the
/// labels are plain ASCII otherwise).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_core::CobraWalk;
    use cobra_graph::generators::classic;

    fn ci_cfg() -> ExpConfig {
        ExpConfig::default()
    }

    #[test]
    fn spec_modes_scale_the_envelope() {
        let quick = ExperimentSpec::from_config(
            "eX",
            "c",
            &ExpConfig {
                quick: true,
                ..ExpConfig::default()
            },
        );
        let ci = ExperimentSpec::from_config("eX", "c", &ci_cfg());
        let full = ExperimentSpec::from_config(
            "eX",
            "c",
            &ExpConfig {
                full: true,
                ..ExpConfig::default()
            },
        );
        assert!(quick.rule.max_trials < ci.rule.max_trials);
        assert!(ci.rule.max_trials < full.rule.max_trials);
        assert!(quick.rule.rel_precision > ci.rule.rel_precision);
        assert!(ci.rule.rel_precision > full.rule.rel_precision);
        assert_eq!(quick.mode, "quick");
        assert_eq!(ci.mode, "ci");
        assert_eq!(full.mode, "full");
    }

    #[test]
    fn cell_runs_record_into_manifest() {
        let spec = ExperimentSpec::from_config("eT", "test claim", &ci_cfg());
        let mut orch = Orchestrator::new(spec);
        let g = classic::complete(12).unwrap();
        let out = orch.cover_cell("k12", 12.0, &g, &CobraWalk::standard(), 0, 10_000, 7);
        assert!(out.precision_met);
        assert_eq!(orch.cells.len(), 1);
        assert_eq!(orch.total_trials(), out.trials_run());
        assert_eq!(orch.precise_cells(), 1);
        let json = orch.render_manifest();
        assert!(json.contains("\"schema\": \"cobra-bench/run-manifest-v1\""));
        assert!(json.contains("\"sweep\": \"k12\""));
        assert!(json.contains("\"precision_met\": true"));
        assert!(json.contains("\"experiment\": \"eT\""));
    }

    #[test]
    fn sweep_runs_record_every_cell() {
        let spec = ExperimentSpec::from_config("eS", "sweep claim", &ci_cfg());
        let mut orch = Orchestrator::new(spec);
        let cells = [8usize, 12].map(|n| {
            SweepCell::new(n as f64, classic::cycle(n).unwrap(), 0u32).with_budget(50_000)
        });
        let t = orch
            .cover_sweep("cobra on cycle", "n", cells, &CobraWalk::standard(), 3)
            .unwrap();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(orch.cells.len(), 2);
        // Adaptive trial counts land inside the envelope.
        for c in &orch.cells {
            assert!(c.report.trials_used >= orch.spec.rule.min_trials);
            assert!(c.report.trials_used <= orch.spec.rule.max_trials);
        }
    }

    #[test]
    fn manifest_path_prefers_explicit_flag() {
        let spec = ExperimentSpec::from_config("e9", "c", &ci_cfg());
        let orch = Orchestrator::new(spec);
        let explicit = ExpConfig {
            manifest: Some(PathBuf::from("/tmp/m.json")),
            csv_dir: Some(PathBuf::from("/tmp/csvs")),
            ..ExpConfig::default()
        };
        assert_eq!(
            orch.manifest_path(&explicit).unwrap(),
            PathBuf::from("/tmp/m.json")
        );
        let via_csv = ExpConfig {
            csv_dir: Some(PathBuf::from("/tmp/csvs")),
            ..ExpConfig::default()
        };
        assert_eq!(
            orch.manifest_path(&via_csv).unwrap(),
            PathBuf::from("/tmp/csvs/e9_manifest.json")
        );
        assert!(orch.manifest_path(&ExpConfig::default()).is_none());
    }

    #[test]
    fn fully_censored_cell_is_recorded_not_fatal() {
        let spec = ExperimentSpec::from_config(
            "eC",
            "censor",
            &ExpConfig {
                quick: true,
                ..ExpConfig::default()
            },
        );
        let mut orch = Orchestrator::new(spec);
        let g = classic::path(60).unwrap();
        // 5 steps cannot cover a 60-path: every trial censors.
        let out = orch.cover_cell("starved", 60.0, &g, &cobra_core::SimpleWalk::new(), 0, 5, 1);
        assert!(!out.precision_met);
        assert_eq!(out.summary.count(), 0);
        let json = orch.render_manifest();
        assert!(json.contains("\"precision_met\": false"));
        assert!(json.contains("\"mean\": null"));
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
